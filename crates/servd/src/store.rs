//! The immutable columnar study store and its atomic snapshot handle.
//!
//! A [`StudyStore`] is built once from a finished pipeline run (a
//! [`StudyReport`] plus, optionally, its [`QuarantineReport`]) and never
//! mutated afterwards. Construction decomposes the coalesced error set
//! into parallel column vectors in the canonical `(time, host)` order the
//! pipeline already guarantees, pre-renders every paper surface, and
//! builds sorted secondary indexes (per-host and per-kind posting lists,
//! themselves in time order). Query endpoints slice those columns with
//! binary searches — a filtered `/errors` request never scans rows
//! outside the narrowest applicable index.
//!
//! Serving threads never see a store mid-build: a [`StoreHandle`] holds
//! the current store behind an `Arc` and swaps it atomically on
//! [`publish`](StoreHandle::publish). Readers take the lock only long
//! enough to clone the `Arc` (two atomic ops); they never wait on store
//! construction, and a request that started on the old snapshot finishes
//! on the old snapshot — responses are never torn across a swap. The
//! streaming pipeline feeds live updates through the
//! [`SnapshotSink`](resilience::incremental::SnapshotSink) impl.

use resilience::incremental::SnapshotSink;
use resilience::report;
use resilience::{QuarantineReport, StudyReport};
use simtime::{Phase, Timestamp};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use xid::{ErrorKind, XidCode};

/// A filter over the coalesced error columns (the `/errors` query).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorFilter {
    /// Restrict to one host.
    pub host: Option<String>,
    /// Restrict to one error kind (resolved from a raw XID code).
    pub kind: Option<ErrorKind>,
    /// Inclusive lower time bound.
    pub from: Option<Timestamp>,
    /// Inclusive upper time bound.
    pub to: Option<Timestamp>,
}

/// The immutable, columnar serving snapshot of one study.
///
/// Everything a request can ask for is either pre-rendered at build time
/// (the paper surfaces, which must be byte-identical to the offline
/// renderers) or answered from the sorted columns below.
#[derive(Debug)]
pub struct StudyStore {
    report: StudyReport,
    caveat_count: usize,
    // Pre-rendered paper surfaces (byte-identical to `resilience::report`).
    table1: String,
    table2: String,
    table3: String,
    fig2: String,
    // Column vectors over the coalesced, outlier-filtered error set, in
    // the pipeline's canonical (time, host) order — `times` is sorted.
    times: Vec<u64>,
    host_ids: Vec<u32>,
    pcis: Vec<String>,
    kinds: Vec<ErrorKind>,
    merged: Vec<u64>,
    // Host dictionary (sorted, deduplicated) and the per-host / per-kind
    // posting lists. Row ids inside a posting list ascend, so each list
    // is itself in time order and admits the same binary searches the
    // global `times` column does.
    hosts: Vec<String>,
    by_host: Vec<Vec<u32>>,
    by_kind: BTreeMap<ErrorKind, Vec<u32>>,
}

impl StudyStore {
    /// Builds the store from a finished run. `quarantine` carries the
    /// lenient run's trust qualifiers into `/snapshot`; pass `None` for
    /// strict runs.
    pub fn build(report: StudyReport, quarantine: Option<&QuarantineReport>) -> Self {
        let mut span = obs::span("servd_store_build");
        span.add_items(report.errors.len() as u64);

        let table1 = report::table1(&report);
        let table2 = report::table2(&report);
        let table3 = report::table3(&report);
        let fig2 = report::figure2(&report);

        let mut hosts: Vec<String> = report.errors.iter().map(|e| e.host.clone()).collect();
        hosts.sort();
        hosts.dedup();

        let n = report.errors.len();
        let mut times = Vec::with_capacity(n);
        let mut host_ids = Vec::with_capacity(n);
        let mut pcis = Vec::with_capacity(n);
        let mut kinds = Vec::with_capacity(n);
        let mut merged = Vec::with_capacity(n);
        let mut by_host: Vec<Vec<u32>> = vec![Vec::new(); hosts.len()];
        let mut by_kind: BTreeMap<ErrorKind, Vec<u32>> = BTreeMap::new();
        for (row, e) in report.errors.iter().enumerate() {
            let host_id = match hosts.binary_search(&e.host) {
                Ok(i) => i as u32,
                // Unreachable (the dictionary was built from these rows),
                // but a wrong id is strictly worse than a skipped row.
                Err(_) => continue,
            };
            times.push(e.time.unix());
            host_ids.push(host_id);
            pcis.push(e.pci.to_string());
            kinds.push(e.kind);
            merged.push(e.merged_lines);
            by_host[host_id as usize].push(row as u32);
            by_kind.entry(e.kind).or_default().push(row as u32);
        }

        StudyStore {
            caveat_count: quarantine.map_or(0, |q| q.caveats.len()),
            report,
            table1,
            table2,
            table3,
            fig2,
            times,
            host_ids,
            pcis,
            kinds,
            merged,
            hosts,
            by_host,
            by_kind,
        }
    }

    /// The report the store was built from.
    pub fn report(&self) -> &StudyReport {
        &self.report
    }

    /// Number of coalesced error rows stored.
    pub fn error_rows(&self) -> usize {
        self.times.len()
    }

    /// The pre-rendered Table I (byte-identical to [`report::table1`]).
    pub fn table1(&self) -> &str {
        &self.table1
    }

    /// The pre-rendered Table II (byte-identical to [`report::table2`]).
    pub fn table2(&self) -> &str {
        &self.table2
    }

    /// The pre-rendered Table III (byte-identical to [`report::table3`]).
    pub fn table3(&self) -> &str {
        &self.table3
    }

    /// The pre-rendered Figure 2 (byte-identical to [`report::figure2`]).
    pub fn fig2(&self) -> &str {
        &self.fig2
    }

    /// The row ids matching `filter`, ascending (= time order).
    ///
    /// Index selection: with a host filter the per-host posting list is
    /// sliced; with only a kind filter the per-kind list is sliced; with
    /// neither the global time column is sliced. In every case the time
    /// bounds are located by binary search, so work is proportional to
    /// the *narrowest* index slice, never the full store.
    fn select(&self, filter: &ErrorFilter) -> Vec<u32> {
        let rows: &[u32] = match (&filter.host, filter.kind) {
            (Some(host), _) => match self.hosts.binary_search_by(|h| h.as_str().cmp(host)) {
                Ok(i) => &self.by_host[i],
                Err(_) => &[],
            },
            (None, Some(kind)) => self.by_kind.get(&kind).map_or(&[][..], Vec::as_slice),
            (None, None) => return self.select_global(filter),
        };
        let slice = self.time_slice(rows, filter);
        match filter.kind {
            // Residual predicate, applied only when both host and kind
            // were given: the slice is already host- and time-bounded.
            Some(kind) if filter.host.is_some() => slice
                .iter()
                .copied()
                .filter(|&r| self.kinds[r as usize] == kind)
                .collect(),
            _ => slice.to_vec(),
        }
    }

    /// The unfiltered case: binary-search the global sorted time column.
    fn select_global(&self, filter: &ErrorFilter) -> Vec<u32> {
        let lo = filter
            .from
            .map_or(0, |t| self.times.partition_point(|&time| time < t.unix()));
        let hi = filter.to.map_or(self.times.len(), |t| {
            self.times.partition_point(|&time| time <= t.unix())
        });
        (lo as u32..hi as u32).collect()
    }

    /// Slices a time-ordered posting list to the filter's time bounds by
    /// binary search.
    fn time_slice<'a>(&self, rows: &'a [u32], filter: &ErrorFilter) -> &'a [u32] {
        let lo = filter.from.map_or(0, |t| {
            rows.partition_point(|&r| self.times[r as usize] < t.unix())
        });
        let hi = filter.to.map_or(rows.len(), |t| {
            rows.partition_point(|&r| self.times[r as usize] <= t.unix())
        });
        &rows[lo..hi]
    }

    /// Renders the `/errors` slice as CSV:
    /// `time,host,pci,xid,kind,merged_lines`, rows in canonical order.
    pub fn errors_csv(&self, filter: &ErrorFilter) -> String {
        let rows = self.select(filter);
        let mut out = String::from("time,host,pci,xid,kind,merged_lines\n");
        for &r in &rows {
            let r = r as usize;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                Timestamp::from_unix(self.times[r]),
                self.hosts[self.host_ids[r] as usize],
                self.pcis[r],
                self.kinds[r].primary_code(),
                self.kinds[r].abbreviation(),
                self.merged[r]
            );
        }
        out
    }

    /// Renders `/mtbe` as CSV, one row per `(kind, phase)`:
    /// `xid,kind,phase,count,mtbe_system_h,mtbe_node_h`. With `kind`
    /// given, only that kind's rows.
    pub fn mtbe_csv(&self, kind: Option<ErrorKind>) -> String {
        let mut out = String::from("xid,kind,phase,count,mtbe_system_h,mtbe_node_h\n");
        let kinds: Vec<ErrorKind> = match kind {
            Some(k) => vec![k],
            None => ErrorKind::STUDIED.to_vec(),
        };
        let stats = &self.report.stats;
        for k in kinds {
            for (phase, label) in [(Phase::PreOp, "pre_op"), (Phase::Op, "op")] {
                let _ = writeln!(
                    out,
                    "{},{},{label},{},{},{}",
                    k.primary_code(),
                    k.abbreviation(),
                    stats.count(k, phase),
                    fmt_cell(stats.mtbe_system(k, phase)),
                    fmt_cell(stats.mtbe_per_node(k, phase)),
                );
            }
        }
        out
    }

    /// Renders `/jobs/impact`: the Table II join as CSV plus the total
    /// GPU-failed-jobs line.
    pub fn jobs_impact_csv(&self) -> String {
        let mut out = report::table2_csv(&self.report);
        let _ = writeln!(
            out,
            "total_gpu_failed_jobs,{}",
            self.report.impact.gpu_failed_jobs()
        );
        out
    }

    /// Renders `/availability` as a deterministic JSON object.
    pub fn availability_json(&self) -> String {
        let a = &self.report.availability;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"outages\": {},", a.outage_count());
        let _ = writeln!(out, "  \"mttr_hours\": {},", fmt_json(a.mttr_hours()));
        let _ = writeln!(
            out,
            "  \"total_downtime_node_hours\": {},",
            fmt_json(Some(a.total_downtime_node_hours()))
        );
        let _ = writeln!(
            out,
            "  \"mttf_hours\": {},",
            fmt_json(self.report.mttf_hours)
        );
        let _ = writeln!(
            out,
            "  \"availability\": {},",
            fmt_json(self.report.availability_estimate())
        );
        let _ = writeln!(
            out,
            "  \"availability_empirical\": {}",
            fmt_json(Some(a.availability_empirical()))
        );
        out.push_str("}\n");
        out
    }

    /// Renders `/snapshot` metadata for a snapshot id assigned by the
    /// handle.
    pub fn snapshot_info(&self, id: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "snapshot: {id}");
        let _ = writeln!(out, "errors: {}", self.error_rows());
        let _ = writeln!(out, "hosts: {}", self.hosts.len());
        let _ = writeln!(
            out,
            "gpu_jobs_failed: {}",
            self.report.impact.gpu_failed_jobs()
        );
        let _ = writeln!(out, "outages: {}", self.report.availability.outage_count());
        let _ = writeln!(out, "caveats: {}", self.caveat_count);
        out
    }
}

/// Resolves a raw XID code string from a query into a studied kind.
///
/// # Errors
///
/// A human-readable message when the code is not a number or maps to a
/// kind the study excludes (XID 13/43, unknown codes).
pub fn parse_xid(raw: &str) -> Result<ErrorKind, String> {
    let code: u16 = raw
        .parse()
        .map_err(|_| format!("bad xid {raw:?}: expected a numeric XID code"))?;
    let kind = ErrorKind::from_code(XidCode::new(code));
    if kind.is_studied() {
        Ok(kind)
    } else {
        Err(format!("xid {code} is not a studied error kind"))
    }
}

/// Parses a query time bound: either raw Unix seconds or ISO-8601
/// `YYYY-MM-DDTHH:MM:SSZ` (the `Timestamp` display format).
///
/// # Errors
///
/// A human-readable message when neither form parses.
pub fn parse_time(raw: &str) -> Result<Timestamp, String> {
    if raw.bytes().all(|b| b.is_ascii_digit()) && !raw.is_empty() {
        return raw
            .parse::<u64>()
            .map(Timestamp::from_unix)
            .map_err(|_| format!("bad time {raw:?}"));
    }
    let digits: Vec<u64> = raw
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or(u64::MAX))
        .collect();
    if let [y, mo, d, h, mi, s] = digits[..] {
        if let Ok(t) =
            Timestamp::from_ymd_hms(y as i32, mo as u32, d as u32, h as u32, mi as u32, s as u32)
        {
            return Ok(t);
        }
    }
    Err(format!(
        "bad time {raw:?}: expected Unix seconds or YYYY-MM-DDTHH:MM:SSZ"
    ))
}

fn fmt_cell(v: Option<f64>) -> String {
    v.map_or(String::new(), |v| format!("{v:.3}"))
}

fn fmt_json(v: Option<f64>) -> String {
    match v {
        // `+ 0.0` folds IEEE negative zero into plain zero for display.
        Some(v) if v.is_finite() => format!("{:.6}", v + 0.0),
        _ => "null".to_owned(),
    }
}

/// One published snapshot: a store plus the monotone id the handle
/// assigned at publish time (surfaced as the `X-Snapshot` header).
#[derive(Debug)]
pub struct Published {
    /// Monotone snapshot id, starting at 1.
    pub id: u64,
    /// The immutable store.
    pub store: StudyStore,
}

/// The swap point between the pipeline and the serving threads.
///
/// Writers build a complete [`StudyStore`] *outside* the lock and then
/// [`publish`](StoreHandle::publish) it; readers
/// [`current`](StoreHandle::current) an `Arc` clone and keep serving from
/// that snapshot no matter how many swaps happen behind them. The lock is
/// held only for the pointer exchange, never during store construction or
/// rendering, so readers are wait-free in all but the swap instant.
#[derive(Debug)]
pub struct StoreHandle {
    current: RwLock<Arc<Published>>,
    next_id: AtomicU64,
}

impl StoreHandle {
    /// Creates the handle with an initial store (snapshot id 1).
    pub fn new(store: StudyStore) -> Self {
        StoreHandle {
            current: RwLock::new(Arc::new(Published { id: 1, store })),
            next_id: AtomicU64::new(2),
        }
    }

    /// Atomically replaces the served snapshot; returns the new id.
    /// Requests already holding the old `Arc` finish on the old snapshot.
    pub fn publish(&self, store: StudyStore) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(Published { id, store });
        match self.current.write() {
            Ok(mut guard) => *guard = published,
            // A poisoned lock only means a reader panicked while cloning
            // the Arc; the data is an Arc swap away from consistent.
            Err(poisoned) => *poisoned.into_inner() = published,
        }
        if obs::is_enabled() {
            obs::counter("servd_snapshot_swaps_total", &[]).inc();
        }
        id
    }

    /// The snapshot to serve this request from.
    pub fn current(&self) -> Arc<Published> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }
}

impl SnapshotSink for StoreHandle {
    /// The streaming pipeline's live-update path: materialized snapshots
    /// land here and become the served store.
    fn publish(&self, report: StudyReport, quarantine: QuarantineReport) {
        StoreHandle::publish(self, StudyStore::build(report, Some(&quarantine)));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hpclog::{PciAddr, XidEvent};
    use resilience::Pipeline;
    use simtime::{Duration, StudyPeriods};

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn sample_report() -> StudyReport {
        let mk = |secs: u64, host: &str, gpu: u8, code: u16| {
            XidEvent::new(
                op_time(secs),
                host,
                PciAddr::for_gpu_index(gpu),
                XidCode::new(code),
                "",
            )
        };
        let events = vec![
            mk(100, "gpub001", 0, 119),
            mk(200, "gpub002", 1, 74),
            mk(5000, "gpub001", 0, 31),
            mk(9000, "gpub003", 2, 119),
            mk(12_000, "gpub001", 3, 63),
        ];
        Pipeline::delta().run_events(events, None, &[], &[], &[])
    }

    fn store() -> StudyStore {
        StudyStore::build(sample_report(), None)
    }

    #[test]
    fn surfaces_match_offline_renderers() {
        let report = sample_report();
        let s = StudyStore::build(report.clone(), None);
        assert_eq!(s.table1(), report::table1(&report));
        assert_eq!(s.table2(), report::table2(&report));
        assert_eq!(s.table3(), report::table3(&report));
        assert_eq!(s.fig2(), report::figure2(&report));
    }

    #[test]
    fn unfiltered_errors_list_everything_in_order() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter::default());
        assert_eq!(csv.lines().count(), 1 + 5);
        let times: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap())
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn host_filter_slices_by_posting_list() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            host: Some("gpub001".to_owned()),
            ..ErrorFilter::default()
        });
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(csv.lines().skip(1).all(|l| l.contains("gpub001")));
    }

    #[test]
    fn combined_filters_intersect() {
        let s = store();
        let filter = ErrorFilter {
            host: Some("gpub001".to_owned()),
            kind: Some(ErrorKind::GspError),
            from: Some(op_time(0)),
            to: Some(op_time(10_000)),
        };
        let csv = s.errors_csv(&filter);
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("gpub001") && rows[0].contains("GSP"));
    }

    #[test]
    fn time_bounds_are_inclusive_and_binary_searched() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            from: Some(op_time(200)),
            to: Some(op_time(9000)),
            ..ErrorFilter::default()
        });
        assert_eq!(csv.lines().count(), 1 + 3); // 200, 5000, 9000
    }

    #[test]
    fn unknown_host_yields_empty_slice() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            host: Some("nosuchhost".to_owned()),
            ..ErrorFilter::default()
        });
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn mtbe_rows_match_stats() {
        let report = sample_report();
        let s = StudyStore::build(report.clone(), None);
        let csv = s.mtbe_csv(Some(ErrorKind::GspError));
        let op_row = csv.lines().find(|l| l.contains(",op,")).unwrap();
        let count = report.stats.count(ErrorKind::GspError, Phase::Op);
        assert!(op_row.starts_with(&format!("119,GSP Error,op,{count},")));
        let all = s.mtbe_csv(None);
        assert_eq!(all.lines().count(), 1 + 2 * ErrorKind::STUDIED.len());
    }

    #[test]
    fn parse_xid_accepts_studied_rejects_excluded() {
        assert_eq!(parse_xid("119").unwrap(), ErrorKind::GspError);
        assert_eq!(parse_xid("120").unwrap(), ErrorKind::GspError);
        assert!(parse_xid("13").is_err());
        assert!(parse_xid("9999").is_err());
        assert!(parse_xid("abc").is_err());
    }

    #[test]
    fn parse_time_accepts_unix_and_iso() {
        assert_eq!(parse_time("1000").unwrap(), Timestamp::from_unix(1000));
        let iso = op_time(0).to_string();
        assert_eq!(parse_time(&iso).unwrap(), op_time(0));
        assert!(parse_time("not-a-time").is_err());
    }

    #[test]
    fn availability_json_is_deterministic() {
        let s = store();
        assert_eq!(s.availability_json(), s.availability_json());
        assert!(s.availability_json().contains("\"outages\": 0"));
    }

    #[test]
    fn handle_swaps_atomically_and_monotonically() {
        let handle = StoreHandle::new(store());
        assert_eq!(handle.current().id, 1);
        let held = handle.current();
        let id = handle.publish(store());
        assert_eq!(id, 2);
        assert_eq!(handle.current().id, 2);
        // A reader that grabbed the old snapshot keeps it intact.
        assert_eq!(held.id, 1);
        assert_eq!(held.store.error_rows(), 5);
    }

    #[test]
    fn snapshot_sink_publishes_materialized_reports() {
        let handle = StoreHandle::new(store());
        let mut engine = resilience::StreamingPipeline::new(Pipeline::delta(), 2022);
        engine.push_log(b"");
        engine.publish_snapshot(&handle);
        assert_eq!(handle.current().id, 2);
        assert_eq!(handle.current().store.error_rows(), 0);
    }
}
