//! The immutable columnar study store — sharded by host range — and its
//! atomic snapshot handle.
//!
//! A [`StudyStore`] is built once from a finished pipeline run (a
//! [`StudyReport`] plus, optionally, its [`QuarantineReport`]) and never
//! mutated afterwards. Construction decomposes the coalesced error set
//! into one or more host-range *shards* — contiguous ranges of the
//! sorted host dictionary, balanced by row count — each holding its rows'
//! column vectors in the canonical `(time, host)` order plus sorted
//! secondary indexes (per-host and per-kind posting lists). Every shard
//! also keeps its rows' *global row ids*: because shards partition the
//! canonical row sequence, k-way merging per-shard result streams by
//! global row id (the same [`hpclog::shard::merge_sorted_by`] kernel the
//! ingest pipeline uses) reconstructs exactly the single-store row
//! order, so a scattered scan renders byte-identical to the unsharded
//! renderer. `tests/shard_equivalence.rs` holds that invariant across
//! shard counts and chaos rates.
//!
//! Query endpoints slice shard columns with binary searches — a filtered
//! `/errors` request never scans rows outside the narrowest applicable
//! index — and multi-shard scans scatter across the handle's
//! [`ScanPool`] before merging.
//!
//! Serving threads never see a store mid-build: a [`StoreHandle`] holds
//! the current store behind an `Arc` and swaps it atomically on
//! [`publish`](StoreHandle::publish). Readers take the lock only long
//! enough to clone the `Arc` (two atomic ops); they never wait on store
//! construction, and a request that started on the old snapshot finishes
//! on the old snapshot — responses are never torn across a swap. The
//! streaming pipeline feeds live updates through the
//! [`SnapshotSink`](resilience::incremental::SnapshotSink) impl,
//! rebuilding with the same shard count the handle was seeded with.

use crate::pool::ScanPool;
use resilience::incremental::SnapshotSink;
use resilience::report;
use resilience::rollup::{self, AvailabilityCell, ImpactCell, RollupCube};
use resilience::{QuarantineReport, StudyReport};
use simtime::{Bucket, Phase, Timestamp, Tz};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use xid::{ErrorKind, XidCode};

/// A filter over the coalesced error columns (the `/errors` query).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorFilter {
    /// Restrict to one host.
    pub host: Option<String>,
    /// Restrict to one error kind (resolved from a raw XID code).
    pub kind: Option<ErrorKind>,
    /// Inclusive lower time bound.
    pub from: Option<Timestamp>,
    /// Exclusive upper time bound: a row at exactly `to` is *not*
    /// returned, so adjacent `[from, to)` windows tile the timeline
    /// without double-counting — the same contract `/rollup` applies to
    /// bucket starts.
    pub to: Option<Timestamp>,
}

/// One host-range shard: the columns, indexes, and global row ids of a
/// contiguous slice of the host dictionary.
///
/// Rows appear in canonical global order restricted to this shard's
/// hosts; a subsequence of a `(time, host)`-sorted sequence is still
/// time-sorted, so `times` is sorted and every posting list (ascending
/// local row ids) is in time order, admitting the same binary searches
/// the unsharded store used.
#[derive(Debug, Default)]
struct Shard {
    /// Global row ids, ascending — the merge key for scatter-gather.
    rows: Vec<u32>,
    times: Vec<u64>,
    /// Global host ids (indexes into the store-wide dictionary).
    host_ids: Vec<u32>,
    pcis: Vec<String>,
    kinds: Vec<ErrorKind>,
    merged: Vec<u64>,
    /// Global host id → local row indexes, ascending.
    by_host: BTreeMap<u32, Vec<u32>>,
    /// Kind → local row indexes, ascending.
    by_kind: BTreeMap<ErrorKind, Vec<u32>>,
}

impl Shard {
    /// Local row indexes matching the filter, ascending (= time order).
    /// `host_id` is pre-resolved against the global dictionary.
    fn select(&self, host_id: Option<u32>, filter: &ErrorFilter) -> Vec<u32> {
        let rows: &[u32] = match (host_id, filter.kind) {
            (Some(id), _) => self.by_host.get(&id).map_or(&[][..], Vec::as_slice),
            (None, Some(kind)) => self.by_kind.get(&kind).map_or(&[][..], Vec::as_slice),
            (None, None) => {
                let lo = filter
                    .from
                    .map_or(0, |t| self.times.partition_point(|&time| time < t.unix()));
                let hi = filter.to.map_or(self.times.len(), |t| {
                    self.times.partition_point(|&time| time < t.unix())
                });
                return (lo as u32..hi as u32).collect();
            }
        };
        let slice = self.time_slice(rows, filter);
        match filter.kind {
            // Residual predicate, applied only when both host and kind
            // were given: the slice is already host- and time-bounded.
            Some(kind) if host_id.is_some() => slice
                .iter()
                .copied()
                .filter(|&r| self.kinds[r as usize] == kind)
                .collect(),
            _ => slice.to_vec(),
        }
    }

    /// Slices a time-ordered posting list to the filter's time bounds by
    /// binary search.
    fn time_slice<'a>(&self, rows: &'a [u32], filter: &ErrorFilter) -> &'a [u32] {
        let lo = filter.from.map_or(0, |t| {
            rows.partition_point(|&r| self.times[r as usize] < t.unix())
        });
        let hi = filter.to.map_or(rows.len(), |t| {
            rows.partition_point(|&r| self.times[r as usize] < t.unix())
        });
        &rows[lo..hi]
    }
}

/// Which pre-aggregated surface a `/rollup` request reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupMetric {
    /// Coalesced error counts per bucket (total or one studied kind).
    Errors,
    /// Error counts plus the MTBE the bucket's span implies.
    Mtbe,
    /// Distinct GPU-failed jobs per bucket of their termination instant.
    Impact,
    /// Node-outage downtime hours apportioned to each bucket.
    Availability,
}

impl RollupMetric {
    /// Parses the `metric=` query value.
    ///
    /// # Errors
    ///
    /// A human-readable message listing the accepted values.
    pub fn parse(raw: &str) -> Result<RollupMetric, String> {
        match raw {
            "errors" => Ok(RollupMetric::Errors),
            "mtbe" => Ok(RollupMetric::Mtbe),
            "impact" => Ok(RollupMetric::Impact),
            "availability" => Ok(RollupMetric::Availability),
            other => Err(format!(
                "unknown metric {other:?}: expected errors|mtbe|impact|availability"
            )),
        }
    }

    fn label(self) -> &'static str {
        match self {
            RollupMetric::Errors => "errors",
            RollupMetric::Mtbe => "mtbe",
            RollupMetric::Impact => "impact",
            RollupMetric::Availability => "availability",
        }
    }
}

/// A parsed `/rollup` query. `from` is inclusive and `to` exclusive on
/// the *bucket start* — the same `[from, to)` contract as `/errors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupQuery {
    /// Which surface to read.
    pub metric: RollupMetric,
    /// Bucket granularity (default `day`).
    pub bucket: Bucket,
    /// Builtin timezone name (default `UTC`).
    pub tz: String,
    /// Restrict to one host (metric=errors only).
    pub host: Option<String>,
    /// Restrict counts to one studied kind (not with availability).
    pub kind: Option<ErrorKind>,
    /// Keep buckets whose start is `>= from`.
    pub from: Option<Timestamp>,
    /// Keep buckets whose start is `< to`.
    pub to: Option<Timestamp>,
}

impl RollupQuery {
    /// The default query for a metric: day buckets in UTC, no filters.
    pub fn for_metric(metric: RollupMetric) -> Self {
        RollupQuery {
            metric,
            bucket: Bucket::Day,
            tz: "UTC".to_owned(),
            host: None,
            kind: None,
            from: None,
            to: None,
        }
    }
}

/// The pre-aggregated `/rollup` surfaces for one `(timezone, bucket)`
/// pair, built at store-construction time.
#[derive(Debug)]
struct RollupSet {
    errors: RollupCube,
    impact: Vec<ImpactCell>,
    availability: Vec<AvailabilityCell>,
}

/// The immutable, columnar serving snapshot of one study.
///
/// Everything a request can ask for is either pre-rendered at build time
/// (the paper surfaces, `/jobs/impact`, `/availability` — all of which
/// must be byte-identical to the offline renderers) or answered from the
/// shard columns.
#[derive(Debug)]
pub struct StudyStore {
    report: StudyReport,
    caveat_count: usize,
    // Pre-rendered paper surfaces (byte-identical to `resilience::report`).
    table1: String,
    table2: String,
    table3: String,
    fig2: String,
    jobs_impact: String,
    availability: String,
    // Host dictionary (sorted, deduplicated), the host → shard map, and
    // the host-range shards.
    hosts: Vec<String>,
    shard_of_host: Vec<u32>,
    shards: Vec<Shard>,
    rows_total: usize,
    // Pre-aggregated `/rollup` cubes, one set per (builtin tz, bucket).
    rollups: BTreeMap<(String, Bucket), RollupSet>,
}

impl StudyStore {
    /// Builds an unsharded (single-shard) store from a finished run.
    /// `quarantine` carries the lenient run's trust qualifiers into
    /// `/snapshot`; pass `None` for strict runs.
    pub fn build(report: StudyReport, quarantine: Option<&QuarantineReport>) -> Self {
        Self::build_sharded(report, quarantine, 1)
    }

    /// Builds the store split into `shards` host-range shards (clamped
    /// to at least 1), balanced by row count. Shard count is a pure
    /// layout choice: every rendered surface is byte-identical across
    /// counts.
    pub fn build_sharded(
        report: StudyReport,
        quarantine: Option<&QuarantineReport>,
        shards: usize,
    ) -> Self {
        let mut span = obs::span("servd_store_build");
        span.add_items(report.errors.len() as u64);

        let table1 = report::table1(&report);
        let table2 = report::table2(&report);
        let table3 = report::table3(&report);
        let fig2 = report::figure2(&report);

        let mut hosts: Vec<String> = report.errors.iter().map(|e| e.host.clone()).collect();
        hosts.sort();
        hosts.dedup();

        // Host-range partition balanced by row count.
        let mut rows_per_host = vec![0usize; hosts.len()];
        for e in &report.errors {
            if let Ok(i) = hosts.binary_search(&e.host) {
                rows_per_host[i] += 1;
            }
        }
        let nshards = shards.max(1);
        let shard_of_host = partition_by_weight(&rows_per_host, nshards);
        let mut built: Vec<Shard> = (0..nshards).map(|_| Shard::default()).collect();

        for (row, e) in report.errors.iter().enumerate() {
            let host_id = match hosts.binary_search(&e.host) {
                Ok(i) => i as u32,
                // Unreachable (the dictionary was built from these rows),
                // but a wrong id is strictly worse than a skipped row.
                Err(_) => continue,
            };
            let shard = &mut built[shard_of_host[host_id as usize] as usize];
            let local = shard.rows.len() as u32;
            shard.rows.push(row as u32);
            shard.times.push(e.time.unix());
            shard.host_ids.push(host_id);
            shard.pcis.push(e.pci.to_string());
            shard.kinds.push(e.kind);
            shard.merged.push(e.merged_lines);
            shard.by_host.entry(host_id).or_default().push(local);
            shard.by_kind.entry(e.kind).or_default().push(local);
        }

        // Pre-aggregate every `/rollup` surface: per-shard error cubes
        // k-way merged through the same kernel the scatter-gather read
        // path uses (serial ≡ sharded by construction), plus global
        // impact and availability cells, for each builtin tz × bucket.
        let mut rollups = BTreeMap::new();
        for name in Tz::BUILTIN {
            let Ok(tz) = Tz::by_name(name) else { continue };
            for bucket in Bucket::ALL {
                let per_shard: Vec<RollupCube> = built
                    .iter()
                    .map(|s| {
                        RollupCube::build(
                            &tz,
                            bucket,
                            s.times
                                .iter()
                                .zip(&s.kinds)
                                .map(|(&t, &k)| (Timestamp::from_unix(t), k)),
                        )
                    })
                    .collect();
                rollups.insert(
                    (name.to_owned(), bucket),
                    RollupSet {
                        errors: RollupCube::merge(per_shard),
                        impact: rollup::impact_cells(&tz, bucket, &report.impact),
                        availability: rollup::availability_cells(&tz, bucket, &report.op_outages),
                    },
                );
            }
        }

        let rows_total = report.errors.len();
        let jobs_impact = render_jobs_impact(&report);
        let availability = render_availability(&report);
        StudyStore {
            caveat_count: quarantine.map_or(0, |q| q.caveats.len()),
            report,
            table1,
            table2,
            table3,
            fig2,
            jobs_impact,
            availability,
            hosts,
            shard_of_host,
            shards: built,
            rows_total,
            rollups,
        }
    }

    /// The report the store was built from.
    pub fn report(&self) -> &StudyReport {
        &self.report
    }

    /// Number of coalesced error rows stored.
    pub fn error_rows(&self) -> usize {
        self.rows_total
    }

    /// How many host-range shards the store was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The pre-rendered Table I (byte-identical to [`report::table1`]).
    pub fn table1(&self) -> &str {
        &self.table1
    }

    /// The pre-rendered Table II (byte-identical to [`report::table2`]).
    pub fn table2(&self) -> &str {
        &self.table2
    }

    /// The pre-rendered Table III (byte-identical to [`report::table3`]).
    pub fn table3(&self) -> &str {
        &self.table3
    }

    /// The pre-rendered Figure 2 (byte-identical to [`report::figure2`]).
    pub fn fig2(&self) -> &str {
        &self.fig2
    }

    /// Which shards a filter can touch: one for a host filter, all
    /// otherwise (an unknown host touches none).
    fn shards_for(&self, filter: &ErrorFilter) -> Vec<usize> {
        match &filter.host {
            Some(host) => match self.hosts.binary_search_by(|h| h.as_str().cmp(host)) {
                Ok(i) => vec![self.shard_of_host[i] as usize],
                Err(_) => Vec::new(),
            },
            None => (0..self.shards.len()).collect(),
        }
    }

    /// Resolves the filter's host against the dictionary.
    fn host_id(&self, filter: &ErrorFilter) -> Option<u32> {
        filter.host.as_ref().and_then(|host| {
            self.hosts
                .binary_search_by(|h| h.as_str().cmp(host))
                .ok()
                .map(|i| i as u32)
        })
    }

    /// One shard's `/errors` slice as `(global_row, csv_line)` pairs,
    /// ascending by global row — the scatter unit and merge input.
    fn shard_errors(&self, shard: usize, filter: &ErrorFilter) -> Vec<(u32, String)> {
        let s = &self.shards[shard];
        let host_id = self.host_id(filter);
        s.select(host_id, filter)
            .into_iter()
            .map(|local| {
                let r = local as usize;
                let line = format!(
                    "{},{},{},{},{},{}",
                    Timestamp::from_unix(s.times[r]),
                    self.hosts[s.host_ids[r] as usize],
                    s.pcis[r],
                    s.kinds[r].primary_code(),
                    s.kinds[r].abbreviation(),
                    s.merged[r]
                );
                (s.rows[r], line)
            })
            .collect()
    }

    /// Assembles per-shard `/errors` streams into the final CSV: k-way
    /// merge by global row id (unique across shards), which provably
    /// reconstructs the canonical single-store row order.
    fn assemble_errors(streams: Vec<Vec<(u32, String)>>) -> String {
        let mut out = String::from("time,host,pci,xid,kind,merged_lines\n");
        if streams.len() == 1 {
            if let Some(stream) = streams.into_iter().next() {
                for (_, line) in stream {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            return out;
        }
        for (_, line) in
            hpclog::shard::merge_sorted_by(streams, |a: &(u32, String), b| a.0.cmp(&b.0))
        {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the `/errors` slice as CSV:
    /// `time,host,pci,xid,kind,merged_lines`, rows in canonical order.
    /// Serial path — scans shards on the calling thread; the scattered
    /// path ([`errors_csv_scattered`]) produces identical bytes.
    pub fn errors_csv(&self, filter: &ErrorFilter) -> String {
        let streams: Vec<Vec<(u32, String)>> = self
            .shards_for(filter)
            .into_iter()
            .map(|i| self.shard_errors(i, filter))
            .collect();
        if streams.is_empty() {
            return String::from("time,host,pci,xid,kind,merged_lines\n");
        }
        Self::assemble_errors(streams)
    }

    /// The two `/mtbe` rows (`pre_op`, `op`) for one kind — the per-kind
    /// scatter unit.
    fn mtbe_kind_block(&self, k: ErrorKind) -> String {
        let stats = &self.report.stats;
        let mut out = String::new();
        for (phase, label) in [(Phase::PreOp, "pre_op"), (Phase::Op, "op")] {
            let _ = writeln!(
                out,
                "{},{},{label},{},{},{}",
                k.primary_code(),
                k.abbreviation(),
                stats.count(k, phase),
                fmt_cell(stats.mtbe_system(k, phase)),
                fmt_cell(stats.mtbe_per_node(k, phase)),
            );
        }
        out
    }

    /// Renders `/mtbe` as CSV, one row per `(kind, phase)`:
    /// `xid,kind,phase,count,mtbe_system_h,mtbe_node_h`. With `kind`
    /// given, only that kind's rows.
    pub fn mtbe_csv(&self, kind: Option<ErrorKind>) -> String {
        let mut out = String::from("xid,kind,phase,count,mtbe_system_h,mtbe_node_h\n");
        let kinds: Vec<ErrorKind> = match kind {
            Some(k) => vec![k],
            None => ErrorKind::STUDIED.to_vec(),
        };
        for k in kinds {
            out.push_str(&self.mtbe_kind_block(k));
        }
        out
    }

    /// Renders `/jobs/impact`: the Table II join as CSV plus the total
    /// GPU-failed-jobs line (pre-rendered at build/publish time).
    pub fn jobs_impact_csv(&self) -> String {
        self.jobs_impact.clone()
    }

    /// Renders `/availability` as a deterministic JSON object
    /// (pre-rendered at build/publish time).
    pub fn availability_json(&self) -> String {
        self.availability.clone()
    }

    /// Renders `/snapshot` metadata for a snapshot id assigned by the
    /// handle.
    pub fn snapshot_info(&self, id: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "snapshot: {id}");
        let _ = writeln!(out, "errors: {}", self.error_rows());
        let _ = writeln!(out, "hosts: {}", self.hosts.len());
        let _ = writeln!(
            out,
            "gpu_jobs_failed: {}",
            self.report.impact.gpu_failed_jobs()
        );
        let _ = writeln!(out, "outages: {}", self.report.availability.outage_count());
        let _ = writeln!(out, "caveats: {}", self.caveat_count);
        out
    }

    /// One host's `(time, kind)` events in time order — the on-the-fly
    /// cube input for host-scoped `/rollup` queries. An unknown host
    /// yields no events (and therefore an empty cube), matching the
    /// `/errors` contract.
    fn host_events(&self, host: &str) -> Vec<(Timestamp, ErrorKind)> {
        let Ok(i) = self.hosts.binary_search_by(|h| h.as_str().cmp(host)) else {
            return Vec::new();
        };
        let s = &self.shards[self.shard_of_host[i] as usize];
        s.by_host
            .get(&(i as u32))
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .map(|&r| {
                (
                    Timestamp::from_unix(s.times[r as usize]),
                    s.kinds[r as usize],
                )
            })
            .collect()
    }

    /// Renders a `/rollup` query as CSV from the pre-aggregated cubes.
    /// Rows are sparse (buckets with a zero value are omitted), ascending
    /// by bucket start, and sliced to `[from, to)` on the bucket *start*.
    /// Each row leads with the DST-disambiguated civil label of its
    /// bucket and carries the bucket's UTC span.
    ///
    /// # Errors
    ///
    /// A human-readable message when the timezone is not a builtin or a
    /// filter does not apply to the metric (host is errors-only, xid
    /// never applies to availability).
    pub fn rollup_csv(&self, q: &RollupQuery) -> Result<String, String> {
        let tz = Tz::by_name(&q.tz).map_err(|e| e.to_string())?;
        if q.host.is_some() && q.metric != RollupMetric::Errors {
            return Err("host filter applies to metric=errors only".to_owned());
        }
        if q.kind.is_some() && q.metric == RollupMetric::Availability {
            return Err("xid filter does not apply to metric=availability".to_owned());
        }
        let set = self
            .rollups
            .get(&(q.tz.clone(), q.bucket))
            .ok_or_else(|| format!("no rollup cube for tz {:?}", q.tz))?;
        let in_window =
            |start: Timestamp| q.from.is_none_or(|f| start >= f) && q.to.is_none_or(|t| start < t);
        let kind_column = q.kind.and_then(rollup::kind_index);
        let mut rendered = 0u64;

        let mut out = String::new();
        match q.metric {
            RollupMetric::Errors | RollupMetric::Mtbe => {
                // A host filter folds that host's posting list into a
                // fresh cube; the common unfiltered path reads the
                // pre-merged one.
                let host_cube = q
                    .host
                    .as_ref()
                    .map(|host| RollupCube::build(&tz, q.bucket, self.host_events(host)));
                let cube = host_cube.as_ref().unwrap_or(&set.errors);
                let mtbe = q.metric == RollupMetric::Mtbe;
                out.push_str(if mtbe {
                    "bucket,start,end,count,mtbe_system_h,mtbe_node_h\n"
                } else {
                    "bucket,start,end,count\n"
                });
                let nodes = self.report.stats.node_count() as f64;
                for cell in cube.cells() {
                    if !in_window(cell.start) {
                        continue;
                    }
                    let count = kind_column.map_or(cell.total, |i| cell.by_kind[i]);
                    if count == 0 {
                        continue;
                    }
                    rendered += 1;
                    let label = tz.bucket_label(q.bucket, cell.start);
                    if mtbe {
                        let span_h = (cell.end.unix() - cell.start.unix()) as f64 / 3600.0;
                        let system = span_h / count as f64;
                        let _ = writeln!(
                            out,
                            "{label},{},{},{count},{},{}",
                            cell.start,
                            cell.end,
                            fmt_cell(Some(system)),
                            fmt_cell(Some(system * nodes)),
                        );
                    } else {
                        let _ = writeln!(out, "{label},{},{},{count}", cell.start, cell.end);
                    }
                }
            }
            RollupMetric::Impact => {
                out.push_str("bucket,start,end,failed_jobs\n");
                for cell in &set.impact {
                    if !in_window(cell.start) {
                        continue;
                    }
                    let count = kind_column.map_or(cell.failed_jobs, |i| cell.failed_by_kind[i]);
                    if count == 0 {
                        continue;
                    }
                    rendered += 1;
                    let _ = writeln!(
                        out,
                        "{},{},{},{count}",
                        tz.bucket_label(q.bucket, cell.start),
                        cell.start,
                        cell.end,
                    );
                }
            }
            RollupMetric::Availability => {
                out.push_str("bucket,start,end,downtime_node_hours\n");
                for cell in &set.availability {
                    if !in_window(cell.start) {
                        continue;
                    }
                    if cell.downtime_node_secs == 0 {
                        continue;
                    }
                    rendered += 1;
                    let _ = writeln!(
                        out,
                        "{},{},{},{}",
                        tz.bucket_label(q.bucket, cell.start),
                        cell.start,
                        cell.end,
                        fmt_cell(Some(cell.downtime_node_secs as f64 / 3600.0)),
                    );
                }
            }
        }
        if obs::is_enabled() {
            obs::counter(
                "servd_rollup_queries_total",
                &[("metric", q.metric.label())],
            )
            .inc();
            obs::counter("servd_rollup_cells_rendered_total", &[]).add(rendered);
        }
        Ok(out)
    }
}

/// Splits `weights` (rows per host, host-dictionary order) into `n`
/// contiguous ranges with roughly equal weight; returns the host → range
/// map. Greedy front-to-back: each range takes hosts until it reaches
/// its fair share of what remains. Ranges may be empty when there are
/// fewer hosts than shards.
fn partition_by_weight(weights: &[usize], n: usize) -> Vec<u32> {
    let mut assignment = vec![0u32; weights.len()];
    let total: usize = weights.iter().sum();
    let mut remaining = total;
    let mut shard = 0usize;
    let mut in_shard = 0usize;
    for (host, &w) in weights.iter().enumerate() {
        let shards_left = n - shard;
        let target = remaining.div_ceil(shards_left.max(1));
        if in_shard > 0 && in_shard + w > target && shard + 1 < n {
            shard += 1;
            in_shard = 0;
        }
        assignment[host] = shard as u32;
        in_shard += w;
        remaining -= w;
    }
    assignment
}

// ------------------------------------------------- scattered renderers

/// The scattered `/errors` renderer: fans the involved shards across
/// `pool`, then k-way merges the streams by global row id. Byte-identical
/// to [`StudyStore::errors_csv`] by construction (same per-shard slices,
/// same merge kernel) — an invariant `tests/shard_equivalence.rs` pins.
///
/// When a request [`Trace`](obs::Trace) rides along, every shard scan
/// records a `shard_scan` child span from its pool thread and the k-way
/// merge records a `merge` span; the serial fallback records nothing
/// beyond the router's `render` span. Tracing never changes the bytes.
pub fn errors_csv_scattered(
    published: &Arc<Published>,
    filter: &ErrorFilter,
    pool: &ScanPool,
    trace: Option<&Arc<obs::Trace>>,
) -> String {
    let store = &published.store;
    let involved = store.shards_for(filter);
    if involved.len() <= 1 || pool.threads() == 0 {
        return store.errors_csv(filter);
    }
    if obs::is_enabled() {
        obs::counter("servd_scatter_queries_total", &[("endpoint", "errors")]).inc();
        obs::counter("servd_scatter_shard_scans_total", &[]).add(involved.len() as u64);
    }
    let snapshot = Arc::clone(published);
    let query = filter.clone();
    let shard_ids = involved.clone();
    let scan_trace = trace.cloned();
    let streams = pool.run(
        involved.len(),
        Arc::new(move |i| {
            let mut guard = scan_trace.as_ref().map(|t| t.stage("shard_scan"));
            if let Some(g) = guard.as_mut() {
                g.set_detail(format!("shard={}", shard_ids[i]));
            }
            let stream = snapshot.store.shard_errors(shard_ids[i], &query);
            if let Some(g) = guard.as_mut() {
                g.add_items(stream.len() as u64);
            }
            stream
        }),
    );
    let mut merge = trace.map(|t| t.stage("merge"));
    if let Some(g) = merge.as_mut() {
        g.add_items(streams.len() as u64);
    }
    StudyStore::assemble_errors(streams)
}

/// The scattered `/mtbe` renderer: one pool job per studied kind, blocks
/// concatenated in the fixed `ErrorKind::STUDIED` order. Byte-identical
/// to [`StudyStore::mtbe_csv`]. Like [`errors_csv_scattered`], each pool
/// job records a `kind_scan` child span on the riding trace.
pub fn mtbe_csv_scattered(
    published: &Arc<Published>,
    kind: Option<ErrorKind>,
    pool: &ScanPool,
    trace: Option<&Arc<obs::Trace>>,
) -> String {
    if kind.is_some() || pool.threads() == 0 {
        return published.store.mtbe_csv(kind);
    }
    if obs::is_enabled() {
        obs::counter("servd_scatter_queries_total", &[("endpoint", "mtbe")]).inc();
    }
    let snapshot = Arc::clone(published);
    let scan_trace = trace.cloned();
    let blocks = pool.run(
        ErrorKind::STUDIED.len(),
        Arc::new(move |i| {
            let mut guard = scan_trace.as_ref().map(|t| t.stage("kind_scan"));
            if let Some(g) = guard.as_mut() {
                g.set_detail(format!(
                    "xid={}",
                    ErrorKind::STUDIED[i].primary_code().value()
                ));
            }
            snapshot.store.mtbe_kind_block(ErrorKind::STUDIED[i])
        }),
    );
    let mut merge = trace.map(|t| t.stage("merge"));
    if let Some(g) = merge.as_mut() {
        g.add_items(blocks.len() as u64);
    }
    let mut out = String::from("xid,kind,phase,count,mtbe_system_h,mtbe_node_h\n");
    for block in blocks {
        out.push_str(&block);
    }
    out
}

fn render_jobs_impact(report: &StudyReport) -> String {
    let mut out = report::table2_csv(report);
    let _ = writeln!(
        out,
        "total_gpu_failed_jobs,{}",
        report.impact.gpu_failed_jobs()
    );
    out
}

fn render_availability(report: &StudyReport) -> String {
    let a = &report.availability;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"outages\": {},", a.outage_count());
    let _ = writeln!(out, "  \"mttr_hours\": {},", fmt_json(a.mttr_hours()));
    let _ = writeln!(
        out,
        "  \"total_downtime_node_hours\": {},",
        fmt_json(Some(a.total_downtime_node_hours()))
    );
    let _ = writeln!(out, "  \"mttf_hours\": {},", fmt_json(report.mttf_hours));
    let _ = writeln!(
        out,
        "  \"availability\": {},",
        fmt_json(report.availability_estimate())
    );
    let _ = writeln!(
        out,
        "  \"availability_empirical\": {}",
        fmt_json(Some(a.availability_empirical()))
    );
    out.push_str("}\n");
    out
}

/// Resolves a raw XID code string from a query into a studied kind.
///
/// # Errors
///
/// A human-readable message when the code is not a number or maps to a
/// kind the study excludes (XID 13/43, unknown codes).
pub fn parse_xid(raw: &str) -> Result<ErrorKind, String> {
    let code: u16 = raw
        .parse()
        .map_err(|_| format!("bad xid {raw:?}: expected a numeric XID code"))?;
    let kind = ErrorKind::from_code(XidCode::new(code));
    if kind.is_studied() {
        Ok(kind)
    } else {
        Err(format!("xid {code} is not a studied error kind"))
    }
}

/// Parses a query time bound: either raw Unix seconds or ISO-8601
/// `YYYY-MM-DDTHH:MM:SSZ` (the `Timestamp` display format).
///
/// # Errors
///
/// A human-readable message when neither form parses.
pub fn parse_time(raw: &str) -> Result<Timestamp, String> {
    if raw.bytes().all(|b| b.is_ascii_digit()) && !raw.is_empty() {
        return raw
            .parse::<u64>()
            .map(Timestamp::from_unix)
            .map_err(|_| format!("bad time {raw:?}"));
    }
    let digits: Vec<u64> = raw
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or(u64::MAX))
        .collect();
    if let [y, mo, d, h, mi, s] = digits[..] {
        if let Ok(t) =
            Timestamp::from_ymd_hms(y as i32, mo as u32, d as u32, h as u32, mi as u32, s as u32)
        {
            return Ok(t);
        }
    }
    Err(format!(
        "bad time {raw:?}: expected Unix seconds or YYYY-MM-DDTHH:MM:SSZ"
    ))
}

fn fmt_cell(v: Option<f64>) -> String {
    v.map_or(String::new(), |v| format!("{v:.3}"))
}

fn fmt_json(v: Option<f64>) -> String {
    match v {
        // `+ 0.0` folds IEEE negative zero into plain zero for display.
        Some(v) if v.is_finite() => format!("{:.6}", v + 0.0),
        _ => "null".to_owned(),
    }
}

/// One published snapshot: a store plus the monotone id the handle
/// assigned at publish time (surfaced as the `X-Snapshot` header) and
/// the publish instant (surfaced as `snapshot_age_secs` in `/readyz`).
#[derive(Debug)]
pub struct Published {
    /// Monotone snapshot id, starting at 1.
    pub id: u64,
    /// When this snapshot became the served one.
    pub at: Instant,
    /// The immutable store.
    pub store: StudyStore,
}

/// The swap point between the pipeline and the serving threads.
///
/// Writers build a complete [`StudyStore`] *outside* the lock and then
/// [`publish`](StoreHandle::publish) it; readers
/// [`current`](StoreHandle::current) an `Arc` clone and keep serving from
/// that snapshot no matter how many swaps happen behind them. The lock is
/// held only for the pointer exchange, never during store construction or
/// rendering, so readers are wait-free in all but the swap instant.
///
/// The handle also owns the [`ScanPool`] shard-parallel queries scatter
/// over, and remembers the initial store's shard count so snapshots
/// published through the [`SnapshotSink`] path keep the same layout.
#[derive(Debug)]
pub struct StoreHandle {
    current: RwLock<Arc<Published>>,
    next_id: AtomicU64,
    pool: ScanPool,
    publish_shards: AtomicUsize,
}

impl StoreHandle {
    /// Creates the handle with an initial store (snapshot id 1) and a
    /// machine-sized scan pool. Later [`SnapshotSink`] publishes rebuild
    /// with the initial store's shard count.
    pub fn new(store: StudyStore) -> Self {
        let shards = store.shard_count();
        StoreHandle {
            current: RwLock::new(Arc::new(Published {
                id: 1,
                at: Instant::now(),
                store,
            })),
            next_id: AtomicU64::new(2),
            pool: ScanPool::for_machine(),
            publish_shards: AtomicUsize::new(shards),
        }
    }

    /// Atomically replaces the served snapshot; returns the new id.
    /// Requests already holding the old `Arc` finish on the old snapshot.
    pub fn publish(&self, store: StudyStore) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(Published {
            id,
            at: Instant::now(),
            store,
        });
        match self.current.write() {
            Ok(mut guard) => *guard = published,
            // A poisoned lock only means a reader panicked while cloning
            // the Arc; the data is an Arc swap away from consistent.
            Err(poisoned) => *poisoned.into_inner() = published,
        }
        if obs::is_enabled() {
            obs::counter("servd_snapshot_swaps_total", &[]).inc();
        }
        id
    }

    /// The snapshot to serve this request from.
    pub fn current(&self) -> Arc<Published> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The pool shard-parallel scans scatter over.
    pub fn scan_pool(&self) -> &ScanPool {
        &self.pool
    }

    /// The shard count used for snapshots published via [`SnapshotSink`].
    pub fn publish_shards(&self) -> usize {
        self.publish_shards.load(Ordering::Relaxed).max(1)
    }
}

impl SnapshotSink for StoreHandle {
    /// The streaming pipeline's live-update path: materialized snapshots
    /// land here and become the served store, sharded like the initial
    /// store.
    fn publish(&self, report: StudyReport, quarantine: QuarantineReport) {
        StoreHandle::publish(
            self,
            StudyStore::build_sharded(report, Some(&quarantine), self.publish_shards()),
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hpclog::{PciAddr, XidEvent};
    use resilience::Pipeline;
    use simtime::{Duration, StudyPeriods};

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn sample_report() -> StudyReport {
        let mk = |secs: u64, host: &str, gpu: u8, code: u16| {
            XidEvent::new(
                op_time(secs),
                host,
                PciAddr::for_gpu_index(gpu),
                XidCode::new(code),
                "",
            )
        };
        let events = vec![
            mk(100, "gpub001", 0, 119),
            mk(200, "gpub002", 1, 74),
            mk(5000, "gpub001", 0, 31),
            mk(9000, "gpub003", 2, 119),
            mk(12_000, "gpub001", 3, 63),
        ];
        Pipeline::delta().run_events(events, None, &[], &[], &[])
    }

    fn store() -> StudyStore {
        StudyStore::build(sample_report(), None)
    }

    #[test]
    fn surfaces_match_offline_renderers() {
        let report = sample_report();
        let s = StudyStore::build(report.clone(), None);
        assert_eq!(s.table1(), report::table1(&report));
        assert_eq!(s.table2(), report::table2(&report));
        assert_eq!(s.table3(), report::table3(&report));
        assert_eq!(s.fig2(), report::figure2(&report));
    }

    #[test]
    fn unfiltered_errors_list_everything_in_order() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter::default());
        assert_eq!(csv.lines().count(), 1 + 5);
        let times: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap())
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn host_filter_slices_by_posting_list() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            host: Some("gpub001".to_owned()),
            ..ErrorFilter::default()
        });
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(csv.lines().skip(1).all(|l| l.contains("gpub001")));
    }

    #[test]
    fn combined_filters_intersect() {
        let s = store();
        let filter = ErrorFilter {
            host: Some("gpub001".to_owned()),
            kind: Some(ErrorKind::GspError),
            from: Some(op_time(0)),
            to: Some(op_time(10_000)),
        };
        let csv = s.errors_csv(&filter);
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("gpub001") && rows[0].contains("GSP"));
    }

    #[test]
    fn time_bounds_are_from_inclusive_to_exclusive() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            from: Some(op_time(200)),
            to: Some(op_time(9000)),
            ..ErrorFilter::default()
        });
        // 200 is on the inclusive `from` edge, 9000 on the exclusive
        // `to` edge: the window keeps 200 and 5000 only.
        assert_eq!(csv.lines().count(), 1 + 2);
        // Adjacent windows tile: no row is lost or double-counted.
        let shifted = s.errors_csv(&ErrorFilter {
            from: Some(op_time(9000)),
            to: Some(op_time(20_000)),
            ..ErrorFilter::default()
        });
        assert_eq!(shifted.lines().count(), 1 + 2); // 9000, 12_000
                                                    // The same edges through the host-filtered (posting-list) path.
        let hosted = s.errors_csv(&ErrorFilter {
            host: Some("gpub001".to_owned()),
            from: Some(op_time(100)),
            to: Some(op_time(12_000)),
            ..ErrorFilter::default()
        });
        assert_eq!(hosted.lines().count(), 1 + 2); // 100, 5000
    }

    #[test]
    fn unknown_host_yields_empty_slice() {
        let s = store();
        let csv = s.errors_csv(&ErrorFilter {
            host: Some("nosuchhost".to_owned()),
            ..ErrorFilter::default()
        });
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn every_shard_count_renders_identical_surfaces() {
        let report = sample_report();
        let baseline = StudyStore::build(report.clone(), None);
        let filters = [
            ErrorFilter::default(),
            ErrorFilter {
                host: Some("gpub001".to_owned()),
                ..ErrorFilter::default()
            },
            ErrorFilter {
                kind: Some(ErrorKind::GspError),
                ..ErrorFilter::default()
            },
            ErrorFilter {
                from: Some(op_time(200)),
                to: Some(op_time(9000)),
                ..ErrorFilter::default()
            },
        ];
        for n in [1usize, 2, 3, 4, 8, 16] {
            let sharded = StudyStore::build_sharded(report.clone(), None, n);
            assert_eq!(sharded.shard_count(), n);
            for filter in &filters {
                assert_eq!(
                    sharded.errors_csv(filter),
                    baseline.errors_csv(filter),
                    "shards={n} filter={filter:?}"
                );
            }
            assert_eq!(sharded.mtbe_csv(None), baseline.mtbe_csv(None));
            assert_eq!(sharded.jobs_impact_csv(), baseline.jobs_impact_csv());
            assert_eq!(sharded.availability_json(), baseline.availability_json());
        }
    }

    #[test]
    fn scattered_renderers_match_serial_ones() {
        let report = sample_report();
        let pool = ScanPool::new(4);
        for n in [1usize, 2, 4, 8] {
            let published = Arc::new(Published {
                id: 1,
                at: Instant::now(),
                store: StudyStore::build_sharded(report.clone(), None, n),
            });
            for filter in [
                ErrorFilter::default(),
                ErrorFilter {
                    host: Some("gpub001".to_owned()),
                    ..ErrorFilter::default()
                },
                ErrorFilter {
                    kind: Some(ErrorKind::NvlinkError),
                    ..ErrorFilter::default()
                },
            ] {
                assert_eq!(
                    errors_csv_scattered(&published, &filter, &pool, None),
                    published.store.errors_csv(&filter),
                    "shards={n} filter={filter:?}"
                );
            }
            assert_eq!(
                mtbe_csv_scattered(&published, None, &pool, None),
                published.store.mtbe_csv(None)
            );
        }
    }

    #[test]
    fn weight_partition_is_contiguous_and_covers_all_hosts() {
        let weights = [5usize, 1, 1, 1, 8, 2, 2, 4];
        for n in [1usize, 2, 3, 4, 8, 12] {
            let map = partition_by_weight(&weights, n);
            assert_eq!(map.len(), weights.len());
            // Contiguous, non-decreasing shard ids within range.
            for pair in map.windows(2) {
                assert!(pair[0] <= pair[1], "non-contiguous: {map:?}");
            }
            assert!(map.iter().all(|&s| (s as usize) < n), "{map:?}");
        }
    }

    #[test]
    fn mtbe_rows_match_stats() {
        let report = sample_report();
        let s = StudyStore::build(report.clone(), None);
        let csv = s.mtbe_csv(Some(ErrorKind::GspError));
        let op_row = csv.lines().find(|l| l.contains(",op,")).unwrap();
        let count = report.stats.count(ErrorKind::GspError, Phase::Op);
        assert!(op_row.starts_with(&format!("119,GSP Error,op,{count},")));
        let all = s.mtbe_csv(None);
        assert_eq!(all.lines().count(), 1 + 2 * ErrorKind::STUDIED.len());
    }

    #[test]
    fn parse_xid_accepts_studied_rejects_excluded() {
        assert_eq!(parse_xid("119").unwrap(), ErrorKind::GspError);
        assert_eq!(parse_xid("120").unwrap(), ErrorKind::GspError);
        assert!(parse_xid("13").is_err());
        assert!(parse_xid("9999").is_err());
        assert!(parse_xid("abc").is_err());
    }

    #[test]
    fn parse_time_accepts_unix_and_iso() {
        assert_eq!(parse_time("1000").unwrap(), Timestamp::from_unix(1000));
        let iso = op_time(0).to_string();
        assert_eq!(parse_time(&iso).unwrap(), op_time(0));
        assert!(parse_time("not-a-time").is_err());
    }

    #[test]
    fn availability_json_is_deterministic() {
        let s = store();
        assert_eq!(s.availability_json(), s.availability_json());
        assert!(s.availability_json().contains("\"outages\": 0"));
    }

    #[test]
    fn handle_swaps_atomically_and_monotonically() {
        let handle = StoreHandle::new(store());
        assert_eq!(handle.current().id, 1);
        let held = handle.current();
        let id = handle.publish(store());
        assert_eq!(id, 2);
        assert_eq!(handle.current().id, 2);
        // A reader that grabbed the old snapshot keeps it intact.
        assert_eq!(held.id, 1);
        assert_eq!(held.store.error_rows(), 5);
    }

    #[test]
    fn snapshot_sink_preserves_the_shard_layout() {
        let sharded = StudyStore::build_sharded(sample_report(), None, 4);
        let handle = StoreHandle::new(sharded);
        assert_eq!(handle.publish_shards(), 4);
        let mut engine = resilience::StreamingPipeline::new(Pipeline::delta(), 2022);
        engine.push_log(b"");
        engine.publish_snapshot(&handle);
        assert_eq!(handle.current().id, 2);
        assert_eq!(handle.current().store.shard_count(), 4);
    }

    #[test]
    fn rollup_errors_counts_match_raw_rows() {
        let s = store();
        let q = RollupQuery::for_metric(RollupMetric::Errors);
        let csv = s.rollup_csv(&q).unwrap();
        // All five events fall on the same UTC day.
        assert_eq!(csv.lines().count(), 1 + 1, "{csv}");
        assert!(csv.lines().nth(1).unwrap().ends_with(",5"), "{csv}");
        // In hour buckets they spread over op-epoch hours 0, 1, 2, 3.
        let hours = s
            .rollup_csv(&RollupQuery {
                bucket: Bucket::Hour,
                ..q
            })
            .unwrap();
        assert_eq!(hours.lines().count(), 1 + 4, "{hours}");
    }

    #[test]
    fn rollup_kind_and_host_filters_restrict_counts() {
        let s = store();
        let gsp = s
            .rollup_csv(&RollupQuery {
                kind: Some(ErrorKind::GspError),
                ..RollupQuery::for_metric(RollupMetric::Errors)
            })
            .unwrap();
        assert!(gsp.lines().nth(1).unwrap().ends_with(",2"), "{gsp}");
        let hosted = s
            .rollup_csv(&RollupQuery {
                host: Some("gpub001".to_owned()),
                ..RollupQuery::for_metric(RollupMetric::Errors)
            })
            .unwrap();
        assert!(hosted.lines().nth(1).unwrap().ends_with(",3"), "{hosted}");
        let unknown = s
            .rollup_csv(&RollupQuery {
                host: Some("nosuchhost".to_owned()),
                ..RollupQuery::for_metric(RollupMetric::Errors)
            })
            .unwrap();
        assert_eq!(unknown.lines().count(), 1, "{unknown}");
    }

    #[test]
    fn rollup_window_slices_on_bucket_start() {
        let s = store();
        let hour0 = Tz::utc().bucket_start(Bucket::Hour, op_time(0));
        let base = RollupQuery {
            bucket: Bucket::Hour,
            ..RollupQuery::for_metric(RollupMetric::Errors)
        };
        // A window ending exactly on a bucket start excludes that bucket.
        let empty = s
            .rollup_csv(&RollupQuery {
                from: Some(hour0),
                to: Some(hour0),
                ..base.clone()
            })
            .unwrap();
        assert_eq!(empty.lines().count(), 1, "{empty}");
        let first = s
            .rollup_csv(&RollupQuery {
                from: Some(hour0),
                to: Some(hour0 + Duration::from_secs(3600)),
                ..base
            })
            .unwrap();
        // Only hour 0 (events at +100 s and +200 s) survives.
        assert_eq!(first.lines().count(), 1 + 1, "{first}");
        assert!(first.lines().nth(1).unwrap().ends_with(",2"), "{first}");
    }

    #[test]
    fn rollup_rejects_bad_tz_and_inapplicable_filters() {
        let s = store();
        assert!(s
            .rollup_csv(&RollupQuery {
                tz: "Mars/Olympus".to_owned(),
                ..RollupQuery::for_metric(RollupMetric::Errors)
            })
            .is_err());
        assert!(s
            .rollup_csv(&RollupQuery {
                host: Some("gpub001".to_owned()),
                ..RollupQuery::for_metric(RollupMetric::Mtbe)
            })
            .is_err());
        assert!(s
            .rollup_csv(&RollupQuery {
                kind: Some(ErrorKind::GspError),
                ..RollupQuery::for_metric(RollupMetric::Availability)
            })
            .is_err());
    }

    #[test]
    fn rollup_is_identical_across_shard_counts() {
        let report = sample_report();
        let baseline = StudyStore::build(report.clone(), None);
        let metrics = [
            RollupMetric::Errors,
            RollupMetric::Mtbe,
            RollupMetric::Impact,
            RollupMetric::Availability,
        ];
        for n in [2usize, 4, 8] {
            let sharded = StudyStore::build_sharded(report.clone(), None, n);
            for metric in metrics {
                for bucket in Bucket::ALL {
                    for tzname in Tz::BUILTIN {
                        let q = RollupQuery {
                            bucket,
                            tz: tzname.to_owned(),
                            ..RollupQuery::for_metric(metric)
                        };
                        assert_eq!(
                            sharded.rollup_csv(&q).unwrap(),
                            baseline.rollup_csv(&q).unwrap(),
                            "shards={n} {metric:?} {bucket:?} {tzname}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_sink_publishes_materialized_reports() {
        let handle = StoreHandle::new(store());
        let mut engine = resilience::StreamingPipeline::new(Pipeline::delta(), 2022);
        engine.push_log(b"");
        engine.publish_snapshot(&handle);
        assert_eq!(handle.current().id, 2);
        assert_eq!(handle.current().store.error_rows(), 0);
    }
}
