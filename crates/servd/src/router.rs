//! Request routing: path + query → rendered [`Response`].
//!
//! The router is a pure function of `(request, snapshot, cache)`; the
//! snapshot is pinned by cloning the handle's `Arc` **once** at the top,
//! so every byte of a response comes from a single store no matter how
//! many swaps land mid-request. Store-derived endpoints carry an
//! `X-Snapshot` header naming that snapshot and an `X-Cache: hit|miss`
//! header, giving tests a deterministic view of cache behavior without
//! reading global metrics.

use crate::cache::ResponseCache;
use crate::http::{Request, Response};
use crate::store::{parse_time, parse_xid, ErrorFilter, StoreHandle};
use obs::registry::DURATION_US_BUCKETS;
use std::time::Instant;

/// Routes one request against the current snapshot.
pub fn handle(req: &Request, store: &StoreHandle, cache: &ResponseCache) -> Response {
    let started = Instant::now();
    let response = dispatch(req, store, cache);
    if obs::is_enabled() {
        obs::counter(
            "servd_requests_total",
            &[("endpoint", endpoint_label(&req.path))],
        )
        .inc();
        let code = response.status.to_string();
        obs::counter("servd_responses_total", &[("code", &code)]).inc();
        obs::histogram("servd_request_duration_us", &[], DURATION_US_BUCKETS)
            .observe(started.elapsed().as_micros() as u64);
    }
    response
}

/// Collapses paths to a bounded label set so the metric cardinality
/// cannot be driven by request spam.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/snapshot" => "snapshot",
        "/fig2" => "fig2",
        "/errors" => "errors",
        "/mtbe" => "mtbe",
        "/jobs/impact" => "jobs_impact",
        "/availability" => "availability",
        p if p.starts_with("/tables/") => "tables",
        _ => "other",
    }
}

fn dispatch(req: &Request, store: &StoreHandle, cache: &ResponseCache) -> Response {
    if req.method != "GET" && req.method != "HEAD" {
        return Response::text(405, "only GET and HEAD are supported\n");
    }

    // Uncached, snapshot-independent endpoints first.
    match req.path.as_str() {
        "/healthz" => return Response::text(200, "ok\n"),
        "/metrics" => {
            return Response::text(200, obs::global().report().to_prometheus());
        }
        _ => {}
    }

    // Everything else reads the store: pin one snapshot for the whole
    // request.
    let published = store.current();
    let key = ResponseCache::key(&req.path, &req.canonical_query());
    if let Some(cached) = cache.get(published.id, &key) {
        if obs::is_enabled() {
            obs::counter("servd_cache_hits_total", &[]).inc();
        }
        return cached
            .with_header("X-Snapshot", published.id.to_string())
            .with_header("X-Cache", "hit");
    }
    if obs::is_enabled() {
        obs::counter("servd_cache_misses_total", &[]).inc();
    }

    let s = &published.store;
    let response = match req.path.as_str() {
        "/tables/1" => Response::text(200, s.table1()),
        "/tables/2" => Response::text(200, s.table2()),
        "/tables/3" => Response::text(200, s.table3()),
        "/fig2" => Response::text(200, s.fig2()),
        "/errors" => match error_filter(req) {
            Ok(filter) => Response::csv(200, s.errors_csv(&filter)),
            Err(msg) => Response::text(400, msg),
        },
        "/mtbe" => match req.query_value("xid").map(parse_xid).transpose() {
            Ok(kind) => Response::csv(200, s.mtbe_csv(kind)),
            Err(msg) => Response::text(400, format!("{msg}\n")),
        },
        "/jobs/impact" => Response::csv(200, s.jobs_impact_csv()),
        "/availability" => Response::json(200, s.availability_json()),
        "/snapshot" => Response::text(200, s.snapshot_info(published.id)),
        _ => Response::text(404, "no such endpoint\n"),
    };

    if response.status == 200 {
        cache.put(published.id, key, response.clone());
    }
    response
        .with_header("X-Snapshot", published.id.to_string())
        .with_header("X-Cache", "miss")
}

/// Builds the `/errors` filter from the query, rejecting unknown keys so
/// a typo (`?hots=`) fails loudly instead of silently returning the
/// unfiltered set.
fn error_filter(req: &Request) -> Result<ErrorFilter, String> {
    let mut filter = ErrorFilter::default();
    for (k, v) in &req.query {
        match k.as_str() {
            "host" => filter.host = Some(v.clone()),
            "xid" => filter.kind = Some(parse_xid(v)?),
            "from" => filter.from = Some(parse_time(v)?),
            "to" => filter.to = Some(parse_time(v)?),
            other => return Err(format!("unknown query parameter {other:?}\n")),
        }
    }
    Ok(filter)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::StudyStore;
    use resilience::Pipeline;

    fn empty_handle() -> StoreHandle {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        StoreHandle::new(StudyStore::build(report, None))
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            keep_alive: true,
        }
    }

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.extra
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn routes_every_endpoint() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        for path in [
            "/healthz",
            "/metrics",
            "/tables/1",
            "/tables/2",
            "/tables/3",
            "/fig2",
            "/errors",
            "/mtbe",
            "/jobs/impact",
            "/availability",
            "/snapshot",
        ] {
            let resp = handle(&get(path, &[]), &store, &cache);
            assert_eq!(resp.status, 200, "{path}");
        }
        assert_eq!(handle(&get("/nope", &[]), &store, &cache).status, 404);
    }

    #[test]
    fn non_get_is_405() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        let mut req = get("/healthz", &[]);
        req.method = "DELETE".to_owned();
        assert_eq!(handle(&req, &store, &cache).status, 405);
    }

    #[test]
    fn bad_queries_are_400() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        for (path, query) in [
            ("/errors", [("xid", "13")]),
            ("/errors", [("from", "whenever")]),
            ("/errors", [("bogus", "1")]),
            ("/mtbe", [("xid", "abc")]),
        ] {
            let resp = handle(&get(path, &query), &store, &cache);
            assert_eq!(resp.status, 400, "{path}?{query:?}");
        }
    }

    #[test]
    fn cache_hits_on_reordered_params_and_misses_after_swap() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        let a = handle(
            &get("/errors", &[("host", "h"), ("from", "5")]),
            &store,
            &cache,
        );
        assert_eq!(header(&a, "X-Cache"), Some("miss"));
        let b = handle(
            &get("/errors", &[("from", "5"), ("host", "h")]),
            &store,
            &cache,
        );
        assert_eq!(header(&b, "X-Cache"), Some("hit"));
        assert_eq!(a.body, b.body);

        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        store.publish(StudyStore::build(report, None));
        let c = handle(
            &get("/errors", &[("host", "h"), ("from", "5")]),
            &store,
            &cache,
        );
        assert_eq!(header(&c, "X-Cache"), Some("miss"), "swap invalidates");
        assert_eq!(header(&c, "X-Snapshot"), Some("2"));
    }

    #[test]
    fn error_responses_are_not_cached() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        handle(&get("/errors", &[("xid", "13")]), &store, &cache);
        assert!(cache.is_empty());
    }
}
