//! Request routing: path + query → rendered [`Response`].
//!
//! The router is a pure function of `(request, snapshot, cache)`; the
//! snapshot is pinned by cloning the handle's `Arc` **once** at the top,
//! so every byte of a response comes from a single store no matter how
//! many swaps land mid-request. Store-derived endpoints carry an
//! `X-Snapshot` header naming that snapshot and an `X-Cache: hit|miss`
//! header, giving tests a deterministic view of cache behavior without
//! reading global metrics.

use crate::admission;
use crate::cache::ResponseCache;
use crate::http::{Request, Response};
use crate::ingest::{IngestHandle, IngestStream, Offer};
use crate::store::{
    errors_csv_scattered, mtbe_csv_scattered, parse_time, parse_xid, ErrorFilter, RollupMetric,
    RollupQuery, StoreHandle,
};
use crate::whatif::{self, WhatifHandle};
use obs::registry::DURATION_US_BUCKETS;
use obs::{FlightRecorder, HistoryQuery, Trace, Tsdb};
use resilience::scenario::ScenarioSpec;
use simtime::civiltime::ParseCivilError;
use std::sync::Arc;
use std::time::Instant;

/// The serving-side observability handles the router reads from: the
/// flight recorder behind `/debug/traces` and the self-scraped
/// time-series store behind `/metrics/history`. Either may be `None`
/// (the feature is off); the endpoints then answer `404` with a hint,
/// mirroring how `/ingest/*` behaves on a read-only server.
#[derive(Debug, Clone, Default)]
pub struct ObsState {
    /// Completed-trace retention, when request tracing is enabled.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Metrics history rings, when self-scraping is enabled.
    pub tsdb: Option<Arc<Tsdb>>,
}

/// Routes one request against the current snapshot. `ingest` is the
/// write path (`None` on a read-only server — `/ingest/*` then answers
/// `404`). Untraced compatibility entry point: equivalent to
/// [`handle_traced`] with observability off.
pub fn handle(
    req: &Request,
    store: &StoreHandle,
    cache: &ResponseCache,
    ingest: Option<&IngestHandle>,
) -> Response {
    handle_traced(req, store, cache, ingest, None, &ObsState::default(), None)
}

/// [`handle`] with the request's trace riding along: the dispatch runs
/// under a `route` child span, and the response carries an `X-Trace-Id`
/// header naming the trace. The header is attached *after* the cache
/// write (like `X-Snapshot`/`X-Cache`), so cached bytes stay
/// trace-free and responses are byte-identical with tracing on or off.
pub fn handle_traced(
    req: &Request,
    store: &StoreHandle,
    cache: &ResponseCache,
    ingest: Option<&IngestHandle>,
    whatif: Option<&WhatifHandle>,
    state: &ObsState,
    trace: Option<&Arc<Trace>>,
) -> Response {
    let started = Instant::now();
    let route = trace.map(|t| t.stage("route"));
    let response = dispatch(req, store, cache, ingest, whatif, state, trace);
    drop(route);
    if obs::is_enabled() {
        obs::counter(
            "servd_requests_total",
            &[("endpoint", endpoint_label(&req.path))],
        )
        .inc();
        let code = response.status.to_string();
        obs::counter("servd_responses_total", &[("code", &code)]).inc();
        obs::histogram("servd_request_duration_us", &[], DURATION_US_BUCKETS)
            .observe(started.elapsed().as_micros() as u64);
    }
    // Ablation switch for E19 (EXPERIMENTS.md): suppressing the header
    // isolates what the wire bytes + the client's parse of them cost
    // versus span recording and retention. Read once; dormant otherwise.
    static ABLATE_HEADER: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    let ablate = *ABLATE_HEADER.get_or_init(|| std::env::var("SERVD_ABLATE_HEADER").is_ok());
    match trace {
        Some(t) if !ablate => response.with_header("X-Trace-Id", t.id_hex()),
        _ => response,
    }
}

/// Collapses paths to a bounded label set so the metric cardinality
/// cannot be driven by request spam.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/metrics" => "metrics",
        "/metrics/history" => "metrics_history",
        "/debug/traces" => "debug_traces",
        "/snapshot" => "snapshot",
        "/fig2" => "fig2",
        "/errors" => "errors",
        "/mtbe" => "mtbe",
        "/rollup" => "rollup",
        "/jobs/impact" => "jobs_impact",
        "/availability" => "availability",
        "/ingest/logs" => "ingest_logs",
        "/ingest/jobs" => "ingest_jobs",
        "/ingest/cpu-jobs" => "ingest_cpu_jobs",
        "/ingest/outages" => "ingest_outages",
        "/ingest/status" => "ingest_status",
        "/ingest/flush" => "ingest_flush",
        "/whatif" => "whatif",
        p if p.starts_with("/whatif/jobs/") => "whatif_jobs",
        p if p.starts_with("/tables/") => "tables",
        _ => "other",
    }
}

/// Renders a `405` that names the methods the endpoint *does* accept —
/// the `Allow` header RFC 9110 requires on every 405.
fn method_not_allowed(allow: &'static str, body: &str) -> Response {
    Response::text(405, body).with_header("Allow", allow)
}

fn dispatch(
    req: &Request,
    store: &StoreHandle,
    cache: &ResponseCache,
    ingest: Option<&IngestHandle>,
    whatif: Option<&WhatifHandle>,
    state: &ObsState,
    trace: Option<&Arc<Trace>>,
) -> Response {
    if let Some(segment) = req.path.strip_prefix("/ingest/") {
        return dispatch_ingest(req, segment, ingest);
    }
    if req.path == "/whatif" || req.path.starts_with("/whatif/") {
        return dispatch_whatif(req, store, whatif, trace);
    }
    if req.method != "GET" && req.method != "HEAD" {
        return method_not_allowed("GET, HEAD", "only GET and HEAD are supported here\n");
    }

    // Uncached, snapshot-independent endpoints first.
    match req.path.as_str() {
        "/healthz" => return Response::text(200, "ok\n"),
        "/readyz" => return readyz(store, ingest),
        "/metrics" => {
            return Response::text(200, obs::global().report().to_prometheus());
        }
        "/metrics/history" => return metrics_history(req, state),
        "/debug/traces" => return debug_traces(req, state),
        _ => {}
    }

    // Everything else reads the store: pin one snapshot for the whole
    // request.
    let published = store.current();
    let key = ResponseCache::key(&req.path, &req.canonical_query());
    let lookup = trace.map(|t| t.stage("cache_lookup"));
    let cached = cache.get(published.id, &key);
    drop(lookup);
    if let Some(cached) = cached {
        if obs::is_enabled() {
            obs::counter("servd_cache_hits_total", &[]).inc();
        }
        return cached
            .with_header("X-Snapshot", published.id.to_string())
            .with_header("X-Cache", "hit");
    }
    if obs::is_enabled() {
        obs::counter("servd_cache_misses_total", &[]).inc();
    }

    let render = trace.map(|t| t.stage("render"));
    let s = &published.store;
    let response = match req.path.as_str() {
        "/tables/1" => Response::text(200, s.table1()),
        "/tables/2" => Response::text(200, s.table2()),
        "/tables/3" => Response::text(200, s.table3()),
        "/fig2" => Response::text(200, s.fig2()),
        "/errors" => match error_filter(req) {
            Ok(filter) => Response::csv(
                200,
                errors_csv_scattered(&published, &filter, store.scan_pool(), trace),
            ),
            Err(msg) => Response::text(400, msg),
        },
        "/mtbe" => match req.query_value("xid").map(parse_xid).transpose() {
            Ok(kind) => Response::csv(
                200,
                mtbe_csv_scattered(&published, kind, store.scan_pool(), trace),
            ),
            Err(msg) => Response::text(400, format!("{msg}\n")),
        },
        "/rollup" => match rollup_query(req).and_then(|q| s.rollup_csv(&q)) {
            Ok(csv) => Response::csv(200, csv),
            Err(msg) => Response::text(400, format!("{msg}\n")),
        },
        "/jobs/impact" => Response::csv(200, s.jobs_impact_csv()),
        "/availability" => Response::json(200, s.availability_json()),
        "/snapshot" => Response::text(200, s.snapshot_info(published.id)),
        _ => Response::text(404, "no such endpoint\n"),
    };
    drop(render);

    if response.status == 200 {
        cache.put(published.id, key, response.clone());
    }
    response
        .with_header("X-Snapshot", published.id.to_string())
        .with_header("X-Cache", "miss")
}

/// `GET /readyz`: the liveness-plus-freshness surface. Always JSON;
/// `503` when live ingest is configured but its worker has died (the
/// serving path still works, the data is just going stale). The same
/// numbers are mirrored as gauges so scrape-based alerting needs no
/// JSON parsing.
fn readyz(store: &StoreHandle, ingest: Option<&IngestHandle>) -> Response {
    let published = store.current();
    let age_secs = published.at.elapsed().as_secs();
    let stats = ingest.map(IngestHandle::ready_stats);
    let ready = stats.is_none_or(|s| s.worker_running);
    let (queue_depth, wal_bytes) = stats.map_or((0, 0), |s| (s.queue_depth as u64, s.wal_bytes));
    if obs::is_enabled() {
        obs::gauge("servd_ready", &[]).set(u64::from(ready));
        obs::gauge("servd_snapshot_id", &[]).set(published.id);
        obs::gauge("servd_snapshot_age_secs", &[]).set(age_secs);
    }
    let body = format!(
        "{{\"ready\":{ready},\"snapshot\":{},\"snapshot_age_secs\":{age_secs},\
         \"ingest_queue_depth\":{queue_depth},\"wal_backlog_bytes\":{wal_bytes},\
         \"live_ingest\":{}}}\n",
        published.id,
        ingest.is_some(),
    );
    Response::json(if ready { 200 } else { 503 }, body)
}

/// `GET /debug/traces`: the flight recorder's JSON dump. `?id=` looks
/// up one trace by its `X-Trace-Id` hex, `?slowest=N` truncates the
/// slowest-first listing, `?since=MS` (unix milliseconds) drops traces
/// started earlier. Unknown keys fail loudly like every other query
/// surface here.
fn debug_traces(req: &Request, state: &ObsState) -> Response {
    let Some(recorder) = state.recorder.as_ref() else {
        return Response::text(
            404,
            "request tracing is not enabled (start with --trace-capacity > 0)\n",
        );
    };
    let mut id = None;
    let mut slowest = None;
    let mut since = None;
    for (k, v) in &req.query {
        match k.as_str() {
            "id" => match obs::trace::parse_hex_id(v) {
                Some(n) => id = Some(n),
                None => return Response::text(400, format!("bad trace id {v:?}\n")),
            },
            "slowest" => match v.parse::<usize>() {
                Ok(n) => slowest = Some(n),
                Err(_) => return Response::text(400, format!("bad slowest count {v:?}\n")),
            },
            "since" => match v.parse::<u64>() {
                Ok(n) => since = Some(n),
                Err(_) => return Response::text(400, format!("bad since timestamp {v:?}\n")),
            },
            other => return Response::text(400, format!("unknown query parameter {other:?}\n")),
        }
    }
    if let Some(id) = id {
        return match recorder.find(id) {
            Some(record) => Response::json(200, obs::trace::render_traces_json(&[record])),
            None => Response::text(404, format!("no such trace {id:016x}\n")),
        };
    }
    let mut traces = recorder.snapshot();
    if let Some(since) = since {
        traces.retain(|r| r.started_unix_ms >= since);
    }
    if let Some(n) = slowest {
        traces.truncate(n);
    }
    Response::json(200, obs::trace::render_traces_json(&traces))
}

/// `GET /metrics/history`: range queries over the self-scraped series
/// rings. `name` is required; `from`/`to` bound scrape timestamps as
/// `[from, to)` unix seconds; `step` downsamples to one point per
/// bucket (0 = raw).
fn metrics_history(req: &Request, state: &ObsState) -> Response {
    let Some(tsdb) = state.tsdb.as_ref() else {
        return Response::text(
            404,
            "metrics history is not enabled (start with --scrape-secs > 0)\n",
        );
    };
    let mut name = None;
    let (mut from, mut to, mut step) = (0u64, u64::MAX, 0u64);
    for (k, v) in &req.query {
        let slot = match k.as_str() {
            "name" => {
                name = Some(v.clone());
                continue;
            }
            "from" => &mut from,
            "to" => &mut to,
            "step" => &mut step,
            other => return Response::text(400, format!("unknown query parameter {other:?}\n")),
        };
        match v.parse::<u64>() {
            Ok(n) => *slot = n,
            Err(_) => return Response::text(400, format!("bad {k} value {v:?}\n")),
        }
    }
    let Some(name) = name else {
        return Response::text(400, "missing required parameter name=<metric name>\n");
    };
    Response::json(
        200,
        tsdb.query_json(&HistoryQuery {
            name,
            from,
            to,
            step,
        }),
    )
}

/// The compute path: `GET/POST /whatif?...` and `GET /whatif/jobs/:id`.
/// Results are cached by the what-if job registry itself, keyed by
/// `(snapshot, canonical spec)`; `X-Cache` reports whether this request
/// hit a finished campaign.
fn dispatch_whatif(
    req: &Request,
    store: &StoreHandle,
    whatif: Option<&WhatifHandle>,
    trace: Option<&Arc<Trace>>,
) -> Response {
    let Some(handle) = whatif else {
        return Response::text(404, "the what-if service is not enabled on this server\n");
    };
    if let Some(id) = req.path.strip_prefix("/whatif/jobs/") {
        if req.method != "GET" && req.method != "HEAD" {
            return method_not_allowed("GET, HEAD", "use GET to poll a whatif job\n");
        }
        return whatif::poll_response(handle, id);
    }
    if req.path != "/whatif" {
        return Response::text(404, "no such endpoint\n");
    }
    if req.method != "GET" && req.method != "HEAD" && req.method != "POST" {
        return method_not_allowed("GET, HEAD, POST", "use GET or POST for /whatif\n");
    }
    let parse = trace.map(|t| t.stage("whatif_parse"));
    let pairs = match whatif::request_pairs(req) {
        Ok(pairs) => pairs,
        Err(msg) => return Response::text(400, msg),
    };
    let spec = match ScenarioSpec::parse(&pairs, handle.rep_cap()) {
        Ok(spec) => spec,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    drop(parse);
    // Snapshot-scoped like the read path: pin the current snapshot once
    // and fold its id into the job key.
    let published = store.current();
    let lookup = trace.map(|t| t.stage("whatif_cache"));
    let submitted = handle.submit(published.id, &spec);
    drop(lookup);
    match submitted {
        whatif::Submit::Ready { body } => Response::json(200, body)
            .with_header("X-Snapshot", published.id.to_string())
            .with_header("X-Cache", "hit"),
        whatif::Submit::Overloaded { retry_after_secs } => {
            admission::overloaded("whatif", retry_after_secs)
        }
        whatif::Submit::ShuttingDown => {
            Response::text(503, "the what-if service is shutting down\n")
        }
        whatif::Submit::Accepted { id } => {
            drop(trace.map(|t| t.stage("whatif_enqueue")));
            if spec.reps <= whatif::SYNC_REPS {
                let wait = trace.map(|t| t.stage("whatif_wait"));
                let resp = whatif::sync_response(handle, &id);
                drop(wait);
                if resp.status == 200 {
                    return resp
                        .with_header("X-Snapshot", published.id.to_string())
                        .with_header("X-Cache", "miss");
                }
                resp
            } else {
                whatif::accepted_response(handle, &id)
            }
        }
    }
}

/// The write path: `POST /ingest/{logs,jobs,cpu-jobs,outages}[?seq=N]`,
/// `POST /ingest/flush`, `GET /ingest/status`. Responses are JSON and
/// never cached (they are not snapshot-scoped).
fn dispatch_ingest(req: &Request, segment: &str, ingest: Option<&IngestHandle>) -> Response {
    let Some(ingest) = ingest else {
        return Response::text(404, "live ingest is not enabled on this server\n");
    };
    match segment {
        "status" => {
            if req.method != "GET" && req.method != "HEAD" {
                return method_not_allowed("GET, HEAD", "use GET for /ingest/status\n");
            }
            return Response::json(200, ingest.status_json());
        }
        "flush" => {
            if req.method != "POST" {
                return method_not_allowed("POST", "use POST for /ingest/flush\n");
            }
            return match ingest.flush() {
                Ok(info) => Response::json(
                    200,
                    format!("{{\"flushed\":true,\"snapshot\":{}}}\n", info.snapshot),
                ),
                Err(why) => Response::text(503, format!("flush failed: {why}\n")),
            };
        }
        _ => {}
    }
    let Some(stream) = IngestStream::from_segment(segment) else {
        return Response::text(404, "no such ingest stream\n");
    };
    if req.method != "POST" {
        return method_not_allowed("POST", "use POST to ingest\n");
    }
    let seq = match req.query_value("seq") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return Response::text(400, format!("bad seq {raw:?}\n")),
        },
    };
    match ingest.offer(stream, seq, &req.body) {
        Offer::Accepted { seq } => Response::json(
            200,
            format!(
                "{{\"stream\":\"{}\",\"seq\":{seq},\"accepted\":{}}}\n",
                stream.name(),
                seq + 1
            ),
        ),
        Offer::Duplicate { accepted } => Response::json(
            200,
            format!(
                "{{\"stream\":\"{}\",\"duplicate\":true,\"accepted\":{accepted}}}\n",
                stream.name()
            ),
        ),
        Offer::Gap { expected } => Response::json(
            409,
            format!(
                "{{\"stream\":\"{}\",\"error\":\"sequence gap\",\"expected\":{expected}}}\n",
                stream.name()
            ),
        ),
        Offer::Overloaded { retry_after_secs } => admission::overloaded("ingest", retry_after_secs),
        Offer::Unavailable => Response::text(503, "ingest is shutting down\n"),
        Offer::WalFailed(why) => {
            Response::text(503, format!("ingest write-ahead log failed: {why}\n"))
        }
    }
}

/// Builds the `/errors` filter from the query, rejecting unknown keys so
/// a typo (`?hots=`) fails loudly instead of silently returning the
/// unfiltered set.
fn error_filter(req: &Request) -> Result<ErrorFilter, String> {
    let mut filter = ErrorFilter::default();
    for (k, v) in &req.query {
        match k.as_str() {
            "host" => filter.host = Some(v.clone()),
            "xid" => filter.kind = Some(parse_xid(v)?),
            "from" => filter.from = Some(parse_time(v)?),
            "to" => filter.to = Some(parse_time(v)?),
            other => return Err(format!("unknown query parameter {other:?}\n")),
        }
    }
    Ok(filter)
}

/// Builds the `/rollup` query: `metric` is required, `bucket` defaults
/// to `day` and `tz` to `UTC`, and unknown keys fail loudly like
/// [`error_filter`]. Filter applicability (host is errors-only, xid
/// never applies to availability) is checked by the store renderer.
fn rollup_query(req: &Request) -> Result<RollupQuery, String> {
    let mut metric = None;
    let mut query = RollupQuery::for_metric(RollupMetric::Errors);
    for (k, v) in &req.query {
        match k.as_str() {
            "metric" => metric = Some(RollupMetric::parse(v)?),
            "bucket" => query.bucket = v.parse().map_err(|e: ParseCivilError| e.to_string())?,
            "tz" => query.tz = v.clone(),
            "host" => query.host = Some(v.clone()),
            "xid" => query.kind = Some(parse_xid(v)?),
            "from" => query.from = Some(parse_time(v)?),
            "to" => query.to = Some(parse_time(v)?),
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    match metric {
        Some(metric) => {
            query.metric = metric;
            Ok(query)
        }
        None => Err("missing required parameter metric=errors|mtbe|impact|availability".to_owned()),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::StudyStore;
    use resilience::Pipeline;

    fn empty_handle() -> StoreHandle {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        StoreHandle::new(StudyStore::build(report, None))
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, query: &[(&str, &str)], body: &[u8]) -> Request {
        Request {
            body: body.to_vec(),
            method: "POST".to_owned(),
            ..get(path, query)
        }
    }

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.extra
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn routes_every_endpoint() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        for path in [
            "/healthz",
            "/metrics",
            "/tables/1",
            "/tables/2",
            "/tables/3",
            "/fig2",
            "/errors",
            "/mtbe",
            "/jobs/impact",
            "/availability",
            "/snapshot",
        ] {
            let resp = handle(&get(path, &[]), &store, &cache, None);
            assert_eq!(resp.status, 200, "{path}");
        }
        assert_eq!(handle(&get("/nope", &[]), &store, &cache, None).status, 404);
    }

    #[test]
    fn non_get_is_405() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        let mut req = get("/healthz", &[]);
        req.method = "DELETE".to_owned();
        assert_eq!(handle(&req, &store, &cache, None).status, 405);
    }

    #[test]
    fn bad_queries_are_400() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        for (path, query) in [
            ("/errors", [("xid", "13")]),
            ("/errors", [("from", "whenever")]),
            ("/errors", [("bogus", "1")]),
            ("/mtbe", [("xid", "abc")]),
        ] {
            let resp = handle(&get(path, &query), &store, &cache, None);
            assert_eq!(resp.status, 400, "{path}?{query:?}");
        }
    }

    #[test]
    fn cache_hits_on_reordered_params_and_misses_after_swap() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        let a = handle(
            &get("/errors", &[("host", "h"), ("from", "5")]),
            &store,
            &cache,
            None,
        );
        assert_eq!(header(&a, "X-Cache"), Some("miss"));
        let b = handle(
            &get("/errors", &[("from", "5"), ("host", "h")]),
            &store,
            &cache,
            None,
        );
        assert_eq!(header(&b, "X-Cache"), Some("hit"));
        assert_eq!(a.body, b.body);

        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        store.publish(StudyStore::build(report, None));
        let c = handle(
            &get("/errors", &[("host", "h"), ("from", "5")]),
            &store,
            &cache,
            None,
        );
        assert_eq!(header(&c, "X-Cache"), Some("miss"), "swap invalidates");
        assert_eq!(header(&c, "X-Snapshot"), Some("2"));
    }

    #[test]
    fn rollup_routes_and_validates() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        let ok = handle(
            &get("/rollup", &[("metric", "errors")]),
            &store,
            &cache,
            None,
        );
        assert_eq!(ok.status, 200);
        assert!(ok.body.starts_with("bucket,start,end,count"), "{}", ok.body);
        let full = handle(
            &get(
                "/rollup",
                &[
                    ("metric", "mtbe"),
                    ("bucket", "week"),
                    ("tz", "America/Chicago"),
                    ("xid", "119"),
                    ("from", "0"),
                    ("to", "99999999999"),
                ],
            ),
            &store,
            &cache,
            None,
        );
        assert_eq!(full.status, 200, "{}", full.body);
        for query in [
            vec![],
            vec![("metric", "bogus")],
            vec![("metric", "errors"), ("bucket", "decade")],
            vec![("metric", "errors"), ("tz", "Mars/Olympus")],
            vec![("metric", "mtbe"), ("host", "gpub001")],
            vec![("metric", "availability"), ("xid", "119")],
            vec![("metric", "errors"), ("bogus", "1")],
        ] {
            let resp = handle(&get("/rollup", &query), &store, &cache, None);
            assert_eq!(resp.status, 400, "{query:?}");
        }
    }

    #[test]
    fn error_responses_are_not_cached() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        handle(&get("/errors", &[("xid", "13")]), &store, &cache, None);
        assert!(cache.is_empty());
    }

    // ---- ingest routing ---------------------------------------------

    use crate::ingest::{recover, IngestConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ingest_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "servd-router-ingest-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_endpoints_404_when_disabled() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        for path in ["/ingest/logs", "/ingest/status", "/ingest/flush"] {
            let resp = handle(&post(path, &[], b"x"), &store, &cache, None);
            assert_eq!(resp.status, 404, "{path}");
        }
    }

    #[test]
    fn ingest_post_accepts_dedups_and_rejects() {
        let dir = ingest_dir();
        let rec = recover(
            IngestConfig {
                queue_capacity: 2,
                ..IngestConfig::new(&dir)
            },
            Pipeline::delta(),
            2023,
        )
        .unwrap();
        let ingest = Some(&*rec.handle);
        let store = empty_handle();
        let cache = ResponseCache::new();

        let ok = handle(
            &post("/ingest/logs", &[("seq", "0")], b"line\n"),
            &store,
            &cache,
            ingest,
        );
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("\"seq\":0"), "{}", ok.body);

        let dup = handle(
            &post("/ingest/logs", &[("seq", "0")], b"line\n"),
            &store,
            &cache,
            ingest,
        );
        assert_eq!(dup.status, 200);
        assert!(dup.body.contains("duplicate"), "{}", dup.body);

        let gap = handle(
            &post("/ingest/logs", &[("seq", "7")], b"line\n"),
            &store,
            &cache,
            ingest,
        );
        assert_eq!(gap.status, 409);
        assert!(gap.body.contains("\"expected\":1"), "{}", gap.body);

        let bad = handle(
            &post("/ingest/logs", &[("seq", "banana")], b"line\n"),
            &store,
            &cache,
            ingest,
        );
        assert_eq!(bad.status, 400);

        // Fill the 2-slot queue (one slot already used by seq 0).
        handle(
            &post("/ingest/logs", &[], b"more\n"),
            &store,
            &cache,
            ingest,
        );
        let shed = handle(
            &post("/ingest/logs", &[], b"more\n"),
            &store,
            &cache,
            ingest,
        );
        assert_eq!(shed.status, 429);
        assert_eq!(header(&shed, "Retry-After"), Some("1"));

        // GET on an ingest stream, POST on status: 405 both ways, each
        // naming what the endpoint does accept.
        let wrong_stream = handle(&get("/ingest/logs", &[]), &store, &cache, ingest);
        assert_eq!(wrong_stream.status, 405);
        assert_eq!(header(&wrong_stream, "Allow"), Some("POST"));
        let wrong_status = handle(&post("/ingest/status", &[], b""), &store, &cache, ingest);
        assert_eq!(wrong_status.status, 405);
        assert_eq!(header(&wrong_status, "Allow"), Some("GET, HEAD"));
        let mut flush_get = get("/ingest/flush", &[]);
        flush_get.method = "GET".to_owned();
        let wrong_flush = handle(&flush_get, &store, &cache, ingest);
        assert_eq!(wrong_flush.status, 405);
        assert_eq!(header(&wrong_flush, "Allow"), Some("POST"));
        // Unknown stream.
        assert_eq!(
            handle(&post("/ingest/nope", &[], b""), &store, &cache, ingest).status,
            404
        );

        let status = handle(&get("/ingest/status", &[]), &store, &cache, ingest);
        assert_eq!(status.status, 200);
        assert!(status.body.contains("\"accepted\":2"), "{}", status.body);

        // No worker: flush must fail loudly, not hang.
        let flush = handle(&post("/ingest/flush", &[], b""), &store, &cache, ingest);
        assert_eq!(flush.status, 503);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- whatif routing ---------------------------------------------

    use crate::whatif::{WhatifConfig, WhatifHandle};

    fn traced_whatif(req: &Request, store: &StoreHandle, whatif: &WhatifHandle) -> Response {
        let cache = ResponseCache::new();
        handle_traced(
            req,
            store,
            &cache,
            None,
            Some(whatif),
            &ObsState::default(),
            None,
        )
    }

    #[test]
    fn whatif_404_when_disabled_405_with_allow_otherwise() {
        let store = empty_handle();
        let cache = ResponseCache::new();
        assert_eq!(
            handle(&get("/whatif", &[]), &store, &cache, None).status,
            404
        );

        let whatif = WhatifHandle::new(WhatifConfig {
            workers: 0,
            ..WhatifConfig::default()
        });
        let mut del = get("/whatif", &[]);
        del.method = "DELETE".to_owned();
        let resp = traced_whatif(&del, &store, &whatif);
        assert_eq!(resp.status, 405);
        assert_eq!(header(&resp, "Allow"), Some("GET, HEAD, POST"));
        let poll = post("/whatif/jobs/abc", &[], b"");
        let resp = traced_whatif(&poll, &store, &whatif);
        assert_eq!(resp.status, 405);
        assert_eq!(header(&resp, "Allow"), Some("GET, HEAD"));
        // Misc 405s outside whatif carry Allow too (satellite fix).
        let mut del_healthz = get("/healthz", &[]);
        del_healthz.method = "DELETE".to_owned();
        let resp = handle(&del_healthz, &store, &cache, None);
        assert_eq!(resp.status, 405);
        assert_eq!(header(&resp, "Allow"), Some("GET, HEAD"));
    }

    #[test]
    fn whatif_bad_specs_are_400() {
        let store = empty_handle();
        let whatif = WhatifHandle::new(WhatifConfig {
            workers: 0,
            rep_cap: 8,
            ..WhatifConfig::default()
        });
        for query in [
            vec![("mttr_scale", "0")],
            vec![("mttr_scale", "nan")],
            vec![("xid_rate", "13:2")],
            vec![("xid_rate", "79")],
            vec![("sched", "lifo")],
            vec![("reps", "9")],
            vec![("bogus", "1")],
            vec![("mttr_scale", "0.5"), ("mttr_scale", "2")],
        ] {
            let resp = traced_whatif(&get("/whatif", &query), &store, &whatif);
            assert_eq!(resp.status, 400, "{query:?}: {}", resp.body);
        }
    }

    #[test]
    fn whatif_sync_roundtrip_caches_and_polls() {
        let store = empty_handle();
        let whatif = WhatifHandle::new(WhatifConfig {
            workers: 1,
            ..WhatifConfig::default()
        });
        let workers = whatif.spawn_workers();
        let query = [("reps", "1"), ("seed", "5")];

        let cold = traced_whatif(&get("/whatif", &query), &store, &whatif);
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(header(&cold, "X-Cache"), Some("miss"));

        let warm = traced_whatif(&get("/whatif", &query), &store, &whatif);
        assert_eq!(warm.status, 200);
        assert_eq!(header(&warm, "X-Cache"), Some("hit"));
        assert_eq!(cold.body, warm.body);

        // POST with a form body is the same spec → same cached result.
        let form = traced_whatif(&post("/whatif", &[], b"reps=1&seed=5"), &store, &whatif);
        assert_eq!(form.status, 200);
        assert_eq!(header(&form, "X-Cache"), Some("hit"));
        assert_eq!(form.body, cold.body);

        // The finished job is pollable under its deterministic id.
        let spec = ScenarioSpec::parse(
            &[
                ("reps".to_owned(), "1".to_owned()),
                ("seed".to_owned(), "5".to_owned()),
            ],
            32,
        )
        .unwrap();
        let id = WhatifHandle::job_id(store.current().id, &spec.canonical());
        let poll = traced_whatif(&get(&format!("/whatif/jobs/{id}"), &[]), &store, &whatif);
        assert_eq!(poll.status, 200);
        assert_eq!(poll.body, cold.body);
        let missing = traced_whatif(&get("/whatif/jobs/ffffffffffffffff", &[]), &store, &whatif);
        assert_eq!(missing.status, 404);

        whatif.request_shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn whatif_long_campaigns_answer_202_with_poll_url() {
        let store = empty_handle();
        // No workers: the job stays queued, so the 202 surface is
        // deterministic.
        let whatif = WhatifHandle::new(WhatifConfig {
            workers: 0,
            ..WhatifConfig::default()
        });
        let resp = traced_whatif(&get("/whatif", &[("reps", "8")]), &store, &whatif);
        assert_eq!(resp.status, 202, "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"queued\""), "{}", resp.body);
        assert!(resp.body.contains("/whatif/jobs/"), "{}", resp.body);
        let spec = ScenarioSpec::parse(&[("reps".to_owned(), "8".to_owned())], 32).unwrap();
        let id = WhatifHandle::job_id(store.current().id, &spec.canonical());
        assert!(resp.body.contains(&id), "{}", resp.body);
        let poll = traced_whatif(&get(&format!("/whatif/jobs/{id}"), &[]), &store, &whatif);
        assert_eq!(poll.status, 202);
    }

    #[test]
    fn whatif_sheds_with_retry_after_when_queue_full() {
        let store = empty_handle();
        let whatif = WhatifHandle::new(WhatifConfig {
            workers: 0,
            queue_capacity: 1,
            retry_after_secs: 2,
            ..WhatifConfig::default()
        });
        let first = traced_whatif(&get("/whatif", &[("reps", "8")]), &store, &whatif);
        assert_eq!(first.status, 202);
        let shed = traced_whatif(
            &get("/whatif", &[("reps", "8"), ("seed", "9")]),
            &store,
            &whatif,
        );
        assert_eq!(shed.status, 429, "{}", shed.body);
        assert_eq!(header(&shed, "Retry-After"), Some("2"));
        // Re-submitting the queued spec joins it instead of shedding.
        let joined = traced_whatif(&get("/whatif", &[("reps", "8")]), &store, &whatif);
        assert_eq!(joined.status, 202);
    }
}
