//! The response cache: canonical-query keys, snapshot-scoped lifetime.
//!
//! Rendering a filtered `/errors` slice or a paper table is cheap but not
//! free, and dashboards poll the same handful of queries. The cache
//! memoizes rendered [`Response`]s keyed on `path?canonical-query` — the
//! query pairs sorted, so `?host=h&xid=74` and `?xid=74&host=h` are one
//! entry. Every entry belongs to exactly one snapshot id: a lookup under
//! a different id clears the whole map first, so a swap invalidates
//! everything at once and a cached body can never outlive the store it
//! was rendered from.

use crate::http::Response;
use std::collections::HashMap;
use std::sync::Mutex;

/// Upper bound on cached entries; at most this many distinct canonical
/// queries are retained per snapshot (inserts beyond it are dropped, not
/// evicted — the working set of a dashboard is far below this).
const MAX_ENTRIES: usize = 4096;

/// A snapshot-scoped memo of rendered responses.
#[derive(Debug, Default)]
pub struct ResponseCache {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    snapshot: u64,
    map: HashMap<String, Response>,
}

impl ResponseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResponseCache::default()
    }

    /// The cache key for a request.
    pub fn key(path: &str, canonical_query: &str) -> String {
        format!("{path}?{canonical_query}")
    }

    /// Looks up `key` *as of* `snapshot`. A mismatched snapshot id clears
    /// the map (the old store is gone) and misses.
    pub fn get(&self, snapshot: u64, key: &str) -> Option<Response> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.snapshot != snapshot {
            inner.map.clear();
            inner.snapshot = snapshot;
            return None;
        }
        inner.map.get(key).cloned()
    }

    /// Stores a rendered response under `key` for `snapshot`. Ignored if
    /// the cache has moved on to a newer snapshot — a late insert from a
    /// request that raced a swap must not resurrect stale bytes.
    pub fn put(&self, snapshot: u64, key: String, response: Response) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.snapshot == snapshot && inner.map.len() < MAX_ENTRIES {
            inner.map.insert(key, response);
        }
    }

    /// Entries currently held (test/metrics hook).
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.map.len(),
            Err(poisoned) => poisoned.into_inner().map.len(),
        }
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_same_snapshot() {
        let cache = ResponseCache::new();
        let key = ResponseCache::key("/errors", "host=h");
        assert!(cache.get(1, &key).is_none());
        cache.put(1, key.clone(), Response::text(200, "body"));
        assert_eq!(cache.get(1, &key).unwrap().body, "body");
    }

    #[test]
    fn snapshot_swap_invalidates_everything() {
        let cache = ResponseCache::new();
        let key = ResponseCache::key("/errors", "");
        cache.put(1, key.clone(), Response::text(200, "old"));
        assert!(cache.get(2, &key).is_none(), "new snapshot must miss");
        assert!(cache.is_empty(), "swap clears the map");
        cache.put(1, key.clone(), Response::text(200, "stale"));
        assert!(
            cache.get(2, &key).is_none(),
            "late insert for an old snapshot is dropped"
        );
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = ResponseCache::new();
        cache.get(1, "warm");
        for i in 0..MAX_ENTRIES + 10 {
            cache.put(1, format!("k{i}"), Response::text(200, ""));
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
    }
}
