//! The `/whatif` compute path: counterfactual simulation as a query.
//!
//! The read path serves what *was* (the study's tables and figures);
//! this path serves what *would have been*: `GET/POST
//! /whatif?mttr_scale=&xid_rate=<XID>:<mult>&sched=&seed=&reps=` parses
//! into a canonical [`ScenarioSpec`], runs a bounded seeded campaign
//! over the simulation substrates (`resilience::scenario`) on a
//! dedicated worker pool, and returns baseline-vs-scenario deltas for
//! MTBE, availability, errors, reboots and jobs-killed with per-rep
//! spread.
//!
//! # Contract
//!
//! * **Bounded**: campaigns queue behind a fixed number of workers with
//!   a fixed queue depth; a full queue sheds with `429` + `Retry-After`
//!   through the same [`admission`](crate::admission) policy as ingest.
//! * **Deterministic**: the result body is a pure function of the
//!   canonical spec (which embeds the seed) — byte-identical across
//!   repeats, worker counts, shard layouts and snapshot swaps.
//! * **Single-flight**: identical specs submitted concurrently share
//!   one computation; `servd_whatif_computed_total` counts campaigns
//!   actually run, `servd_whatif_cache_hits_total` counts answers
//!   served from a finished job.
//! * **Cached**: finished jobs are the cache, keyed by
//!   `(snapshot, canonical spec)` — the same scoping rule as the read
//!   path's [`ResponseCache`](crate::cache::ResponseCache), enforced by
//!   folding the snapshot id into the job id.
//! * **Poll for the long tail**: campaigns with `reps` ≤ [`SYNC_REPS`]
//!   answer inline; longer ones return `202` with a deterministic job
//!   id and make progress observable at `/whatif/jobs/:id`.

use crate::admission::AdmissionPolicy;
use crate::http::{percent_decode, Request, Response};
use resilience::scenario::{run_campaign, spread, CampaignResult, RepOutcome, ScenarioSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Campaigns with at most this many reps are answered inline (the
/// handler blocks on the worker, like `/ingest/flush` blocks on its
/// condvar); anything longer gets a `202` + poll URL.
pub const SYNC_REPS: u32 = 4;

/// How long the inline path waits before degrading to a `202`. A rep
/// costs ~0.2 s, so four reps finish three orders of magnitude sooner
/// than this unless the box is badly oversubscribed.
const SYNC_WAIT: Duration = Duration::from_secs(60);

/// Finished jobs retained as the result cache; the oldest finished job
/// is evicted beyond this.
const MAX_FINISHED_JOBS: usize = 64;

/// Campaign wall-time histogram buckets, in microseconds (100 ms .. 60 s).
const CAMPAIGN_US_BUCKETS: &[u64] = &[
    100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// What-if service tunables.
#[derive(Debug, Clone)]
pub struct WhatifConfig {
    /// Campaign worker threads.
    pub workers: usize,
    /// Campaigns queued ahead of the workers; beyond this a *new* spec
    /// sheds with `429` (joining an in-flight spec never sheds).
    pub queue_capacity: usize,
    /// Upper bound a request's `reps=` may ask for.
    pub rep_cap: u32,
    /// Seconds suggested to a shed client via `Retry-After`.
    pub retry_after_secs: u32,
}

impl Default for WhatifConfig {
    fn default() -> Self {
        WhatifConfig {
            workers: 2,
            queue_capacity: 8,
            rep_cap: 32,
            retry_after_secs: 2,
        }
    }
}

impl WhatifConfig {
    /// The shared shed contract this queue enforces.
    pub fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            rejected_metric: "servd_whatif_rejected_total",
            queue_capacity: self.queue_capacity,
            retry_after_secs: self.retry_after_secs,
        }
    }
}

/// Where a job is in its life.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running { done: u32, total: u32 },
    Done { body: String },
    Failed { message: String },
}

#[derive(Debug)]
struct Job {
    spec: ScenarioSpec,
    state: JobState,
}

#[derive(Debug, Default)]
struct State {
    jobs: HashMap<String, Job>,
    /// Ids waiting for a worker, FIFO.
    queue: VecDeque<String>,
    /// Finished (done or failed) ids, oldest first — the eviction order.
    finished: VecDeque<String>,
    /// Workers currently inside a campaign (mirrored to the
    /// `servd_whatif_jobs_active` gauge).
    active: usize,
    shutdown: bool,
}

/// What [`WhatifHandle::submit`] decided.
#[derive(Debug)]
pub enum Submit {
    /// The campaign had already finished: here is the cached body.
    Ready {
        /// The finished result body.
        body: String,
    },
    /// The job is queued or running (newly created or joined).
    Accepted {
        /// The deterministic job id.
        id: String,
    },
    /// The queue is full; retry after the hint.
    Overloaded {
        /// Seconds for the `Retry-After` header.
        retry_after_secs: u32,
    },
    /// The service is draining.
    ShuttingDown,
}

/// A poll-surface view of one job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// On a worker; `done` of `total` arm-reps finished.
    Running {
        /// Finished arm-reps.
        done: u32,
        /// Total arm-reps (2 × reps).
        total: u32,
    },
    /// Finished successfully.
    Done {
        /// The result body.
        body: String,
    },
    /// Finished with an error.
    Failed {
        /// Why.
        message: String,
    },
}

/// The shared what-if service state: job registry, bounded queue, and
/// the two condvars (work for the pool, done for inline waiters).
#[derive(Debug)]
pub struct WhatifHandle {
    config: WhatifConfig,
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

impl WhatifHandle {
    /// Creates the service state (no threads yet — see
    /// [`spawn_workers`](Self::spawn_workers)).
    pub fn new(config: WhatifConfig) -> Arc<WhatifHandle> {
        Arc::new(WhatifHandle {
            config,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }

    /// The configured rep cap (the parse-time ceiling for `reps=`).
    pub fn rep_cap(&self) -> u32 {
        self.config.rep_cap
    }

    /// Lock helper: a poisoned mutex only means a worker panicked
    /// mid-update; the registry stays structurally valid, so recover
    /// the guard rather than propagating the poison.
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The deterministic job id: FNV-1a over `snapshot:canonical`,
    /// rendered as 16 hex digits. Deterministic ids make the `202`
    /// surface reproducible and give single-flight its key.
    pub fn job_id(snapshot: u64, canonical: &str) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in snapshot
            .to_string()
            .bytes()
            .chain(std::iter::once(b':'))
            .chain(canonical.bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Create-or-join: the single admission point for `/whatif`.
    pub fn submit(&self, snapshot: u64, spec: &ScenarioSpec) -> Submit {
        let id = Self::job_id(snapshot, &spec.canonical());
        let mut state = self.lock();
        if state.shutdown {
            return Submit::ShuttingDown;
        }
        enum Hit {
            Done(String),
            Retry,
            Join,
            Miss,
        }
        let hit = match state.jobs.get(&id).map(|j| &j.state) {
            Some(JobState::Done { body }) => Hit::Done(body.clone()),
            // A failed job stays visible at its poll URL but a fresh
            // submission retries it.
            Some(JobState::Failed { .. }) => Hit::Retry,
            Some(_) => Hit::Join,
            None => Hit::Miss,
        };
        match hit {
            Hit::Done(body) => {
                drop(state);
                if obs::is_enabled() {
                    obs::counter("servd_whatif_cache_hits_total", &[]).inc();
                }
                return Submit::Ready { body };
            }
            Hit::Retry => {
                state.finished.retain(|f| *f != id);
                return self.enqueue(state, id, spec);
            }
            Hit::Join => return Submit::Accepted { id },
            Hit::Miss => {}
        }
        if let Err(retry_after_secs) = self.config.admission().admit(state.queue.len()) {
            return Submit::Overloaded { retry_after_secs };
        }
        self.enqueue(state, id, spec)
    }

    fn enqueue(&self, mut state: MutexGuard<'_, State>, id: String, spec: &ScenarioSpec) -> Submit {
        state.jobs.insert(
            id.clone(),
            Job {
                spec: spec.clone(),
                state: JobState::Queued,
            },
        );
        state.queue.push_back(id.clone());
        let depth = state.queue.len() as u64;
        drop(state);
        self.work.notify_one();
        if obs::is_enabled() {
            obs::gauge("servd_whatif_queue_depth", &[]).set(depth);
        }
        Submit::Accepted { id }
    }

    /// The poll surface's view of a job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let state = self.lock();
        state.jobs.get(id).map(|job| match &job.state {
            JobState::Queued => JobStatus::Queued,
            JobState::Running { done, total } => JobStatus::Running {
                done: *done,
                total: *total,
            },
            JobState::Done { body } => JobStatus::Done { body: body.clone() },
            JobState::Failed { message } => JobStatus::Failed {
                message: message.clone(),
            },
        })
    }

    /// Blocks until the job finishes (either way) or `timeout` lapses.
    /// Returns `None` on timeout or if the job vanished (evicted).
    pub fn wait(&self, id: &str, timeout: Duration) -> Option<Result<String, String>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            match state.jobs.get(id).map(|j| &j.state) {
                Some(JobState::Done { body }) => return Some(Ok(body.clone())),
                Some(JobState::Failed { message }) => return Some(Err(message.clone())),
                Some(_) if state.shutdown => return None,
                Some(_) => {}
                None => return None,
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = match self.done.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Spawns the campaign worker pool.
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.config.workers)
            .map(|i| {
                let handle = Arc::clone(self);
                thread::Builder::new()
                    .name(format!("whatif-{i}"))
                    .spawn(move || handle.worker_loop())
                    .unwrap_or_else(|e| {
                        // Thread spawn fails only under resource
                        // exhaustion at startup; surface it hard.
                        panic!("spawning whatif worker: {e}")
                    })
            })
            .collect()
    }

    /// Begins drain: queued-but-unstarted jobs fail fast (inline
    /// waiters wake), workers exit after their current campaign.
    pub fn request_shutdown(&self) {
        let mut state = self.lock();
        state.shutdown = true;
        while let Some(id) = state.queue.pop_front() {
            if let Some(job) = state.jobs.get_mut(&id) {
                job.state = JobState::Failed {
                    message: "the what-if service is shutting down".to_owned(),
                };
                state.finished.push_back(id);
            }
        }
        drop(state);
        self.work.notify_all();
        self.done.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let (id, spec) = {
                let mut state = self.lock();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(id) = state.queue.pop_front() {
                        let depth = state.queue.len() as u64;
                        let Some(job) = state.jobs.get_mut(&id) else {
                            continue;
                        };
                        let total = job.spec.reps * 2;
                        job.state = JobState::Running { done: 0, total };
                        let spec = job.spec.clone();
                        drop(state);
                        if obs::is_enabled() {
                            obs::gauge("servd_whatif_queue_depth", &[]).set(depth);
                        }
                        break (id, spec);
                    }
                    state = match self.work.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            {
                let mut state = self.lock();
                state.active += 1;
                let active = state.active as u64;
                drop(state);
                if obs::is_enabled() {
                    obs::gauge("servd_whatif_jobs_active", &[]).set(active);
                }
            }
            let started = Instant::now();
            let span = obs::span("whatif_campaign");
            let result = run_campaign(&spec, |done, total| {
                let mut state = self.lock();
                if let Some(job) = state.jobs.get_mut(&id) {
                    job.state = JobState::Running { done, total };
                }
            });
            drop(span);
            let elapsed_us = started.elapsed().as_micros() as u64;
            let new_state = match result {
                Ok(campaign) => JobState::Done {
                    body: render_result(&campaign),
                },
                Err(e) => JobState::Failed {
                    message: e.to_string(),
                },
            };
            let mut state = self.lock();
            if let Some(job) = state.jobs.get_mut(&id) {
                job.state = new_state;
            }
            state.finished.push_back(id);
            while state.finished.len() > MAX_FINISHED_JOBS {
                if let Some(old) = state.finished.pop_front() {
                    state.jobs.remove(&old);
                }
            }
            state.active -= 1;
            let active = state.active as u64;
            drop(state);
            self.done.notify_all();
            if obs::is_enabled() {
                obs::gauge("servd_whatif_jobs_active", &[]).set(active);
                obs::counter("servd_whatif_computed_total", &[]).inc();
                obs::counter("servd_whatif_reps_total", &[]).add(u64::from(spec.reps));
                obs::histogram(
                    "servd_whatif_campaign_duration_us",
                    &[],
                    CAMPAIGN_US_BUCKETS,
                )
                .observe(elapsed_us);
            }
        }
    }
}

/// Canonical float rendering (shortest round-trip, like the scenario
/// keys) so result bodies are byte-stable.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// A headline-number accessor on one rep's outcome.
type MetricFn = dyn Fn(&RepOutcome) -> f64;

fn arm_json(reps: &[RepOutcome], metric: &MetricFn) -> String {
    let s = spread(reps, metric);
    let vals: Vec<String> = reps.iter().map(|r| fmt_f64(metric(r))).collect();
    format!(
        "{{\"mean\":{},\"min\":{},\"max\":{},\"reps\":[{}]}}",
        fmt_f64(s.mean),
        fmt_f64(s.min),
        fmt_f64(s.max),
        vals.join(",")
    )
}

fn metric_json(result: &CampaignResult, metric: &MetricFn) -> String {
    let base = spread(&result.baseline, metric);
    let scen = spread(&result.scenario, metric);
    format!(
        "{{\"baseline\":{},\"scenario\":{},\"delta_mean\":{}}}",
        arm_json(&result.baseline, metric),
        arm_json(&result.scenario, metric),
        fmt_f64(scen.mean - base.mean)
    )
}

/// Renders the result body. Snapshot-independent by construction — the
/// campaign is a pure function of the spec — which is what makes
/// post-swap recomputation byte-identical.
pub fn render_result(result: &CampaignResult) -> String {
    let metrics: &[(&str, &MetricFn)] = &[
        ("availability", &|r| r.availability),
        ("errors", &|r| r.errors as f64),
        ("jobs_killed", &|r| r.jobs_killed as f64),
        ("mtbe_hours", &|r| r.mtbe_hours),
        ("reboots", &|r| r.reboots as f64),
    ];
    let rendered: Vec<String> = metrics
        .iter()
        .map(|(name, f)| format!("\"{name}\":{}", metric_json(result, f)))
        .collect();
    format!(
        "{{\"spec\":\"{}\",\"reps\":{},\"sim_scale\":{},\"metrics\":{{{}}}}}\n",
        result.spec.canonical(),
        result.spec.reps,
        fmt_f64(resilience::scenario::SIM_SCALE),
        rendered.join(",")
    )
}

/// Parses an `application/x-www-form-urlencoded` body into pairs, the
/// same decoding rules as the URL query. `None` on undecodable input.
pub fn parse_form(body: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    for piece in body.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=')?;
        pairs.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(pairs)
}

/// The progress body for a queued/running job: `202`-shaped, carrying
/// the deterministic id and the poll URL.
pub fn progress_body(id: &str, status: &str, done: u32, total: u32) -> String {
    format!(
        "{{\"job\":\"{id}\",\"status\":\"{status}\",\"done\":{done},\"total\":{total},\
         \"poll\":\"/whatif/jobs/{id}\"}}\n"
    )
}

/// Renders the `202 Accepted` response for a not-yet-finished job,
/// reading its current progress.
pub fn accepted_response(handle: &WhatifHandle, id: &str) -> Response {
    let (status, done, total) = match handle.status(id) {
        Some(JobStatus::Running { done, total }) => ("running", done, total),
        _ => ("queued", 0, 0),
    };
    Response::json(202, progress_body(id, status, done, total))
}

/// The poll endpoint: `GET /whatif/jobs/:id`.
pub fn poll_response(handle: &WhatifHandle, id: &str) -> Response {
    match handle.status(id) {
        None => Response::text(404, "no such whatif job\n"),
        Some(JobStatus::Queued) => Response::json(202, progress_body(id, "queued", 0, 0)),
        Some(JobStatus::Running { done, total }) => {
            Response::json(202, progress_body(id, "running", done, total))
        }
        Some(JobStatus::Done { body }) => Response::json(200, body),
        Some(JobStatus::Failed { message }) => {
            Response::text(500, format!("whatif campaign failed: {message}\n"))
        }
    }
}

/// Merges URL query pairs with an optional form body into the spec
/// parameter list.
///
/// # Errors
///
/// A message suitable for a `400` body when the form body is
/// undecodable.
pub fn request_pairs(req: &Request) -> Result<Vec<(String, String)>, String> {
    let mut pairs = req.query.clone();
    if req.method == "POST" && !req.body.is_empty() {
        let text =
            std::str::from_utf8(&req.body).map_err(|_| "request body is not UTF-8\n".to_owned())?;
        let form = parse_form(text.trim_end_matches(['\r', '\n']))
            .ok_or_else(|| "request body is not form-encoded\n".to_owned())?;
        pairs.extend(form);
    }
    Ok(pairs)
}

/// Waits out the inline (synchronous) path: small campaigns block here
/// until the worker finishes, degrading to a `202` under pathological
/// load rather than wedging the connection.
pub fn sync_response(handle: &WhatifHandle, id: &str) -> Response {
    match handle.wait(id, SYNC_WAIT) {
        Some(Ok(body)) => Response::json(200, body),
        Some(Err(message)) => Response::text(500, format!("whatif campaign failed: {message}\n")),
        None => accepted_response(handle, id),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn spec(query: &[(&str, &str)]) -> ScenarioSpec {
        let pairs: Vec<(String, String)> = query
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        ScenarioSpec::parse(&pairs, 32).unwrap()
    }

    #[test]
    fn job_ids_are_deterministic_and_snapshot_scoped() {
        let canonical = spec(&[]).canonical();
        let a = WhatifHandle::job_id(1, &canonical);
        let b = WhatifHandle::job_id(1, &canonical);
        let c = WhatifHandle::job_id(2, &canonical);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn submit_joins_in_flight_specs_and_sheds_new_ones() {
        // No workers: jobs stay queued, exposing the admission logic.
        let handle = WhatifHandle::new(WhatifConfig {
            workers: 0,
            queue_capacity: 1,
            ..WhatifConfig::default()
        });
        let first = spec(&[("seed", "1")]);
        let id = match handle.submit(9, &first) {
            Submit::Accepted { id } => id,
            other => panic!("{other:?}"),
        };
        // Same spec joins the queued job without a new slot.
        match handle.submit(9, &first) {
            Submit::Accepted { id: joined } => assert_eq!(joined, id),
            other => panic!("{other:?}"),
        }
        // A different spec needs a slot and the queue is full.
        match handle.submit(9, &spec(&[("seed", "2")])) {
            Submit::Overloaded { retry_after_secs } => assert!(retry_after_secs > 0),
            other => panic!("{other:?}"),
        }
        assert!(matches!(handle.status(&id), Some(JobStatus::Queued)));
    }

    #[test]
    fn worker_computes_once_and_result_is_served_from_cache() {
        let handle = WhatifHandle::new(WhatifConfig {
            workers: 1,
            ..WhatifConfig::default()
        });
        let workers = handle.spawn_workers();
        let s = spec(&[("reps", "1"), ("seed", "5")]);
        let id = match handle.submit(3, &s) {
            Submit::Accepted { id } => id,
            other => panic!("{other:?}"),
        };
        let body = handle
            .wait(&id, Duration::from_secs(120))
            .expect("campaign finished")
            .expect("campaign succeeded");
        assert!(body.contains("\"metrics\""), "{body}");
        // Resubmission is now a cache hit with the identical body.
        match handle.submit(3, &s) {
            Submit::Ready { body: cached } => assert_eq!(cached, body),
            other => panic!("{other:?}"),
        }
        handle.request_shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_wakes_waiters() {
        let handle = WhatifHandle::new(WhatifConfig {
            workers: 0,
            ..WhatifConfig::default()
        });
        let id = match handle.submit(1, &spec(&[])) {
            Submit::Accepted { id } => id,
            other => panic!("{other:?}"),
        };
        handle.request_shutdown();
        match handle.status(&id) {
            Some(JobStatus::Failed { message }) => {
                assert!(message.contains("shutting down"), "{message}")
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(handle.submit(1, &spec(&[])), Submit::ShuttingDown));
    }

    #[test]
    fn render_is_deterministic_for_a_fixed_campaign() {
        let s = spec(&[("reps", "1"), ("seed", "5"), ("mttr_scale", "0.5")]);
        let a = run_campaign(&s, |_, _| {}).unwrap();
        let b = run_campaign(&s, |_, _| {}).unwrap();
        assert_eq!(render_result(&a), render_result(&b));
        let body = render_result(&a);
        for key in [
            "availability",
            "errors",
            "jobs_killed",
            "mtbe_hours",
            "reboots",
            "delta_mean",
            "sim_scale",
        ] {
            assert!(body.contains(key), "{key} missing from {body}");
        }
    }

    #[test]
    fn form_bodies_parse_like_queries() {
        let pairs = parse_form("mttr_scale=0.5&xid_rate=79%3A2").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("mttr_scale".to_owned(), "0.5".to_owned()),
                ("xid_rate".to_owned(), "79:2".to_owned()),
            ]
        );
        assert!(parse_form("no-equals-sign").is_none());
        assert_eq!(parse_form("").unwrap(), vec![]);
    }
}
