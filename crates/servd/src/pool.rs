//! The scan pool: fixed threads that shard-parallel queries scatter
//! over.
//!
//! A [`ScanPool`] is owned by the [`crate::store::StoreHandle`] and
//! shared by every event loop, so one big `/errors` scan fans its
//! per-shard slices across cores instead of monopolizing the loop it
//! arrived on. Jobs are pure functions of index → result (they capture
//! an `Arc` of the published snapshot), which keeps the failure story
//! simple: if a worker dies or a result goes missing, the caller
//! recomputes that index inline — correctness never depends on the
//! pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

/// A fixed-size worker pool executing indexed scatter jobs.
#[derive(Debug)]
pub struct ScanPool {
    submit: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// If a scattered job's result has not arrived after this long, the
/// caller stops waiting and recomputes inline (the job's worker
/// panicked, or the machine is beyond saving anyway).
const STRAGGLER_TIMEOUT: Duration = Duration::from_secs(30);

impl ScanPool {
    /// A pool of `threads` workers; `0` means every `run` call computes
    /// inline on the calling thread.
    pub fn new(threads: usize) -> ScanPool {
        let (submit, jobs) = channel::<Job>();
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..threads)
            .map(|_| {
                let jobs: Arc<Mutex<Receiver<Job>>> = Arc::clone(&jobs);
                std::thread::spawn(move || loop {
                    let job = {
                        let guard = match jobs.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.recv()
                    };
                    match job {
                        // A panicking job must not take the worker (or
                        // the other queued jobs) with it.
                        Ok(job) => {
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                        Err(_) => break,
                    }
                })
            })
            .collect();
        ScanPool {
            submit: Some(submit),
            workers,
        }
    }

    /// A pool sized for the machine: one worker per core, capped at 8
    /// (scatter widths beyond that stop paying on the stores we build).
    pub fn for_machine() -> ScanPool {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ScanPool::new(cores.min(8))
    }

    /// How many workers the pool runs (0 = inline execution).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Evaluates `make(i)` for every `i in 0..n`, scattering across the
    /// workers, and returns results in index order. Falls back to
    /// inline evaluation for any index whose result does not come back
    /// (no workers, a panicked job, a saturated queue) — `make` must be
    /// a pure function of its index.
    pub fn run<T: Send + 'static>(
        &self,
        n: usize,
        make: Arc<dyn Fn(usize) -> T + Send + Sync>,
    ) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        // One job stays on the calling thread: with n <= threads + 1
        // every job runs immediately somewhere, and the caller is never
        // idle while workers compute.
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut scattered = 0usize;
        let (results_tx, results_rx) = channel::<(usize, T)>();
        if self.threads() > 0 {
            if let Some(submit) = &self.submit {
                for i in 1..n {
                    let make = Arc::clone(&make);
                    let tx = results_tx.clone();
                    let job: Job = Box::new(move || {
                        let _ = tx.send((i, make(i)));
                    });
                    if submit.send(job).is_err() {
                        break;
                    }
                    scattered += 1;
                }
            }
        }
        drop(results_tx);
        out[0] = Some(make(0));
        let mut received = 0usize;
        while received < scattered {
            match results_rx.recv_timeout(STRAGGLER_TIMEOUT) {
                Ok((i, value)) => {
                    if out[i].is_none() {
                        received += 1;
                    }
                    out[i] = Some(value);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| make(i)))
            .collect()
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.submit.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ScanPool::new(4);
        let out = pool.run(
            16,
            Arc::new(|i| {
                // Uneven job durations scramble completion order.
                std::thread::sleep(Duration::from_millis(((16 - i) % 5) as u64));
                i * 10
            }),
        );
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_thread_pool_computes_inline() {
        let pool = ScanPool::new(0);
        let calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&calls);
        let out = pool.run(
            5,
            Arc::new(move |i| {
                counted.fetch_add(1, Ordering::SeqCst);
                i
            }),
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(calls.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn panicked_job_is_recomputed_inline() {
        let pool = ScanPool::new(2);
        let attempts = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&attempts);
        let out = pool.run(
            4,
            Arc::new(move |i| {
                // Index 2 panics on its first attempt only; the retry
                // (the caller's inline recompute) succeeds.
                if i == 2 && counted.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky job");
                }
                i + 100
            }),
        );
        assert_eq!(out, vec![100, 101, 102, 103]);
        // The pool survives for later queries.
        let again = pool.run(3, Arc::new(|i| i));
        assert_eq!(again, vec![0, 1, 2]);
    }

    #[test]
    fn empty_run_is_empty() {
        let pool = ScanPool::new(2);
        let out: Vec<u64> = pool.run(0, Arc::new(|i| i as u64));
        assert!(out.is_empty());
    }
}
