//! Property layer for the streaming pipeline: randomized logs (duplicate
//! bursts, exact Δt = 20 s gaps, clock regressions, garbage bytes) are
//! streamed with checkpoint/restore at random cut points and random batch
//! partitions, and must always equal the uncut batch run — with shrinking
//! to a minimal counterexample on failure. Truncated and bit-flipped
//! snapshots must always come back as typed errors, never panics.

use hpclog::{PciAddr, XidEvent};
use propcheck::{run, run_shrinking, shrink_vec, Gen};
use resilience::checkpoint::Checkpoint;
use resilience::incremental::StreamingPipeline;
use resilience::{report, Pipeline, QuarantineReport, StudyReport};
use simtime::{Duration, StudyPeriods, Timestamp};
use xid::XidCode;

const LOG_YEAR: i32 = 2024;

fn base() -> Timestamp {
    StudyPeriods::delta().op.start
}

fn xid_line(t: Timestamp, host: &str, gpu: u8, code: u16) -> Vec<u8> {
    let mut line = XidEvent::new(
        t,
        host,
        PciAddr::for_gpu_index(gpu),
        XidCode::new(code),
        "d",
    )
    .to_log_line()
    .to_string()
    .into_bytes();
    line.push(b'\n');
    line
}

/// Random log lines biased toward the hazards that make streaming hard:
/// duplicate bursts (Δ = 0), exact coalescing-boundary gaps (Δ = 20 s),
/// just-past-boundary gaps (21 s), clock regressions (quarantined as
/// out-of-order) and structurally broken lines.
fn gen_lines(g: &mut Gen) -> Vec<Vec<u8>> {
    let mut t: u64 = 0;
    g.vec_with(1, 60, |g| {
        let roll = g.u64_below(100);
        if roll < 70 {
            t += g.choose(&[0u64, 0, 0, 1, 5, 19, 20, 20, 21, 100]);
            let host = format!("gpub00{}", g.u8_in(1, 3));
            let code = g.choose(&[31u16, 48, 63, 74, 79, 94, 119, 122]);
            xid_line(base() + Duration::from_secs(t), &host, g.u8_in(0, 1), code)
        } else if roll < 80 {
            // A clock regression: the scan must reject it without
            // advancing the order anchor.
            let back = g.u64_in(1, 50).min(t);
            xid_line(base() + Duration::from_secs(t - back), "gpub001", 0, 79)
        } else if roll < 87 {
            b"Mar 1\n".to_vec() // truncated stamp
        } else if roll < 94 {
            b"\xFF\xFE not utf8 at all\n".to_vec()
        } else {
            b"plain noise without structure\n".to_vec()
        }
    })
}

fn concat(lines: &[Vec<u8>]) -> Vec<u8> {
    lines.iter().flatten().copied().collect()
}

fn batch(log: &[u8]) -> (StudyReport, QuarantineReport) {
    Pipeline::delta().run_lenient(log, LOG_YEAR, "", "", "")
}

fn compare(
    what: &str,
    (r, q): (StudyReport, QuarantineReport),
    (br, bq): &(StudyReport, QuarantineReport),
) -> Result<(), String> {
    if r.errors != br.errors {
        return Err(format!("{what}: coalesced errors diverged"));
    }
    if report::full(&r) != report::full(br) {
        return Err(format!("{what}: rendered report diverged"));
    }
    if q.ledger.counts() != bq.ledger.counts() {
        return Err(format!("{what}: ledger counts diverged"));
    }
    if q.ledger.exemplars() != bq.ledger.exemplars() {
        return Err(format!("{what}: reservoir exemplars diverged"));
    }
    if q.caveats != bq.caveats {
        return Err(format!("{what}: caveats diverged"));
    }
    Ok(())
}

/// THE tentpole property: cut the stream at a random byte, checkpoint,
/// serialize, restore, continue — equals the uncut batch run. Cut points
/// land inside duplicate bursts, exactly on Δt = 20 s boundaries, inside
/// partial lines and inside garbage, because the generator emits all of
/// those and the cut is uniform over the bytes.
#[test]
fn checkpointed_run_equals_uncut_run() {
    run_shrinking(
        "checkpointed_run_equals_uncut_run",
        200,
        |g| (gen_lines(g), g.u64()),
        |(lines, cut_seed)| {
            shrink_vec(lines)
                .into_iter()
                .map(|l| (l, *cut_seed))
                .collect()
        },
        |(lines, cut_seed)| {
            let log = concat(lines);
            let cut = (cut_seed % (log.len() as u64 + 1)) as usize;
            let oracle = batch(&log);

            let mut first = StreamingPipeline::new(Pipeline::delta(), LOG_YEAR);
            first.push_log(&log[..cut]);
            let loaded = Checkpoint::from_bytes(first.checkpoint().into_bytes())
                .map_err(|e| format!("own snapshot rejected: {e}"))?;
            let mut resumed = StreamingPipeline::restore(&loaded)
                .map_err(|e| format!("own snapshot failed to restore: {e}"))?;
            if resumed.log_bytes_fed() != cut as u64 {
                return Err(format!(
                    "resume offset {} != cut {cut}",
                    resumed.log_bytes_fed()
                ));
            }
            resumed.push_log(&log[cut..]);
            compare(&format!("cut at byte {cut}"), resumed.finalize(), &oracle)
        },
    );
}

/// Any batch partition — with snapshot/restore cycles sprinkled between
/// chunks — equals the batch run. This is the "any batching, any number
/// of checkpoint cuts" closure of the single-cut property.
#[test]
fn any_partition_with_restarts_equals_batch() {
    run("any_partition_with_restarts_equals_batch", 100, |g| {
        let lines = gen_lines(g);
        let log = concat(&lines);
        let oracle = batch(&log);
        let mut engine = StreamingPipeline::new(Pipeline::delta(), LOG_YEAR);
        let mut pos = 0;
        while pos < log.len() {
            let remaining = log.len() - pos;
            let step = if remaining == 1 {
                1
            } else {
                g.usize_in(1, remaining)
            };
            engine.push_log(&log[pos..pos + step]);
            pos += step;
            if g.bool_with(0.3) {
                let loaded = Checkpoint::from_bytes(engine.checkpoint().into_bytes())
                    .expect("own snapshot reads back");
                engine = StreamingPipeline::restore(&loaded).expect("own snapshot restores");
            }
        }
        if let Err(msg) = compare("partitioned run", engine.finalize(), &oracle) {
            panic!("{msg}");
        }
    });
}

/// Materializing mid-stream is a pure read: the result equals the batch
/// run over the prefix, and the stream continues unperturbed.
#[test]
fn materialize_is_effect_free_at_any_point() {
    run("materialize_is_effect_free_at_any_point", 60, |g| {
        let lines = gen_lines(g);
        let log = concat(&lines);
        let cut = g.usize_in(0, log.len());
        let mut engine = StreamingPipeline::new(Pipeline::delta(), LOG_YEAR);
        engine.push_log(&log[..cut]);
        let (mid_r, mid_q) = engine.materialize_full();
        if let Err(msg) = compare("mid-stream view", (mid_r, mid_q), &batch(&log[..cut])) {
            panic!("{msg}");
        }
        engine.push_log(&log[cut..]);
        if let Err(msg) = compare("continued after view", engine.finalize(), &batch(&log)) {
            panic!("{msg}");
        }
    });
}

/// Every strict prefix of a snapshot, and every single-byte corruption of
/// one, either fails the container check or restores to a typed error /
/// a structurally valid engine — never a panic. (Panics would escape the
/// harness and fail the test.)
#[test]
fn damaged_snapshots_are_typed_errors_never_panics() {
    run("damaged_snapshots_are_typed_errors_never_panics", 40, |g| {
        let lines = gen_lines(g);
        let log = concat(&lines);
        let cut = g.usize_in(0, log.len());
        let mut engine = StreamingPipeline::new(Pipeline::delta(), LOG_YEAR);
        engine.push_log(&log[..cut]);
        let bytes = engine.checkpoint().into_bytes();

        for _ in 0..8 {
            let prefix = g.usize_in(0, bytes.len() - 1);
            if let Ok(ck) = Checkpoint::from_bytes(bytes[..prefix].to_vec()) {
                assert!(
                    StreamingPipeline::restore(&ck).is_err(),
                    "strict prefix of {prefix} bytes restored successfully"
                );
            }
        }
        for _ in 0..8 {
            let i = g.usize_in(0, bytes.len() - 1);
            let mut corrupt = bytes.clone();
            corrupt[i] ^= g.u8_in(1, 255);
            if let Ok(ck) = Checkpoint::from_bytes(corrupt) {
                // A flip in a free-form counter can decode; the contract
                // is only "no panic, structural damage is typed".
                let _ = StreamingPipeline::restore(&ck);
            }
        }
    });
}
