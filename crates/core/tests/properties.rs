//! Property tests for the analysis pipeline's invariants: coalescing
//! conservation and idempotence, MTBE identities, attribution monotonicity
//! and histogram conservation — on the in-repo `propcheck` harness.

use hpclog::{PciAddr, Timestamp, XidEvent};
use propcheck::{run, Gen};
use resilience::coalesce::{coalesce, CoalesceSummary};
use resilience::csvio;
use resilience::histogram::{percentile, Histogram};
use resilience::impact::JobImpact;
use resilience::job::AccountedJob;
use resilience::stats::ErrorStats;
use simtime::{Duration, Phase, StudyPeriods};
use xid::XidCode;

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";

/// Event streams over a few hosts/GPUs/codes within the study window,
/// sorted by time like a real archive.
fn event_stream(g: &mut Gen) -> Vec<XidEvent> {
    let start = StudyPeriods::delta().pre_op.start.unix();
    let mut raw: Vec<(u64, u8, u8, u16)> = g.vec_with(0, 120, |g| {
        (
            g.u64_below(100_000),
            g.u8_in(0, 3),
            g.u8_in(0, 2),
            g.choose(&[31u16, 74, 79, 119]),
        )
    });
    raw.sort();
    raw.into_iter()
        .map(|(offset, host, gpu, code)| {
            XidEvent::new(
                Timestamp::from_unix(start + offset),
                format!("gpub00{}", host + 1),
                PciAddr::for_gpu_index(gpu),
                XidCode::new(code),
                "",
            )
        })
        .collect()
}

/// Coalescing conserves raw lines and never grows the set.
#[test]
fn coalesce_conserves_lines() {
    run("coalesce_conserves_lines", 64, |g| {
        let events = event_stream(g);
        let window = g.u64_below(600);
        let n = events.len() as u64;
        let merged = coalesce(events, Duration::from_secs(window));
        let summary = CoalesceSummary::of(&merged);
        assert_eq!(summary.raw_lines, n);
        assert!(summary.errors <= n);
    });
}

/// Coalescing is idempotent: re-coalescing the representatives with the
/// same window changes nothing (anchors are at least a window apart).
#[test]
fn coalesce_idempotent() {
    run("coalesce_idempotent", 64, |g| {
        let events = event_stream(g);
        let window = Duration::from_secs(g.u64_below(600));
        let once = coalesce(events, window);
        let again = coalesce(
            once.iter()
                .map(|e| XidEvent::new(e.time, e.host.clone(), e.pci, e.kind.primary_code(), "")),
            window,
        );
        assert_eq!(again.len(), once.len());
        for (a, b) in once.iter().zip(&again) {
            assert_eq!(a.time, b.time);
            assert_eq!(&a.host, &b.host);
            assert_eq!(a.kind, b.kind);
        }
    });
}

/// A wider window never yields more errors.
#[test]
fn coalesce_monotone_in_window() {
    run("coalesce_monotone_in_window", 64, |g| {
        let events = event_stream(g);
        let w1 = g.u64_below(300);
        let w2 = g.u64_below(300);
        let (small, large) = (w1.min(w2), w1.max(w2));
        let a = coalesce(events.clone(), Duration::from_secs(small)).len();
        let b = coalesce(events, Duration::from_secs(large)).len();
        assert!(b <= a, "window {large} gave {b} > {a} from window {small}");
    });
}

/// MTBE identities: per-node = system × nodes; count × MTBE = hours.
#[test]
fn mtbe_identities() {
    run("mtbe_identities", 64, |g| {
        let events = event_stream(g);
        let nodes = g.usize_in(1, 500);
        let merged = coalesce(events, Duration::from_secs(20));
        let stats = ErrorStats::compute(&merged, StudyPeriods::delta(), nodes);
        for kind in xid::ErrorKind::STUDIED {
            for phase in [Phase::PreOp, Phase::Op] {
                let count = stats.count(kind, phase);
                match (
                    stats.mtbe_system(kind, phase),
                    stats.mtbe_per_node(kind, phase),
                ) {
                    (Some(sys), Some(node)) => {
                        assert!(count > 0);
                        assert!((node / sys - nodes as f64).abs() < 1e-6);
                        assert!((sys * count as f64 - stats.phase_hours(phase)).abs() < 1e-3);
                    }
                    (None, None) => assert_eq!(count, 0),
                    _ => panic!("inconsistent MTBE options"),
                }
            }
        }
    });
}

/// Attribution: failed ≤ encountered per kind; a wider attribution window
/// never attributes fewer failures.
#[test]
fn attribution_monotone() {
    run("attribution_monotone", 64, |g| {
        let events = event_stream(g);
        let end_offset = g.u64_in(1, 120);
        let merged = coalesce(events, Duration::from_secs(20));
        // One failing job per (host, gpu) covering the whole window.
        let periods = StudyPeriods::delta();
        let jobs: Vec<AccountedJob> = (0..3u8)
            .flat_map(|h| (0..2u8).map(move |g| (h, g)))
            .enumerate()
            .map(|(i, (h, g))| AccountedJob {
                id: i as u64,
                name: format!("j{i}"),
                submit: periods.pre_op.start,
                start: periods.pre_op.start,
                end: periods.pre_op.start + Duration::from_secs(100_000 + end_offset),
                gpus: 1,
                gpu_slots: vec![(format!("gpub00{}", h + 1), g)],
                completed: false,
            })
            .collect();
        let narrow = JobImpact::compute(&jobs, &merged, Duration::from_secs(5));
        let wide = JobImpact::compute(&jobs, &merged, Duration::from_secs(600_000));
        for kind in xid::ErrorKind::STUDIED {
            let (n, w) = (narrow.kind(kind), wide.kind(kind));
            assert!(n.failed <= n.encountered);
            assert!(w.failed <= w.encountered);
            assert!(n.failed <= w.failed);
            assert_eq!(n.encountered, w.encountered);
        }
        assert!(narrow.gpu_failed_jobs() <= wide.gpu_failed_jobs());
    });
}

/// Histograms conserve observations across bins + under/overflow.
#[test]
fn histogram_conserves() {
    run("histogram_conserves", 128, |g| {
        let values = g.vec_with(0, 200, |g| g.f64_in(-10.0, 100.0));
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &v in &values {
            h.add(v);
        }
        let binned: u64 = h.bin_counts().iter().sum();
        assert_eq!(binned + h.overflow() + h.underflow(), values.len() as u64);
    });
}

/// Percentiles are monotone in p and bounded by the sample extremes.
#[test]
fn percentile_monotone() {
    run("percentile_monotone", 128, |g| {
        let values = g.vec_with(1, 100, |g| g.f64_in(-1e6, 1e6));
        let p1 = g.f64_in(0.0, 100.0);
        let p2 = g.f64_in(0.0, 100.0);
        let a = percentile(&values, p1.min(p2)).unwrap();
        let b = percentile(&values, p1.max(p2)).unwrap();
        assert!(a <= b + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(a >= min - 1e-9 && b <= max + 1e-9);
    });
}

/// Arbitrary-ish job records for CSV round-trip testing (names restricted
/// to CSV-safe characters, as real sacct exports are).
fn arbitrary_job(g: &mut Gen) -> AccountedJob {
    let id = g.u32_in(0, u32::MAX) as u64;
    let name = g.string_of(NAME_CHARS, 1, 21);
    let submit = Timestamp::from_unix(g.u64_in(1_640_995_200, 1_741_000_000));
    let start = submit + Duration::from_secs(g.u64_below(10_000));
    let run_secs = g.u64_in(1, 500_000);
    let gpus = g.u32_in(0, 8);
    AccountedJob {
        id,
        name,
        submit,
        start,
        end: start + Duration::from_secs(run_secs),
        gpus,
        gpu_slots: (0..gpus.min(4) as u8)
            .map(|i| (format!("gpub{:03}", i + 1), i))
            .collect(),
        completed: g.bool(),
    }
}

/// The job CSV schema round-trips arbitrary records exactly.
#[test]
fn csv_jobs_roundtrip() {
    run("csv_jobs_roundtrip", 64, |g| {
        let jobs = g.vec_with(0, 30, arbitrary_job);
        let csv = csvio::render_jobs(&jobs);
        let back = csvio::parse_jobs(&csv).unwrap();
        assert_eq!(back, jobs);
    });
}

/// The outage CSV schema round-trips arbitrary records exactly.
#[test]
fn csv_outages_roundtrip() {
    run("csv_outages_roundtrip", 64, |g| {
        let outages: Vec<resilience::OutageRecord> =
            g.vec_with(0, 30, |g| resilience::OutageRecord {
                host: format!("gpub{:03}", g.u16_in(1, 999)),
                start: Timestamp::from_unix(g.u64_in(1_640_995_200, 1_741_000_000)),
                duration: Duration::from_secs(g.u64_in(1, 100_000)),
            });
        let csv = csvio::render_outages(&outages);
        assert_eq!(csvio::parse_outages(&csv).unwrap(), outages);
    });
}
