//! Property tests for the analysis pipeline's invariants: coalescing
//! conservation and idempotence, MTBE identities, attribution monotonicity
//! and histogram conservation.

use hpclog::{PciAddr, Timestamp, XidEvent};
use proptest::prelude::*;
use resilience::coalesce::{coalesce, CoalesceSummary};
use resilience::csvio;
use resilience::histogram::{percentile, Histogram};
use resilience::impact::JobImpact;
use resilience::job::AccountedJob;
use resilience::stats::ErrorStats;
use simtime::{Duration, Phase, StudyPeriods};
use xid::XidCode;

/// Event streams over a few hosts/GPUs/codes within the study window.
fn event_stream() -> impl Strategy<Value = Vec<XidEvent>> {
    let start = StudyPeriods::delta().pre_op.start.unix();
    proptest::collection::vec(
        (
            0u64..100_000,             // offset seconds
            0u8..3,                    // host
            0u8..2,                    // gpu
            prop::sample::select(vec![31u16, 74, 79, 119]),
        ),
        0..120,
    )
    .prop_map(move |mut raw| {
        raw.sort();
        raw.into_iter()
            .map(|(offset, host, gpu, code)| {
                XidEvent::new(
                    Timestamp::from_unix(start + offset),
                    format!("gpub00{}", host + 1),
                    PciAddr::for_gpu_index(gpu),
                    XidCode::new(code),
                    "",
                )
            })
            .collect()
    })
}

proptest! {
    /// Coalescing conserves raw lines and never grows the set.
    #[test]
    fn coalesce_conserves_lines(events in event_stream(), window in 0u64..600) {
        let n = events.len() as u64;
        let merged = coalesce(events, Duration::from_secs(window));
        let summary = CoalesceSummary::of(&merged);
        prop_assert_eq!(summary.raw_lines, n);
        prop_assert!(summary.errors <= n);
    }

    /// Coalescing is idempotent: re-coalescing the representatives with the
    /// same window changes nothing (anchors are at least a window apart).
    #[test]
    fn coalesce_idempotent(events in event_stream(), window in 0u64..600) {
        let window = Duration::from_secs(window);
        let once = coalesce(events, window);
        let again = coalesce(
            once.iter().map(|e| XidEvent::new(
                e.time,
                e.host.clone(),
                e.pci,
                e.kind.primary_code(),
                "",
            )),
            window,
        );
        prop_assert_eq!(again.len(), once.len());
        for (a, b) in once.iter().zip(&again) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(&a.host, &b.host);
            prop_assert_eq!(a.kind, b.kind);
        }
    }

    /// A wider window never yields more errors.
    #[test]
    fn coalesce_monotone_in_window(events in event_stream(), w1 in 0u64..300, w2 in 0u64..300) {
        let (small, large) = (w1.min(w2), w1.max(w2));
        let a = coalesce(events.clone(), Duration::from_secs(small)).len();
        let b = coalesce(events, Duration::from_secs(large)).len();
        prop_assert!(b <= a, "window {large} gave {b} > {a} from window {small}");
    }

    /// MTBE identities: per-node = system × nodes; count × MTBE = hours.
    #[test]
    fn mtbe_identities(events in event_stream(), nodes in 1usize..500) {
        let merged = coalesce(events, Duration::from_secs(20));
        let stats = ErrorStats::compute(&merged, StudyPeriods::delta(), nodes);
        for kind in xid::ErrorKind::STUDIED {
            for phase in [Phase::PreOp, Phase::Op] {
                let count = stats.count(kind, phase);
                match (stats.mtbe_system(kind, phase), stats.mtbe_per_node(kind, phase)) {
                    (Some(sys), Some(node)) => {
                        prop_assert!(count > 0);
                        prop_assert!((node / sys - nodes as f64).abs() < 1e-6);
                        prop_assert!((sys * count as f64 - stats.phase_hours(phase)).abs() < 1e-3);
                    }
                    (None, None) => prop_assert_eq!(count, 0),
                    _ => prop_assert!(false, "inconsistent MTBE options"),
                }
            }
        }
    }

    /// Attribution: failed ≤ encountered per kind; a wider attribution
    /// window never attributes fewer failures.
    #[test]
    fn attribution_monotone(events in event_stream(), end_offset in 1u64..120) {
        let merged = coalesce(events, Duration::from_secs(20));
        // One failing job per (host, gpu) covering the whole window.
        let periods = StudyPeriods::delta();
        let jobs: Vec<AccountedJob> = (0..3u8)
            .flat_map(|h| (0..2u8).map(move |g| (h, g)))
            .enumerate()
            .map(|(i, (h, g))| AccountedJob {
                id: i as u64,
                name: format!("j{i}"),
                submit: periods.pre_op.start,
                start: periods.pre_op.start,
                end: periods.pre_op.start + Duration::from_secs(100_000 + end_offset),
                gpus: 1,
                gpu_slots: vec![(format!("gpub00{}", h + 1), g)],
                completed: false,
            })
            .collect();
        let narrow = JobImpact::compute(&jobs, &merged, Duration::from_secs(5));
        let wide = JobImpact::compute(&jobs, &merged, Duration::from_secs(600_000));
        for kind in xid::ErrorKind::STUDIED {
            let (n, w) = (narrow.kind(kind), wide.kind(kind));
            prop_assert!(n.failed <= n.encountered);
            prop_assert!(w.failed <= w.encountered);
            prop_assert!(n.failed <= w.failed);
            prop_assert_eq!(n.encountered, w.encountered);
        }
        prop_assert!(narrow.gpu_failed_jobs() <= wide.gpu_failed_jobs());
    }

    /// Histograms conserve observations across bins + under/overflow.
    #[test]
    fn histogram_conserves(values in proptest::collection::vec(-10.0f64..100.0, 0..200)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &v in &values {
            h.add(v);
        }
        let binned: u64 = h.bin_counts().iter().sum();
        prop_assert_eq!(binned + h.overflow() + h.underflow(), values.len() as u64);
    }

    /// Percentiles are monotone in p and bounded by the sample extremes.
    #[test]
    fn percentile_monotone(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let a = percentile(&values, p1.min(p2)).unwrap();
        let b = percentile(&values, p1.max(p2)).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }
}

/// Arbitrary-ish job records for CSV round-trip testing (names restricted
/// to CSV-safe characters, as real sacct exports are).
fn arbitrary_job() -> impl Strategy<Value = AccountedJob> {
    (
        any::<u32>(),
        "[a-zA-Z0-9_.-]{1,20}",
        1_640_995_200u64..1_741_000_000,
        0u64..10_000,
        1u64..500_000,
        0u32..8,
        any::<bool>(),
    )
        .prop_map(|(id, name, submit, wait, run, gpus, completed)| {
            let submit = Timestamp::from_unix(submit);
            let start = submit + Duration::from_secs(wait);
            AccountedJob {
                id: id as u64,
                name,
                submit,
                start,
                end: start + Duration::from_secs(run),
                gpus,
                gpu_slots: (0..gpus.min(4) as u8)
                    .map(|i| (format!("gpub{:03}", i + 1), i))
                    .collect(),
                completed,
            }
        })
}

proptest! {
    /// The job CSV schema round-trips arbitrary records exactly.
    #[test]
    fn csv_jobs_roundtrip(jobs in proptest::collection::vec(arbitrary_job(), 0..30)) {
        let csv = csvio::render_jobs(&jobs);
        let back = csvio::parse_jobs(&csv).unwrap();
        prop_assert_eq!(back, jobs);
    }

    /// The outage CSV schema round-trips arbitrary records exactly.
    #[test]
    fn csv_outages_roundtrip(
        rows in proptest::collection::vec(
            (1u16..999, 1_640_995_200u64..1_741_000_000, 1u64..100_000),
            0..30,
        )
    ) {
        let outages: Vec<resilience::OutageRecord> = rows
            .into_iter()
            .map(|(node, start, secs)| resilience::OutageRecord {
                host: format!("gpub{node:03}"),
                start: Timestamp::from_unix(start),
                duration: Duration::from_secs(secs),
            })
            .collect();
        let csv = csvio::render_outages(&outages);
        prop_assert_eq!(csvio::parse_outages(&csv).unwrap(), outages);
    }
}
