//! Spatial concentration analysis: how unevenly are errors distributed
//! across GPUs?
//!
//! The paper's storm (one GPU producing 92% of all pre-operational errors)
//! is the extreme of a general phenomenon in GPU fleets: error mass
//! concentrates on a few bad devices. This module quantifies that —
//! per-GPU error counts, top-k shares, the Gini coefficient and a hot-GPU
//! detector generalizing the SRE outlier rule — so fleet operators can
//! rank replacement candidates the way Delta's SREs did.

use crate::coalesce::CoalescedError;
use hpclog::PciAddr;
use simtime::Period;
use std::collections::HashMap;
use xid::ErrorKind;

/// Per-GPU error tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuTally {
    /// Hostname.
    pub host: String,
    /// GPU PCI address.
    pub pci: PciAddr,
    /// Errors attributed to this GPU.
    pub errors: u64,
}

/// Concentration statistics over a set of errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Concentration {
    tallies: Vec<GpuTally>,
    total: u64,
}

impl Concentration {
    /// Tallies errors per GPU, restricted to `kinds` (empty = all studied
    /// kinds) and `window` (`None` = everything), sorted most-errors-first.
    pub fn compute(errors: &[CoalescedError], kinds: &[ErrorKind], window: Option<Period>) -> Self {
        let mut map: HashMap<(String, PciAddr), u64> = HashMap::new();
        let mut total = 0;
        for e in errors {
            if !e.kind.is_studied() {
                continue;
            }
            if !kinds.is_empty() && !kinds.contains(&e.kind) {
                continue;
            }
            if let Some(w) = window {
                if !w.contains(e.time) {
                    continue;
                }
            }
            *map.entry((e.host.clone(), e.pci)).or_insert(0) += 1;
            total += 1;
        }
        let mut tallies: Vec<GpuTally> = map
            .into_iter()
            .map(|((host, pci), errors)| GpuTally { host, pci, errors })
            .collect();
        tallies.sort_by(|a, b| {
            b.errors
                .cmp(&a.errors)
                .then_with(|| (&a.host, a.pci).cmp(&(&b.host, b.pci)))
        });
        Concentration { tallies, total }
    }

    /// The tallies, most-errors-first.
    pub fn tallies(&self) -> &[GpuTally] {
        &self.tallies
    }

    /// Total errors tallied.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct GPUs with at least one error.
    pub fn affected_gpus(&self) -> usize {
        self.tallies.len()
    }

    /// Fraction of all errors carried by the `k` worst GPUs (1.0 when
    /// there are at most `k` affected GPUs; 0.0 when there are no errors).
    pub fn top_k_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let top: u64 = self.tallies.iter().take(k).map(|t| t.errors).sum();
        top as f64 / self.total as f64
    }

    /// The Gini coefficient of the per-GPU error distribution **over the
    /// whole fleet** of `fleet_size` GPUs (error-free GPUs count as
    /// zeros). 0 = perfectly even, → 1 = all errors on one GPU.
    ///
    /// # Panics
    ///
    /// Panics if `fleet_size` is smaller than the number of affected GPUs
    /// or zero.
    pub fn gini(&self, fleet_size: usize) -> f64 {
        assert!(fleet_size >= self.tallies.len() && fleet_size > 0);
        if self.total == 0 || fleet_size == 1 {
            return 0.0;
        }
        // Ascending counts including zeros.
        let mut counts: Vec<u64> = vec![0; fleet_size - self.tallies.len()];
        counts.extend(self.tallies.iter().rev().map(|t| t.errors));
        let n = fleet_size as f64;
        let sum: f64 = self.total as f64;
        let weighted: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
            .sum();
        (2.0 * weighted) / (n * sum) - (n + 1.0) / n
    }

    /// GPUs whose share of the total exceeds `share_threshold` — the
    /// replacement candidates the SRE outlier rule targets.
    pub fn hot_gpus(&self, share_threshold: f64) -> Vec<&GpuTally> {
        if self.total == 0 {
            return Vec::new();
        }
        self.tallies
            .iter()
            .take_while(|t| t.errors as f64 / self.total as f64 > share_threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{StudyPeriods, Timestamp};

    fn err(host: &str, gpu: u8, kind: ErrorKind, n: u64) -> Vec<CoalescedError> {
        (0..n)
            .map(|i| CoalescedError {
                time: Timestamp::from_ymd_hms(2023, 1, 1, 0, 0, 0).unwrap()
                    + simtime::Duration::from_secs(i * 60),
                host: host.to_owned(),
                pci: PciAddr::for_gpu_index(gpu),
                kind,
                merged_lines: 1,
            })
            .collect()
    }

    #[test]
    fn tallies_sorted_desc() {
        let mut errors = err("n1", 0, ErrorKind::GspError, 5);
        errors.extend(err("n2", 1, ErrorKind::GspError, 10));
        errors.extend(err("n3", 2, ErrorKind::GspError, 1));
        let c = Concentration::compute(&errors, &[], None);
        assert_eq!(c.total(), 16);
        assert_eq!(c.affected_gpus(), 3);
        assert_eq!(c.tallies()[0].errors, 10);
        assert_eq!(c.tallies()[0].host, "n2");
        assert_eq!(c.tallies()[2].errors, 1);
    }

    #[test]
    fn top_k_share() {
        let mut errors = err("n1", 0, ErrorKind::MmuError, 90);
        errors.extend(err("n2", 0, ErrorKind::MmuError, 10));
        let c = Concentration::compute(&errors, &[], None);
        assert!((c.top_k_share(1) - 0.9).abs() < 1e-12);
        assert!((c.top_k_share(2) - 1.0).abs() < 1e-12);
        assert!((c.top_k_share(99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storm_shape_dominates_gini() {
        // One GPU with 920 errors vs 8 GPUs with 10 each: very unequal.
        let mut errors = err("storm", 0, ErrorKind::UncontainedMemoryError, 920);
        for g in 0..8u8 {
            errors.extend(err("other", g, ErrorKind::MmuError, 10));
        }
        let c = Concentration::compute(&errors, &[], None);
        let gini = c.gini(448);
        assert!(gini > 0.95, "gini {gini}");
        // The paper's 92%-from-one-GPU statistic.
        assert!((c.top_k_share(1) - 0.92).abs() < 0.01);
    }

    #[test]
    fn even_distribution_has_low_gini() {
        let mut errors = Vec::new();
        for g in 0..8u8 {
            errors.extend(err("n", g, ErrorKind::MmuError, 10));
        }
        let c = Concentration::compute(&errors, &[], None);
        // Even among affected GPUs; fleet of exactly those GPUs.
        assert!(c.gini(8).abs() < 1e-9);
        // But across a big fleet of mostly error-free GPUs it is high.
        assert!(c.gini(448) > 0.9);
    }

    #[test]
    fn kind_and_window_filters() {
        let op = StudyPeriods::delta().op;
        let mut errors = err("n1", 0, ErrorKind::GspError, 5); // 2023 => op
        errors.extend(err("n1", 1, ErrorKind::MmuError, 7));
        let only_gsp = Concentration::compute(&errors, &[ErrorKind::GspError], None);
        assert_eq!(only_gsp.total(), 5);
        let in_op = Concentration::compute(&errors, &[], Some(op));
        assert_eq!(in_op.total(), 12);
        let pre = Concentration::compute(&errors, &[], Some(StudyPeriods::delta().pre_op));
        assert_eq!(pre.total(), 0);
    }

    #[test]
    fn hot_gpus_threshold() {
        let mut errors = err("bad", 0, ErrorKind::UncontainedMemoryError, 80);
        errors.extend(err("meh", 0, ErrorKind::MmuError, 15));
        errors.extend(err("ok", 0, ErrorKind::MmuError, 5));
        let c = Concentration::compute(&errors, &[], None);
        let hot = c.hot_gpus(0.5);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].host, "bad");
        assert_eq!(c.hot_gpus(0.05).len(), 2);
        assert!(c.hot_gpus(0.99).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let c = Concentration::compute(&[], &[], None);
        assert_eq!(c.total(), 0);
        assert_eq!(c.top_k_share(3), 0.0);
        assert!(c.hot_gpus(0.1).is_empty());
        assert_eq!(c.gini(448), 0.0);
    }
}
