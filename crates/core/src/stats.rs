//! Error statistics — counts and MTBE per kind, category and phase
//! (the Table I computation).
//!
//! Conventions, all following the paper:
//!
//! * **System-wide MTBE** for a kind = phase length in hours / error count.
//! * **Per-node MTBE** = system-wide MTBE × node count (106 on Delta).
//! * The **"Uncorrectable ECC memory errors"** row of Table I is synthetic:
//!   every uncorrectable fault produces exactly one row-remap outcome, so
//!   its count equals RRE + RRF (pre-op 31 + 15 = 46, op 34 + 0 = 34 — the
//!   published values confirm the identity). [`ErrorStats`] reproduces it
//!   as [`ErrorStats::uncorrectable_count`], and includes it in phase
//!   totals exactly as the paper's 199 h / 154 h overall per-node MTBE
//!   figures do.
//! * The **hardware vs memory** comparison (§IV(iii): memory is 160× more
//!   reliable) counts NVLink with hardware — the published 155 h hardware
//!   MTBE only reproduces with XID 74 included — and sums the memory kinds
//!   plus the synthetic uncorrectable row.
//! * The SRE **outlier rule**: the pre-op per-node MTBE excludes the
//!   38,900-error uncontained storm from the one faulty GPU
//!   ([`exclude_dominant_gpu`]).

use crate::coalesce::CoalescedError;
use hpclog::PciAddr;
use simtime::{Phase, StudyPeriods};
use std::collections::{BTreeMap, HashMap};
use xid::{Category, ErrorKind};

/// Per-kind, per-phase error counts with MTBE derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorStats {
    periods: StudyPeriods,
    node_count: usize,
    counts: BTreeMap<ErrorKind, (u64, u64)>,
}

impl ErrorStats {
    /// Tallies coalesced errors into per-kind, per-phase counts.
    ///
    /// Unstudied kinds (XID 13/43, unknown codes) and events outside the
    /// study window are ignored, per §II-B.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn compute(errors: &[CoalescedError], periods: StudyPeriods, node_count: usize) -> Self {
        assert!(node_count > 0, "node_count must be positive");
        // Table I is one instantiation of the shared aggregation kernel:
        // group by kind, fold phase membership into (pre_op, op) counts.
        let counts = crate::rollup::group_fold(
            errors.iter().filter(|e| e.kind.is_studied()),
            |e| Some(e.kind),
            |entry: &mut (u64, u64), e| match periods.period_of(e.time) {
                Some(Phase::PreOp) => entry.0 += 1,
                Some(Phase::Op) => entry.1 += 1,
                None => {}
            },
        );
        ErrorStats {
            periods,
            node_count,
            counts,
        }
    }

    /// The study calendar these statistics were computed over.
    pub fn periods(&self) -> StudyPeriods {
        self.periods
    }

    /// The node count used for per-node MTBE.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Error count for `(kind, phase)`.
    pub fn count(&self, kind: ErrorKind, phase: Phase) -> u64 {
        let pair = self.counts.get(&kind).copied().unwrap_or((0, 0));
        match phase {
            Phase::PreOp => pair.0,
            Phase::Op => pair.1,
        }
    }

    /// The synthetic "uncorrectable ECC memory errors" count: RRE + RRF.
    pub fn uncorrectable_count(&self, phase: Phase) -> u64 {
        self.count(ErrorKind::RowRemapEvent, phase) + self.count(ErrorKind::RowRemapFailure, phase)
    }

    /// Total studied errors in a phase, including the synthetic
    /// uncorrectable row (matching the paper's overall-MTBE convention).
    pub fn total_count(&self, phase: Phase) -> u64 {
        let direct: u64 = ErrorKind::STUDIED
            .iter()
            .map(|&k| self.count(k, phase))
            .sum();
        direct + self.uncorrectable_count(phase)
    }

    /// Hours in a phase.
    pub fn phase_hours(&self, phase: Phase) -> f64 {
        match phase {
            Phase::PreOp => self.periods.pre_op.hours(),
            Phase::Op => self.periods.op.hours(),
        }
    }

    /// System-wide MTBE in hours for a kind, `None` when no errors.
    pub fn mtbe_system(&self, kind: ErrorKind, phase: Phase) -> Option<f64> {
        mtbe(self.phase_hours(phase), self.count(kind, phase))
    }

    /// Per-node MTBE in hours for a kind, `None` when no errors.
    pub fn mtbe_per_node(&self, kind: ErrorKind, phase: Phase) -> Option<f64> {
        self.mtbe_system(kind, phase)
            .map(|m| m * self.node_count as f64)
    }

    /// System-wide MTBE over *all* studied errors in a phase.
    pub fn overall_mtbe_system(&self, phase: Phase) -> Option<f64> {
        mtbe(self.phase_hours(phase), self.total_count(phase))
    }

    /// Per-node MTBE over all studied errors — the paper's headline
    /// 199 h (pre-op) and 154 h (op) figures.
    pub fn overall_mtbe_per_node(&self, phase: Phase) -> Option<f64> {
        self.overall_mtbe_system(phase)
            .map(|m| m * self.node_count as f64)
    }

    /// Error count of a whole category in a phase. [`Category::Memory`]
    /// includes the synthetic uncorrectable row.
    pub fn category_count(&self, category: Category, phase: Phase) -> u64 {
        let direct: u64 = ErrorKind::STUDIED
            .iter()
            .filter(|k| k.category() == category)
            .map(|&k| self.count(k, phase))
            .sum();
        if category == Category::Memory {
            direct + self.uncorrectable_count(phase)
        } else {
            direct
        }
    }

    /// Per-node MTBE of a category.
    pub fn category_mtbe_per_node(&self, category: Category, phase: Phase) -> Option<f64> {
        mtbe(
            self.phase_hours(phase),
            self.category_count(category, phase),
        )
        .map(|m| m * self.node_count as f64)
    }

    /// The §IV(iii) comparison: per-node MTBE of GPU memory divided by that
    /// of GPU hardware (hardware + interconnect, the paper's 155 h basis).
    /// `None` unless both sides have errors. The paper reports ≈ 160×.
    pub fn memory_vs_hardware_ratio(&self, phase: Phase) -> Option<f64> {
        let hw_count = self.category_count(Category::Hardware, phase)
            + self.category_count(Category::Interconnect, phase);
        let hw = mtbe(self.phase_hours(phase), hw_count)?;
        let mem = self.category_mtbe_per_node(Category::Memory, phase)?;
        Some(mem / (hw * self.node_count as f64))
    }

    /// The GSP degradation ratio of §IV(iii): pre-op per-node MTBE divided
    /// by op per-node MTBE (the paper reports ≈ 5.6×).
    pub fn gsp_degradation_ratio(&self) -> Option<f64> {
        let pre = self.mtbe_per_node(ErrorKind::GspError, Phase::PreOp)?;
        let op = self.mtbe_per_node(ErrorKind::GspError, Phase::Op)?;
        Some(pre / op)
    }

    /// The kind with the shortest per-node MTBE among a category's kinds in
    /// a phase — "the most vulnerable component".
    pub fn most_vulnerable(&self, category: Category, phase: Phase) -> Option<ErrorKind> {
        ErrorKind::STUDIED
            .iter()
            .filter(|k| k.category() == category)
            .filter(|&&k| self.count(k, phase) > 0)
            .max_by_key(|&&k| self.count(k, phase))
            .copied()
    }
}

fn mtbe(hours: f64, count: u64) -> Option<f64> {
    if count == 0 {
        None
    } else {
        Some(hours / count as f64)
    }
}

/// Report of an outlier exclusion performed by [`exclude_dominant_gpu`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlierReport {
    /// The excluded GPU.
    pub host: String,
    /// Its PCI address.
    pub pci: PciAddr,
    /// How many errors of the kind it contributed in the phase.
    pub excluded_errors: u64,
    /// The kind that was dominated.
    pub kind: ErrorKind,
}

/// Applies the SRE outlier rule: if a single GPU contributes more than
/// `share_threshold` of a kind's errors within a phase, its errors of that
/// kind in that phase are dropped (the paper excludes the faulty GPU's
/// 38,900 pre-operational uncontained errors this way).
///
/// Returns the filtered errors and, when an exclusion happened, a report.
pub fn exclude_dominant_gpu(
    errors: &[CoalescedError],
    kind: ErrorKind,
    phase: Phase,
    periods: StudyPeriods,
    share_threshold: f64,
) -> (Vec<CoalescedError>, Option<OutlierReport>) {
    let in_scope = |e: &CoalescedError| e.kind == kind && periods.period_of(e.time) == Some(phase);
    let mut per_gpu: HashMap<(&str, PciAddr), u64> = HashMap::new();
    let mut total = 0u64;
    for e in errors.iter().filter(|e| in_scope(e)) {
        *per_gpu.entry((e.host.as_str(), e.pci)).or_insert(0) += 1;
        total += 1;
    }
    let Some((&(host, pci), &max)) = per_gpu.iter().max_by_key(|(_, &c)| c) else {
        return (errors.to_vec(), None);
    };
    if total == 0 || (max as f64) / (total as f64) <= share_threshold {
        return (errors.to_vec(), None);
    }
    let host = host.to_owned();
    let filtered = errors
        .iter()
        .filter(|e| !(in_scope(e) && e.host == host && e.pci == pci))
        .cloned()
        .collect();
    (
        filtered,
        Some(OutlierReport {
            host,
            pci,
            excluded_errors: max,
            kind,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periods() -> StudyPeriods {
        StudyPeriods::delta()
    }

    fn err(phase: Phase, host: &str, gpu: u8, kind: ErrorKind, n: u64) -> Vec<CoalescedError> {
        let base = match phase {
            Phase::PreOp => periods().pre_op.start,
            Phase::Op => periods().op.start,
        };
        (0..n)
            .map(|i| CoalescedError {
                time: base + simtime::Duration::from_secs(1000 + i * 100),
                host: host.to_owned(),
                pci: PciAddr::for_gpu_index(gpu),
                kind,
                merged_lines: 1,
            })
            .collect()
    }

    #[test]
    fn counts_split_by_phase() {
        let mut errors = err(Phase::PreOp, "n1", 0, ErrorKind::GspError, 3);
        errors.extend(err(Phase::Op, "n1", 0, ErrorKind::GspError, 5));
        let stats = ErrorStats::compute(&errors, periods(), 106);
        assert_eq!(stats.count(ErrorKind::GspError, Phase::PreOp), 3);
        assert_eq!(stats.count(ErrorKind::GspError, Phase::Op), 5);
    }

    #[test]
    fn unstudied_kinds_ignored() {
        let errors = err(Phase::Op, "n1", 0, ErrorKind::GpuSoftware, 100);
        let stats = ErrorStats::compute(&errors, periods(), 106);
        assert_eq!(stats.total_count(Phase::Op), 0);
    }

    #[test]
    fn events_outside_window_ignored() {
        let late = CoalescedError {
            time: periods().op.end + simtime::Duration::from_days(1),
            host: "n1".to_owned(),
            pci: PciAddr::for_gpu_index(0),
            kind: ErrorKind::GspError,
            merged_lines: 1,
        };
        let stats = ErrorStats::compute(&[late], periods(), 106);
        assert_eq!(stats.total_count(Phase::Op), 0);
        assert_eq!(stats.total_count(Phase::PreOp), 0);
    }

    #[test]
    fn mtbe_identities() {
        // Table I check: 3,857 op GSP errors over 896 days / 106 nodes
        // gives system MTBE 5.6 h and per-node 590 h.
        let errors = err(Phase::Op, "n1", 0, ErrorKind::GspError, 3857);
        let stats = ErrorStats::compute(&errors, periods(), 106);
        let sys = stats.mtbe_system(ErrorKind::GspError, Phase::Op).unwrap();
        assert!((sys - 5.6).abs() < 0.03, "system {sys}");
        let node = stats.mtbe_per_node(ErrorKind::GspError, Phase::Op).unwrap();
        assert!((node - 590.0).abs() < 5.0, "per-node {node}");
    }

    #[test]
    fn mtbe_none_when_no_errors() {
        let stats = ErrorStats::compute(&[], periods(), 106);
        assert_eq!(stats.mtbe_system(ErrorKind::GspError, Phase::Op), None);
        assert_eq!(stats.overall_mtbe_per_node(Phase::Op), None);
    }

    #[test]
    fn uncorrectable_row_is_rre_plus_rrf() {
        let mut errors = err(Phase::PreOp, "n1", 0, ErrorKind::RowRemapEvent, 31);
        errors.extend(err(Phase::PreOp, "n1", 1, ErrorKind::RowRemapFailure, 15));
        let stats = ErrorStats::compute(&errors, periods(), 106);
        assert_eq!(stats.uncorrectable_count(Phase::PreOp), 46);
        // Totals include the synthetic row: 31 + 15 + 46.
        assert_eq!(stats.total_count(Phase::PreOp), 92);
    }

    #[test]
    fn paper_table_counts_reproduce_headline_mtbe() {
        // Feed exactly the paper's operational counts and verify the
        // 154 h overall per-node MTBE emerges.
        let spec: [(ErrorKind, u64); 9] = [
            (ErrorKind::MmuError, 8_863),
            (ErrorKind::DoubleBitError, 1),
            (ErrorKind::RowRemapEvent, 34),
            (ErrorKind::RowRemapFailure, 0),
            (ErrorKind::NvlinkError, 1_922),
            (ErrorKind::FallenOffBus, 10),
            (ErrorKind::ContainedMemoryError, 13),
            (ErrorKind::UncontainedMemoryError, 11),
            (ErrorKind::GspError, 3_857),
        ];
        let mut errors = Vec::new();
        for (gpu, (kind, n)) in spec.iter().enumerate() {
            errors.extend(err(Phase::Op, "n1", gpu as u8 % 8, *kind, *n));
        }
        errors.extend(err(Phase::Op, "n2", 0, ErrorKind::PmuSpiError, 77));
        let stats = ErrorStats::compute(&errors, periods(), 106);
        assert_eq!(stats.total_count(Phase::Op), 14_822);
        let overall = stats.overall_mtbe_per_node(Phase::Op).unwrap();
        assert!((overall - 154.0).abs() < 2.0, "overall {overall}");
        // And the 160x memory-vs-hardware ratio.
        let ratio = stats.memory_vs_hardware_ratio(Phase::Op).unwrap();
        assert!((155.0..170.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gsp_degradation() {
        let mut errors = err(Phase::PreOp, "n1", 0, ErrorKind::GspError, 209);
        errors.extend(err(Phase::Op, "n1", 0, ErrorKind::GspError, 3_857));
        let stats = ErrorStats::compute(&errors, periods(), 106);
        let ratio = stats.gsp_degradation_ratio().unwrap();
        assert!((5.0..6.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn most_vulnerable_hardware_is_mmu_then_gsp() {
        let mut errors = err(Phase::Op, "n1", 0, ErrorKind::GspError, 100);
        errors.extend(err(Phase::Op, "n1", 1, ErrorKind::PmuSpiError, 5));
        let stats = ErrorStats::compute(&errors, periods(), 106);
        assert_eq!(
            stats.most_vulnerable(Category::Hardware, Phase::Op),
            Some(ErrorKind::GspError)
        );
        assert_eq!(stats.most_vulnerable(Category::Memory, Phase::Op), None);
    }

    #[test]
    fn outlier_exclusion_drops_dominant_gpu_only() {
        // One faulty GPU with 1000 uncontained errors, another with 10.
        let mut errors = err(
            Phase::PreOp,
            "gpub038",
            2,
            ErrorKind::UncontainedMemoryError,
            1000,
        );
        errors.extend(err(
            Phase::PreOp,
            "gpub001",
            0,
            ErrorKind::UncontainedMemoryError,
            10,
        ));
        errors.extend(err(Phase::PreOp, "gpub038", 2, ErrorKind::GspError, 7));
        let (filtered, report) = exclude_dominant_gpu(
            &errors,
            ErrorKind::UncontainedMemoryError,
            Phase::PreOp,
            periods(),
            0.5,
        );
        let report = report.expect("dominant GPU found");
        assert_eq!(report.excluded_errors, 1000);
        assert_eq!(report.host, "gpub038");
        // Other GPU's errors and the same GPU's *other* kinds survive.
        let stats = ErrorStats::compute(&filtered, periods(), 106);
        assert_eq!(
            stats.count(ErrorKind::UncontainedMemoryError, Phase::PreOp),
            10
        );
        assert_eq!(stats.count(ErrorKind::GspError, Phase::PreOp), 7);
    }

    #[test]
    fn outlier_exclusion_noop_when_balanced() {
        let mut errors = err(Phase::PreOp, "n1", 0, ErrorKind::UncontainedMemoryError, 10);
        errors.extend(err(
            Phase::PreOp,
            "n2",
            0,
            ErrorKind::UncontainedMemoryError,
            10,
        ));
        let (filtered, report) = exclude_dominant_gpu(
            &errors,
            ErrorKind::UncontainedMemoryError,
            Phase::PreOp,
            periods(),
            0.5,
        );
        assert!(report.is_none());
        assert_eq!(filtered.len(), errors.len());
    }

    #[test]
    fn outlier_exclusion_noop_when_empty() {
        let (filtered, report) = exclude_dominant_gpu(
            &[],
            ErrorKind::UncontainedMemoryError,
            Phase::PreOp,
            periods(),
            0.5,
        );
        assert!(report.is_none());
        assert!(filtered.is_empty());
    }
}
