//! Error coalescing — Fig. 1 stage ii.
//!
//! The same GPU error condition produces many identical log lines in close
//! succession (driver re-reporting, duplicated transports). Counting each
//! line as an error grossly *understates* resilience, so the pipeline
//! merges identical lines from the same GPU within a window Δt into one
//! error, counting only the first occurrence — the standard treatment in
//! the large-scale field-study literature the paper cites.
//!
//! Semantics: events are keyed by `(host, PCI address, error kind)`. A new
//! event is merged into the previous *kept* event of the same key if it
//! falls within `window` of that anchor; otherwise it starts a new error
//! (anchor-based windows, so a continuous storm of lines spaced closer than
//! Δt still yields one error per Δt, not one error total).

use hpclog::{PciAddr, XidEvent};
use simtime::{Duration, Timestamp};
use std::collections::HashMap;
use xid::ErrorKind;

/// One coalesced error: the surviving representative of a run of identical
/// log lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedError {
    /// Time of the first line in the run.
    pub time: Timestamp,
    /// Origin host.
    pub host: String,
    /// Origin GPU (PCI address).
    pub pci: PciAddr,
    /// Semantic kind.
    pub kind: ErrorKind,
    /// How many raw lines were merged into this error (≥ 1).
    pub merged_lines: u64,
}

impl CoalescedError {
    /// The GPU index conventionally associated with the PCI address.
    pub fn gpu_index(&self) -> Option<u8> {
        self.pci.gpu_index()
    }
}

/// Coalesces a time-ordered stream of extracted XID events.
///
/// Input must be sorted by time (archives replay in time order); out-of-
/// order events are still handled correctly for keys whose anchor is in the
/// past, but windows only ever look backwards.
///
/// This is a fold over [`Coalescer::push`], so the batch path and the
/// incremental engine (`core::incremental`) share one set of window
/// semantics by construction.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn coalesce<I>(events: I, window: Duration) -> Vec<CoalescedError>
where
    I: IntoIterator<Item = XidEvent>,
{
    let mut coalescer = Coalescer::new(window);
    for ev in events {
        coalescer.push(ev);
    }
    coalescer.into_errors()
}

/// What [`Coalescer::push`] did with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pushed {
    /// The event started a new coalesced error at this index.
    Started(usize),
    /// The event merged into the existing error at this index.
    Merged(usize),
}

/// The coalescing fold as a long-lived state machine.
///
/// Holds the growing list of coalesced errors plus, per `(host, pci,
/// kind)` key, the index of the current *anchor* error — the one a
/// same-key event within `window` merges into. Pushing events one at a
/// time yields exactly what [`coalesce`] yields on the whole stream.
///
/// The anchor table is fully reconstructible from the error list (the
/// anchor for a key is simply the *last* error of that key, since anchors
/// only move when a new error starts), which is what lets a checkpoint
/// serialise only the errors; see [`Coalescer::from_errors`].
#[derive(Debug, Clone)]
pub struct Coalescer {
    window: Duration,
    out: Vec<CoalescedError>,
    // host -> (pci, kind) -> index into `out` of the current anchor. The
    // nested shape lets the hot path probe with `&str`, so the hostname is
    // cloned only when a key is first seen — not once per raw line.
    anchors: HashMap<String, HashMap<(PciAddr, ErrorKind), usize>>,
}

impl Coalescer {
    /// An empty coalescer with the given window Δt.
    pub fn new(window: Duration) -> Self {
        Coalescer {
            window,
            out: Vec::new(),
            anchors: HashMap::new(),
        }
    }

    /// Rebuilds a coalescer whose future behaviour is identical to one
    /// that produced `errors` by a sequence of pushes (used when restoring
    /// a checkpoint). The anchor table is replayed from the error list:
    /// last error per key wins, matching how pushes assign anchors.
    pub fn from_errors(window: Duration, errors: Vec<CoalescedError>) -> Self {
        let mut anchors: HashMap<String, HashMap<(PciAddr, ErrorKind), usize>> = HashMap::new();
        for (idx, err) in errors.iter().enumerate() {
            let inner = match anchors.get_mut(err.host.as_str()) {
                Some(inner) => inner,
                None => anchors.entry(err.host.clone()).or_default(),
            };
            inner.insert((err.pci, err.kind), idx);
        }
        Coalescer {
            window,
            out: errors,
            anchors,
        }
    }

    /// The window Δt this coalescer merges within.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Folds one event in, merging it into its key's anchor error when
    /// within the window, else starting (and anchoring) a new error.
    pub fn push(&mut self, ev: XidEvent) -> Pushed {
        let kind = ev.kind();
        match self
            .anchors
            .get_mut(ev.host.as_str())
            .and_then(|inner| inner.get(&(ev.pci, kind)).copied())
        {
            Some(idx) if ev.time.abs_diff(self.out[idx].time) <= self.window => {
                self.out[idx].merged_lines += 1;
                Pushed::Merged(idx)
            }
            _ => {
                let idx = self.out.len();
                let inner = match self.anchors.get_mut(ev.host.as_str()) {
                    Some(inner) => inner,
                    None => self.anchors.entry(ev.host.clone()).or_default(),
                };
                inner.insert((ev.pci, kind), idx);
                self.out.push(CoalescedError {
                    time: ev.time,
                    host: ev.host,
                    pci: ev.pci,
                    kind,
                    merged_lines: 1,
                });
                Pushed::Started(idx)
            }
        }
    }

    /// The coalesced errors so far, in first-occurrence order.
    pub fn errors(&self) -> &[CoalescedError] {
        &self.out
    }

    /// Number of coalesced errors so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consumes the coalescer, yielding the coalesced errors.
    pub fn into_errors(self) -> Vec<CoalescedError> {
        self.out
    }
}

/// Summary of a coalescing pass: how much the log shrank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceSummary {
    /// Raw lines in.
    pub raw_lines: u64,
    /// Coalesced errors out.
    pub errors: u64,
}

impl CoalesceSummary {
    /// Computes the summary of a coalesced set.
    pub fn of(errors: &[CoalescedError]) -> Self {
        CoalesceSummary {
            raw_lines: errors.iter().map(|e| e.merged_lines).sum(),
            errors: errors.len() as u64,
        }
    }

    /// The deduplication ratio (raw lines per error), 1.0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.errors == 0 {
            1.0
        } else {
            self.raw_lines as f64 / self.errors as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xid::XidCode;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_unix(1_700_000_000 + secs)
    }

    fn ev(secs: u64, host: &str, gpu: u8, code: u16) -> XidEvent {
        XidEvent::new(
            t(secs),
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "d",
        )
    }

    const W: Duration = Duration::from_secs(60);

    #[test]
    fn merges_identical_within_window() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(10, "n1", 0, 79), ev(59, "n1", 0, 79)],
            W,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].merged_lines, 3);
        assert_eq!(merged[0].time, t(0));
    }

    #[test]
    fn outside_window_starts_new_error() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(61, "n1", 0, 79)], W);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|e| e.merged_lines == 1));
    }

    #[test]
    fn anchor_is_first_not_last() {
        // Lines at 0, 40, 80: 80 is within 60 of 40 but not of the anchor
        // (0), so it starts a new error — one error per Δt during storms.
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(40, "n1", 0, 79), ev(80, "n1", 0, 79)],
            W,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].merged_lines, 2);
        assert_eq!(merged[1].time, t(80));
    }

    #[test]
    fn different_gpus_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n1", 1, 79)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_hosts_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n2", 0, 79)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_kinds_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n1", 0, 31)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn same_kind_different_code_merges() {
        // XID 119 and 120 are both GSP errors; identical condition.
        let merged = coalesce([ev(0, "n1", 0, 119), ev(5, "n1", 0, 120)], W);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].kind, ErrorKind::GspError);
    }

    #[test]
    fn interleaved_keys_keep_independent_windows() {
        let merged = coalesce(
            [
                ev(0, "n1", 0, 79),
                ev(1, "n2", 0, 31),
                ev(2, "n1", 0, 79),
                ev(3, "n2", 0, 31),
            ],
            W,
        );
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|e| e.merged_lines == 2));
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(std::iter::empty(), W).is_empty());
    }

    #[test]
    fn zero_window_merges_same_second_only() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(0, "n1", 0, 79), ev(1, "n1", 0, 79)],
            Duration::ZERO,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].merged_lines, 2);
    }

    #[test]
    fn storm_counts_one_error_per_window() {
        // 1000 lines, one every 10 s: with Δt = 60 s, expect ~1000/7.
        let events: Vec<XidEvent> = (0..1000).map(|i| ev(i * 10, "n1", 0, 95)).collect();
        let merged = coalesce(events, W);
        let expected = 1000 / 7;
        assert!(
            (merged.len() as i64 - expected as i64).abs() <= 1,
            "{} errors",
            merged.len()
        );
    }

    #[test]
    fn summary_ratio() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(1, "n1", 0, 79), ev(2, "n1", 0, 79)],
            W,
        );
        let summary = CoalesceSummary::of(&merged);
        assert_eq!(summary.raw_lines, 3);
        assert_eq!(summary.errors, 1);
        assert!((summary.ratio() - 3.0).abs() < 1e-12);
        assert!((CoalesceSummary::default().ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_index_passthrough() {
        let merged = coalesce([ev(0, "n1", 3, 79)], W);
        assert_eq!(merged[0].gpu_index(), Some(3));
    }

    #[test]
    fn push_reports_started_and_merged_indices() {
        let mut c = Coalescer::new(W);
        assert_eq!(c.push(ev(0, "n1", 0, 79)), Pushed::Started(0));
        assert_eq!(c.push(ev(10, "n1", 0, 79)), Pushed::Merged(0));
        assert_eq!(c.push(ev(11, "n2", 0, 79)), Pushed::Started(1));
        assert_eq!(c.push(ev(100, "n1", 0, 79)), Pushed::Started(2));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.window(), W);
        assert_eq!(c.errors()[0].merged_lines, 2);
    }

    #[test]
    fn from_errors_resumes_identically_at_any_cut() {
        // A stream with interleaved keys, duplicate bursts, and events
        // spaced exactly at the window boundary. Cutting anywhere and
        // rebuilding from the error list alone must not change the result.
        let events: Vec<XidEvent> = (0..200u64)
            .map(|i| {
                ev(
                    i * 7,
                    if i % 3 == 0 { "n1" } else { "n2" },
                    (i % 2) as u8,
                    if i % 5 == 0 { 31 } else { 79 },
                )
            })
            .collect();
        let expect = coalesce(events.clone(), W);
        for cut in 0..=events.len() {
            let mut head = Coalescer::new(W);
            for ev in &events[..cut] {
                head.push(ev.clone());
            }
            let mut resumed = Coalescer::from_errors(W, head.into_errors());
            for ev in &events[cut..] {
                resumed.push(ev.clone());
            }
            assert_eq!(resumed.into_errors(), expect, "cut={cut}");
        }
    }
}
