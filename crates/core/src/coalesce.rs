//! Error coalescing — Fig. 1 stage ii.
//!
//! The same GPU error condition produces many identical log lines in close
//! succession (driver re-reporting, duplicated transports). Counting each
//! line as an error grossly *understates* resilience, so the pipeline
//! merges identical lines from the same GPU within a window Δt into one
//! error, counting only the first occurrence — the standard treatment in
//! the large-scale field-study literature the paper cites.
//!
//! Semantics: events are keyed by `(host, PCI address, error kind)`. A new
//! event is merged into the previous *kept* event of the same key if it
//! falls within `window` of that anchor; otherwise it starts a new error
//! (anchor-based windows, so a continuous storm of lines spaced closer than
//! Δt still yields one error per Δt, not one error total).

use hpclog::{PciAddr, XidEvent};
use simtime::{Duration, Timestamp};
use std::collections::HashMap;
use xid::ErrorKind;

/// One coalesced error: the surviving representative of a run of identical
/// log lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedError {
    /// Time of the first line in the run.
    pub time: Timestamp,
    /// Origin host.
    pub host: String,
    /// Origin GPU (PCI address).
    pub pci: PciAddr,
    /// Semantic kind.
    pub kind: ErrorKind,
    /// How many raw lines were merged into this error (≥ 1).
    pub merged_lines: u64,
}

impl CoalescedError {
    /// The GPU index conventionally associated with the PCI address.
    pub fn gpu_index(&self) -> Option<u8> {
        self.pci.gpu_index()
    }
}

/// Coalesces a time-ordered stream of extracted XID events.
///
/// Input must be sorted by time (archives replay in time order); out-of-
/// order events are still handled correctly for keys whose anchor is in the
/// past, but windows only ever look backwards.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn coalesce<I>(events: I, window: Duration) -> Vec<CoalescedError>
where
    I: IntoIterator<Item = XidEvent>,
{
    let mut out: Vec<CoalescedError> = Vec::new();
    // host -> (pci, kind) -> index into `out` of the current anchor. The
    // nested shape lets the hot path probe with `&str`, so the hostname is
    // cloned only when a key is first seen — not once per raw line.
    let mut anchors: HashMap<String, HashMap<(PciAddr, ErrorKind), usize>> = HashMap::new();
    for ev in events {
        let kind = ev.kind();
        match anchors
            .get_mut(ev.host.as_str())
            .and_then(|inner| inner.get(&(ev.pci, kind)).copied())
        {
            Some(idx) if ev.time.abs_diff(out[idx].time) <= window => {
                out[idx].merged_lines += 1;
            }
            _ => {
                let idx = out.len();
                let inner = match anchors.get_mut(ev.host.as_str()) {
                    Some(inner) => inner,
                    None => anchors.entry(ev.host.clone()).or_default(),
                };
                inner.insert((ev.pci, kind), idx);
                out.push(CoalescedError {
                    time: ev.time,
                    host: ev.host,
                    pci: ev.pci,
                    kind,
                    merged_lines: 1,
                });
            }
        }
    }
    out
}

/// Summary of a coalescing pass: how much the log shrank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceSummary {
    /// Raw lines in.
    pub raw_lines: u64,
    /// Coalesced errors out.
    pub errors: u64,
}

impl CoalesceSummary {
    /// Computes the summary of a coalesced set.
    pub fn of(errors: &[CoalescedError]) -> Self {
        CoalesceSummary {
            raw_lines: errors.iter().map(|e| e.merged_lines).sum(),
            errors: errors.len() as u64,
        }
    }

    /// The deduplication ratio (raw lines per error), 1.0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.errors == 0 {
            1.0
        } else {
            self.raw_lines as f64 / self.errors as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xid::XidCode;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_unix(1_700_000_000 + secs)
    }

    fn ev(secs: u64, host: &str, gpu: u8, code: u16) -> XidEvent {
        XidEvent::new(
            t(secs),
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "d",
        )
    }

    const W: Duration = Duration::from_secs(60);

    #[test]
    fn merges_identical_within_window() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(10, "n1", 0, 79), ev(59, "n1", 0, 79)],
            W,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].merged_lines, 3);
        assert_eq!(merged[0].time, t(0));
    }

    #[test]
    fn outside_window_starts_new_error() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(61, "n1", 0, 79)], W);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|e| e.merged_lines == 1));
    }

    #[test]
    fn anchor_is_first_not_last() {
        // Lines at 0, 40, 80: 80 is within 60 of 40 but not of the anchor
        // (0), so it starts a new error — one error per Δt during storms.
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(40, "n1", 0, 79), ev(80, "n1", 0, 79)],
            W,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].merged_lines, 2);
        assert_eq!(merged[1].time, t(80));
    }

    #[test]
    fn different_gpus_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n1", 1, 79)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_hosts_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n2", 0, 79)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_kinds_never_merge() {
        let merged = coalesce([ev(0, "n1", 0, 79), ev(1, "n1", 0, 31)], W);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn same_kind_different_code_merges() {
        // XID 119 and 120 are both GSP errors; identical condition.
        let merged = coalesce([ev(0, "n1", 0, 119), ev(5, "n1", 0, 120)], W);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].kind, ErrorKind::GspError);
    }

    #[test]
    fn interleaved_keys_keep_independent_windows() {
        let merged = coalesce(
            [
                ev(0, "n1", 0, 79),
                ev(1, "n2", 0, 31),
                ev(2, "n1", 0, 79),
                ev(3, "n2", 0, 31),
            ],
            W,
        );
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|e| e.merged_lines == 2));
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(std::iter::empty(), W).is_empty());
    }

    #[test]
    fn zero_window_merges_same_second_only() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(0, "n1", 0, 79), ev(1, "n1", 0, 79)],
            Duration::ZERO,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].merged_lines, 2);
    }

    #[test]
    fn storm_counts_one_error_per_window() {
        // 1000 lines, one every 10 s: with Δt = 60 s, expect ~1000/7.
        let events: Vec<XidEvent> = (0..1000).map(|i| ev(i * 10, "n1", 0, 95)).collect();
        let merged = coalesce(events, W);
        let expected = 1000 / 7;
        assert!(
            (merged.len() as i64 - expected as i64).abs() <= 1,
            "{} errors",
            merged.len()
        );
    }

    #[test]
    fn summary_ratio() {
        let merged = coalesce(
            [ev(0, "n1", 0, 79), ev(1, "n1", 0, 79), ev(2, "n1", 0, 79)],
            W,
        );
        let summary = CoalesceSummary::of(&merged);
        assert_eq!(summary.raw_lines, 3);
        assert_eq!(summary.errors, 1);
        assert!((summary.ratio() - 3.0).abs() < 1e-12);
        assert!((CoalesceSummary::default().ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_index_passthrough() {
        let merged = coalesce([ev(0, "n1", 3, 79)], W);
        assert_eq!(merged[0].gpu_index(), Some(3));
    }
}
