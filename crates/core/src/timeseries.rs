//! Error-rate time series and trend analysis.
//!
//! §IV of the paper reasons about *change over time* — rates before vs
//! after production, improvements "potentially due to the early replacement
//! of defective GPUs and automatic node health checks". This module makes
//! those statements quantitative on any error stream: fixed-width binned
//! counts (weekly by default), per-bin MTBE, and a least-squares trend
//! with which to ask "is this component getting better or worse?".

use crate::coalesce::CoalescedError;
use simtime::{Duration, Period, Timestamp};
use xid::ErrorKind;

/// One time-series bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bin {
    /// Bin start.
    pub start: Timestamp,
    /// Errors in the bin.
    pub count: u64,
}

/// A binned error-count series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorSeries {
    bins: Vec<Bin>,
    bin_length: Duration,
}

impl ErrorSeries {
    /// Bins errors of `kind` (or all studied kinds when `None`) over
    /// `window` into consecutive bins of `bin_length` (a partial trailing
    /// bin is kept).
    ///
    /// # Panics
    ///
    /// Panics if `bin_length` is zero.
    pub fn bin(
        errors: &[CoalescedError],
        kind: Option<ErrorKind>,
        window: Period,
        bin_length: Duration,
    ) -> Self {
        assert!(bin_length.as_secs() > 0, "bin length must be positive");
        let span = window.length().as_secs();
        let width = bin_length.as_secs();
        let bin_count = span.div_ceil(width).max(1) as usize;
        let mut bins: Vec<Bin> = (0..bin_count)
            .map(|i| Bin {
                start: window.start + Duration::from_secs(i as u64 * width),
                count: 0,
            })
            .collect();
        for e in errors {
            let keep = match kind {
                Some(k) => e.kind == k,
                None => e.kind.is_studied(),
            };
            if !keep || !window.contains(e.time) {
                continue;
            }
            let idx = ((e.time - window.start).as_secs() / width) as usize;
            bins[idx.min(bin_count - 1)].count += 1;
        }
        ErrorSeries { bins, bin_length }
    }

    /// Weekly binning, the paper-natural granularity.
    pub fn weekly(errors: &[CoalescedError], kind: Option<ErrorKind>, window: Period) -> Self {
        ErrorSeries::bin(errors, kind, window, Duration::from_days(7))
    }

    /// The bins, in time order.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// The bin width.
    pub fn bin_length(&self) -> Duration {
        self.bin_length
    }

    /// Total errors across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|b| b.count).sum()
    }

    /// Least-squares slope of counts per bin, in errors-per-bin per bin.
    /// Negative = improving. `None` with fewer than two bins.
    pub fn trend(&self) -> Option<f64> {
        let n = self.bins.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = (nf - 1.0) / 2.0;
        let mean_y = self.total() as f64 / nf;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, b) in self.bins.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (b.count as f64 - mean_y);
            den += dx * dx;
        }
        Some(num / den)
    }

    /// Per-bin system-wide MTBE in hours (`None` entries for empty bins).
    pub fn mtbe_per_bin(&self) -> Vec<Option<f64>> {
        let hours = self.bin_length.as_hours_f64();
        self.bins
            .iter()
            .map(|b| {
                if b.count == 0 {
                    None
                } else {
                    Some(hours / b.count as f64)
                }
            })
            .collect()
    }

    /// Renders a compact sparkline-style text chart.
    pub fn render(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().map(|b| b.count).max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|b| GLYPHS[((b.count * (GLYPHS.len() as u64 - 1)) / max) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::PciAddr;
    use simtime::StudyPeriods;

    fn window() -> Period {
        let start = StudyPeriods::delta().op.start;
        Period::new(start, start + Duration::from_days(70)) // 10 weeks
    }

    fn err(day: u64, kind: ErrorKind) -> CoalescedError {
        CoalescedError {
            time: window().start + Duration::from_days(day) + Duration::from_hours(1),
            host: "gpub001".to_owned(),
            pci: PciAddr::for_gpu_index(0),
            kind,
            merged_lines: 1,
        }
    }

    #[test]
    fn weekly_binning_counts_correctly() {
        // Days 0, 1 -> week 0; day 8 -> week 1; day 65 -> week 9.
        let errors = vec![
            err(0, ErrorKind::GspError),
            err(1, ErrorKind::GspError),
            err(8, ErrorKind::GspError),
            err(65, ErrorKind::GspError),
        ];
        let s = ErrorSeries::weekly(&errors, Some(ErrorKind::GspError), window());
        assert_eq!(s.bins().len(), 10);
        assert_eq!(s.bins()[0].count, 2);
        assert_eq!(s.bins()[1].count, 1);
        assert_eq!(s.bins()[9].count, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn kind_filter_and_all_studied() {
        let errors = vec![
            err(0, ErrorKind::GspError),
            err(0, ErrorKind::MmuError),
            err(0, ErrorKind::GpuSoftware), // excluded kind
        ];
        let gsp = ErrorSeries::weekly(&errors, Some(ErrorKind::GspError), window());
        assert_eq!(gsp.total(), 1);
        let all = ErrorSeries::weekly(&errors, None, window());
        assert_eq!(all.total(), 2);
    }

    #[test]
    fn events_outside_window_ignored() {
        let mut e = err(0, ErrorKind::GspError);
        e.time = window().end + Duration::from_days(1);
        let s = ErrorSeries::weekly(&[e], None, window());
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn increasing_series_has_positive_trend() {
        let mut errors = Vec::new();
        for week in 0..10u64 {
            for _ in 0..week {
                errors.push(err(week * 7, ErrorKind::GspError));
            }
        }
        let s = ErrorSeries::weekly(&errors, None, window());
        let slope = s.trend().unwrap();
        assert!((slope - 1.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn improving_series_has_negative_trend() {
        let mut errors = Vec::new();
        for week in 0..10u64 {
            for _ in 0..(10 - week) {
                errors.push(err(week * 7, ErrorKind::NvlinkError));
            }
        }
        let s = ErrorSeries::weekly(&errors, None, window());
        assert!(s.trend().unwrap() < -0.9);
    }

    #[test]
    fn flat_series_has_zero_trend() {
        let mut errors = Vec::new();
        for week in 0..10u64 {
            errors.push(err(week * 7, ErrorKind::MmuError));
        }
        let s = ErrorSeries::weekly(&errors, None, window());
        assert!(s.trend().unwrap().abs() < 1e-9);
    }

    #[test]
    fn trend_needs_two_bins() {
        let s = ErrorSeries::bin(&[], None, window(), Duration::from_days(70));
        assert_eq!(s.bins().len(), 1);
        assert_eq!(s.trend(), None);
    }

    #[test]
    fn mtbe_per_bin() {
        let errors = vec![err(0, ErrorKind::GspError), err(0, ErrorKind::GspError)];
        let s = ErrorSeries::weekly(&errors, None, window());
        let mtbe = s.mtbe_per_bin();
        assert_eq!(mtbe[0], Some(7.0 * 24.0 / 2.0));
        assert_eq!(mtbe[1], None);
    }

    #[test]
    fn render_sparkline() {
        let errors = vec![err(0, ErrorKind::GspError), err(0, ErrorKind::GspError)];
        let s = ErrorSeries::weekly(&errors, None, window());
        let chart = s.render();
        assert_eq!(chart.chars().count(), 10);
        assert!(chart.starts_with('█'));
    }

    #[test]
    fn partial_trailing_bin_kept() {
        let start = window().start;
        let short = Period::new(start, start + Duration::from_days(10));
        let s = ErrorSeries::weekly(&[], None, short);
        assert_eq!(s.bins().len(), 2);
    }
}
