//! Cross-kind error correlation — the §IV(iv) analysis.
//!
//! The paper reports that PMU SPI communication errors "exhibited high
//! correlations with MMU errors" and conjectures a propagation path
//! (PMU → MMU → job failure). This module measures exactly that on a
//! coalesced error stream: for an ordered pair of kinds (trigger,
//! follower), how often a follower error appears on the *same GPU* within
//! a window after a trigger error, and how that compares to the follower's
//! base rate — the *lift*. Lift ≫ 1 is the signature of propagation;
//! lift ≈ 1 means coincidence.

use crate::coalesce::CoalescedError;
use hpclog::PciAddr;
use simtime::{Duration, Period};
use std::collections::HashMap;
use xid::ErrorKind;

/// The result of one ordered-pair correlation measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// Trigger errors examined.
    pub triggers: u64,
    /// Triggers followed by at least one follower error on the same GPU
    /// within the window.
    pub followed: u64,
    /// Expected number of followed triggers under independence (follower
    /// events scattered uniformly over the observation window).
    pub expected_followed: f64,
}

impl Correlation {
    /// P(follower within window | trigger).
    pub fn conditional_probability(&self) -> Option<f64> {
        if self.triggers == 0 {
            None
        } else {
            Some(self.followed as f64 / self.triggers as f64)
        }
    }

    /// Observed / expected follow rate; ≫ 1 indicates propagation.
    pub fn lift(&self) -> Option<f64> {
        if self.triggers == 0 || self.expected_followed <= 0.0 {
            None
        } else {
            Some(self.followed as f64 / self.expected_followed)
        }
    }
}

/// Measures the (trigger → follower) correlation on the same GPU within
/// `window` after each trigger, over the observation `period`.
///
/// Triggers too close to the period end to fit a full window are still
/// counted (the truncation bias is negligible for windows ≪ period).
pub fn correlate(
    errors: &[CoalescedError],
    trigger: ErrorKind,
    follower: ErrorKind,
    window: Duration,
    period: Period,
) -> Correlation {
    // Index follower times per GPU (sorted: input is time-ordered).
    let mut follower_times: HashMap<(&str, PciAddr), Vec<simtime::Timestamp>> = HashMap::new();
    let mut follower_total = 0u64;
    for e in errors {
        if e.kind == follower && period.contains(e.time) {
            follower_times
                .entry((e.host.as_str(), e.pci))
                .or_default()
                .push(e.time);
            follower_total += 1;
        }
    }
    for times in follower_times.values_mut() {
        times.sort();
    }

    let mut triggers = 0u64;
    let mut followed = 0u64;
    for e in errors {
        if e.kind != trigger || !period.contains(e.time) {
            continue;
        }
        triggers += 1;
        if let Some(times) = follower_times.get(&(e.host.as_str(), e.pci)) {
            let lo = times.partition_point(|&t| t <= e.time);
            if times.get(lo).is_some_and(|&t| t - e.time <= window) {
                followed += 1;
            }
        }
    }

    // Under independence, a window of length w catches a follower with
    // probability ~ 1 - exp(-rate_gpu_avg * w); approximate with the
    // fleet-average follower rate per GPU observed in the data. Using the
    // *affected-GPU* population keeps the null model honest: propagation
    // must beat co-location on generally error-prone devices.
    let gpus = follower_times.len().max(1) as f64;
    let rate_per_gpu_hour = follower_total as f64 / gpus / period.hours();
    let p_by_chance = 1.0 - (-rate_per_gpu_hour * window.as_hours_f64()).exp();
    Correlation {
        triggers,
        followed,
        expected_followed: triggers as f64 * p_by_chance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{StudyPeriods, Timestamp};

    fn period() -> Period {
        StudyPeriods::delta().op
    }

    fn err(host: &str, gpu: u8, kind: ErrorKind, secs: u64) -> CoalescedError {
        CoalescedError {
            time: period().start + Duration::from_secs(secs),
            host: host.to_owned(),
            pci: PciAddr::for_gpu_index(gpu),
            kind,
            merged_lines: 1,
        }
    }

    #[test]
    fn perfect_propagation_has_high_lift() {
        // Every PMU error followed by an MMU error 60 s later on the same
        // GPU; MMU errors are otherwise rare.
        let mut errors = Vec::new();
        for i in 0..50u64 {
            errors.push(err("n1", 0, ErrorKind::PmuSpiError, i * 100_000));
            errors.push(err("n1", 0, ErrorKind::MmuError, i * 100_000 + 60));
        }
        let c = correlate(
            &errors,
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_mins(10),
            period(),
        );
        assert_eq!(c.triggers, 50);
        assert_eq!(c.followed, 50);
        assert_eq!(c.conditional_probability(), Some(1.0));
        assert!(c.lift().unwrap() > 100.0, "lift {:?}", c.lift());
    }

    #[test]
    fn independent_processes_have_unit_lift() {
        // PMU and MMU on *different* GPUs: no same-GPU following at all.
        let mut errors = Vec::new();
        for i in 0..50u64 {
            errors.push(err("n1", 0, ErrorKind::PmuSpiError, i * 50_000));
            errors.push(err("n1", 1, ErrorKind::MmuError, i * 50_000 + 30));
        }
        let c = correlate(
            &errors,
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_mins(10),
            period(),
        );
        assert_eq!(c.followed, 0);
        assert_eq!(c.conditional_probability(), Some(0.0));
    }

    #[test]
    fn window_bounds_matter() {
        let errors = vec![
            err("n1", 0, ErrorKind::PmuSpiError, 0),
            err("n1", 0, ErrorKind::MmuError, 3601),
        ];
        let narrow = correlate(
            &errors,
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_hours(1),
            period(),
        );
        assert_eq!(narrow.followed, 0);
        let wide = correlate(
            &errors,
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_secs(3601),
            period(),
        );
        assert_eq!(wide.followed, 1);
    }

    #[test]
    fn followers_before_trigger_do_not_count() {
        let errors = vec![
            err("n1", 0, ErrorKind::MmuError, 0),
            err("n1", 0, ErrorKind::PmuSpiError, 100),
        ];
        let c = correlate(
            &errors,
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_hours(1),
            period(),
        );
        assert_eq!(c.triggers, 1);
        assert_eq!(c.followed, 0);
    }

    #[test]
    fn no_triggers_yields_none() {
        let c = correlate(
            &[],
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_mins(10),
            period(),
        );
        assert_eq!(c.conditional_probability(), None);
        assert_eq!(c.lift(), None);
    }

    #[test]
    fn out_of_period_errors_ignored() {
        let mut e1 = err("n1", 0, ErrorKind::PmuSpiError, 0);
        e1.time = Timestamp::from_ymd_hms(2022, 2, 1, 0, 0, 0).unwrap(); // pre-op
        let c = correlate(
            &[e1],
            ErrorKind::PmuSpiError,
            ErrorKind::MmuError,
            Duration::from_mins(10),
            period(),
        );
        assert_eq!(c.triggers, 0);
    }
}
