//! Programmatic evaluation of the paper's headline findings (i)–(vii)
//! against a computed [`StudyReport`].
//!
//! Each finding is a *shape claim* — an ordering, ratio band or threshold —
//! not an exact count: the reproduction runs on synthetic telemetry seeded
//! from the paper's own summary statistics, so matching absolute numbers
//! exactly would be circular. The bands below encode what must hold for the
//! paper's conclusions to transfer.

use crate::pipeline::StudyReport;
use simtime::Phase;
use std::fmt;
use xid::{Category, ErrorKind};

/// One evaluated finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FindingCheck {
    /// Paper finding id, e.g. `"(ii) memory vs hardware"`.
    pub id: &'static str,
    /// Whether the report satisfies the claim.
    pub pass: bool,
    /// Human-readable evidence (measured value vs expected band).
    pub detail: String,
}

impl fmt::Display for FindingCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.id,
            self.detail
        )
    }
}

/// The full set of finding evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct Findings {
    checks: Vec<FindingCheck>,
}

impl Findings {
    /// Evaluates every finding against `report`.
    pub fn evaluate(report: &StudyReport) -> Self {
        let s = &report.stats;
        let mut checks = Vec::new();
        let mut push = |id: &'static str, pass: bool, detail: String| {
            checks.push(FindingCheck { id, pass, detail });
        };

        // (i) Per-node MTBE degraded from pre-op to op (≈199 h → ≈154 h,
        // a 10–40% reduction band).
        match (
            s.overall_mtbe_per_node(Phase::PreOp),
            s.overall_mtbe_per_node(Phase::Op),
        ) {
            (Some(pre), Some(op)) => {
                let reduction = (pre - op) / pre * 100.0;
                push(
                    "(i) MTBE degradation pre-op to op",
                    op < pre && (5.0..45.0).contains(&reduction),
                    format!("{pre:.0} h -> {op:.0} h ({reduction:.0}% reduction; paper: 199 -> 154, 23%)"),
                );
            }
            _ => push(
                "(i) MTBE degradation pre-op to op",
                false,
                "insufficient errors".into(),
            ),
        }

        // (ii) Memory is two orders of magnitude more reliable than
        // hardware (paper: 160×; band: > 50×).
        match s.memory_vs_hardware_ratio(Phase::Op) {
            Some(ratio) => push(
                "(ii) memory vs hardware MTBE ratio",
                ratio > 50.0,
                format!("{ratio:.0}x (paper: 160x)"),
            ),
            None => push(
                "(ii) memory vs hardware MTBE ratio",
                false,
                "no memory or hardware errors".into(),
            ),
        }

        // (iii) GSP is the most frequent hardware error source after MMU's
        // known propagation, and its MTBE degraded several-fold (paper 5.6×).
        match s.gsp_degradation_ratio() {
            Some(ratio) => push(
                "(iii) GSP degradation in production",
                (3.0..9.0).contains(&ratio),
                format!("pre/op per-node MTBE ratio {ratio:.1}x (paper: 5.6x)"),
            ),
            None => push(
                "(iii) GSP degradation in production",
                false,
                "no GSP errors".into(),
            ),
        }
        push(
            "(iii) GSP errors always kill jobs",
            report
                .impact
                .kind(ErrorKind::GspError)
                .failure_probability()
                .is_some_and(|p| p > 0.95),
            format!(
                "P(fail | GSP) = {} (paper: 100%)",
                report
                    .impact
                    .kind(ErrorKind::GspError)
                    .failure_probability()
                    .map_or("-".into(), |p| format!("{:.1}%", p * 100.0))
            ),
        );

        // (iv) PMU errors are highly lethal when encountered (paper 97.6%).
        push(
            "(iv) PMU errors kill jobs",
            report
                .impact
                .kind(ErrorKind::PmuSpiError)
                .failure_probability()
                .is_some_and(|p| p > 0.85),
            format!(
                "P(fail | PMU) = {} (paper: 97.6%)",
                report
                    .impact
                    .kind(ErrorKind::PmuSpiError)
                    .failure_probability()
                    .map_or("-".into(), |p| format!("{:.1}%", p * 100.0))
            ),
        );

        // (v) NVLink errors kill only about half the affected jobs
        // (paper 53.75%; band 40–70%).
        push(
            "(v) NVLink errors survivable",
            report
                .impact
                .kind(ErrorKind::NvlinkError)
                .failure_probability()
                .is_some_and(|p| (0.40..0.70).contains(&p)),
            format!(
                "P(fail | NVLink) = {} (paper: 53.75%)",
                report
                    .impact
                    .kind(ErrorKind::NvlinkError)
                    .failure_probability()
                    .map_or("-".into(), |p| format!("{:.1}%", p * 100.0))
            ),
        );

        // (vi) Memory error management works: no operational row-remap
        // failures (paper: zero RRF in op, 100% DBE mitigation).
        push(
            "(vi) no operational remap failures",
            s.count(ErrorKind::RowRemapFailure, Phase::Op) == 0,
            format!(
                "op RRF count = {} (paper: 0)",
                s.count(ErrorKind::RowRemapFailure, Phase::Op)
            ),
        );

        // (vii) Availability around 99.5% (band 99.0–99.9%), i.e. minutes
        // of downtime per node-day.
        match report.availability_estimate() {
            Some(a) => push(
                "(vii) availability ~99.5%",
                (0.990..0.999).contains(&a),
                format!(
                    "{:.2}% = {:.1} min/day (paper: 99.5%, 7 min/day)",
                    a * 100.0,
                    crate::availability::Availability::downtime_minutes_per_day(a)
                ),
            ),
            None => push(
                "(vii) availability ~99.5%",
                false,
                "no outages or errors".into(),
            ),
        }

        // Table II ordering: GSP >= PMU > MMU > NVLink.
        let p = |k| {
            report
                .impact
                .kind(k)
                .failure_probability()
                .unwrap_or(f64::NAN)
        };
        let (gsp, pmu, mmu, nvl) = (
            p(ErrorKind::GspError),
            p(ErrorKind::PmuSpiError),
            p(ErrorKind::MmuError),
            p(ErrorKind::NvlinkError),
        );
        push(
            "Table II lethality ordering",
            gsp >= pmu - 0.05 && pmu > mmu - 0.03 && mmu > nvl,
            format!("GSP {gsp:.2} >= PMU {pmu:.2} > MMU {mmu:.2} > NVLink {nvl:.2}"),
        );

        // Category sanity: hardware dominates operational error volume.
        let hw = s.category_count(Category::Hardware, Phase::Op);
        let mem = s.category_count(Category::Memory, Phase::Op);
        push(
            "hardware dominates op errors",
            hw > 10 * mem.max(1),
            format!("hardware {hw} vs memory {mem}"),
        );

        Findings { checks }
    }

    /// The individual checks.
    pub fn checks(&self) -> &[FindingCheck] {
        &self.checks
    }

    /// Whether every check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// `(passed, total)` counts.
    pub fn score(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|c| c.pass).count(),
            self.checks.len(),
        )
    }
}

impl fmt::Display for Findings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for check in &self.checks {
            writeln!(f, "{check}")?;
        }
        let (pass, total) = self.score();
        write!(f, "{pass}/{total} findings reproduced")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    #[test]
    fn empty_report_fails_gracefully() {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        let findings = Findings::evaluate(&report);
        assert!(!findings.all_pass());
        let (pass, total) = findings.score();
        assert!(total >= 9);
        assert!(pass < total);
        // Display renders one line per check plus the summary.
        let text = findings.to_string();
        assert_eq!(text.lines().count(), total + 1);
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn check_display_format() {
        let check = FindingCheck {
            id: "(x) demo",
            pass: true,
            detail: "42".into(),
        };
        assert_eq!(check.to_string(), "[PASS] (x) demo — 42");
    }
}
