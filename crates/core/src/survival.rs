//! Survival analysis of GPU time-to-first-error (Kaplan–Meier).
//!
//! The paper's related work (Ostrouchov et al., "GPU lifetimes on Titan",
//! SC'20) analyses GPU survival; this module brings the same lens to the
//! Delta data: treating each GPU's time from the observation start to its
//! first error of a chosen kind set as a (right-censored) lifetime, the
//! Kaplan–Meier estimator gives the survival curve S(t) and median
//! lifetime without assuming a parametric hazard.
//!
//! Censoring arises naturally: GPUs that never log the error within the
//! window contribute lifetimes "at least the window length".

use crate::coalesce::CoalescedError;
use hpclog::PciAddr;
use simtime::{Duration, Period};
use std::collections::HashMap;
use xid::ErrorKind;

/// One subject's observation: time observed and whether the event (first
/// error) occurred at that time or the subject was censored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lifetime {
    /// Hours from observation start to event or censoring.
    pub hours: f64,
    /// `true` if the error occurred; `false` if censored (no error by the
    /// end of the window).
    pub observed: bool,
}

/// A point on the Kaplan–Meier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivalPoint {
    /// Event time in hours.
    pub hours: f64,
    /// Estimated survival probability S(t) just after this time.
    pub survival: f64,
    /// Subjects at risk just before this time.
    pub at_risk: usize,
    /// Events at this time.
    pub events: usize,
}

/// The Kaplan–Meier estimate over a set of lifetimes.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    points: Vec<SurvivalPoint>,
    subjects: usize,
    observed_events: usize,
}

impl KaplanMeier {
    /// Fits the estimator.
    ///
    /// Ties are handled in the standard way (all events at a time share
    /// one step); censored subjects leave the risk set after events at the
    /// same time.
    pub fn fit(lifetimes: &[Lifetime]) -> Self {
        let mut sorted: Vec<Lifetime> = lifetimes.to_vec();
        sorted.sort_by(|a, b| a.hours.total_cmp(&b.hours));
        let subjects = sorted.len();
        let mut points = Vec::new();
        let mut at_risk = subjects;
        let mut survival = 1.0;
        let mut observed_events = 0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].hours;
            let mut events = 0;
            let mut leaving = 0;
            while i < sorted.len() && sorted[i].hours == t {
                if sorted[i].observed {
                    events += 1;
                }
                leaving += 1;
                i += 1;
            }
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                observed_events += events;
                points.push(SurvivalPoint {
                    hours: t,
                    survival,
                    at_risk,
                    events,
                });
            }
            at_risk -= leaving;
        }
        KaplanMeier {
            points,
            subjects,
            observed_events,
        }
    }

    /// The curve's step points (only event times appear).
    pub fn points(&self) -> &[SurvivalPoint] {
        &self.points
    }

    /// Number of subjects.
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of observed (uncensored) events.
    pub fn observed_events(&self) -> usize {
        self.observed_events
    }

    /// S(t): the estimated probability of surviving beyond `hours`.
    pub fn survival_at(&self, hours: f64) -> f64 {
        let mut s = 1.0;
        for p in &self.points {
            if p.hours <= hours {
                s = p.survival;
            } else {
                break;
            }
        }
        s
    }

    /// The median survival time in hours, or `None` if the curve never
    /// drops to 0.5 (more than half the subjects censored error-free —
    /// itself a strong reliability statement).
    pub fn median_hours(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.survival <= 0.5)
            .map(|p| p.hours)
    }
}

/// Builds per-GPU time-to-first-error lifetimes for the error kinds in
/// `kinds`, over the observation window.
///
/// `gpus` lists every observed GPU (host, PCI) so that error-free GPUs are
/// correctly included as censored subjects — omitting them would
/// catastrophically bias the estimate toward unreliability.
pub fn gpu_lifetimes(
    errors: &[CoalescedError],
    gpus: &[(String, PciAddr)],
    kinds: &[ErrorKind],
    window: Period,
) -> Vec<Lifetime> {
    let mut first: HashMap<(&str, PciAddr), Duration> = HashMap::new();
    for e in errors {
        if !kinds.contains(&e.kind) || !window.contains(e.time) {
            continue;
        }
        let at = e.time - window.start;
        first
            .entry((e.host.as_str(), e.pci))
            .and_modify(|d| {
                if at < *d {
                    *d = at;
                }
            })
            .or_insert(at);
    }
    let horizon = window.length().as_hours_f64();
    gpus.iter()
        .map(|(host, pci)| match first.get(&(host.as_str(), *pci)) {
            Some(d) => Lifetime {
                hours: d.as_hours_f64(),
                observed: true,
            },
            None => Lifetime {
                hours: horizon,
                observed: false,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{StudyPeriods, Timestamp};

    fn lt(hours: f64, observed: bool) -> Lifetime {
        Lifetime { hours, observed }
    }

    #[test]
    fn all_observed_simple_curve() {
        // Events at 1, 2, 3, 4 hours; classic quarter steps.
        let km = KaplanMeier::fit(&[lt(1.0, true), lt(2.0, true), lt(3.0, true), lt(4.0, true)]);
        assert_eq!(km.subjects(), 4);
        assert_eq!(km.observed_events(), 4);
        let s: Vec<f64> = km.points().iter().map(|p| p.survival).collect();
        assert_eq!(s, vec![0.75, 0.5, 0.25, 0.0]);
        assert_eq!(km.median_hours(), Some(2.0));
    }

    #[test]
    fn censoring_shrinks_risk_set_without_steps() {
        // Event at 1 h (n=3 -> S=2/3), censor at 2 h, event at 3 h
        // (risk set 1 -> S=0).
        let km = KaplanMeier::fit(&[lt(1.0, true), lt(2.0, false), lt(3.0, true)]);
        assert_eq!(km.points().len(), 2);
        assert!((km.points()[0].survival - 2.0 / 3.0).abs() < 1e-12);
        assert!((km.points()[1].survival - 0.0).abs() < 1e-12);
        assert_eq!(km.observed_events(), 2);
    }

    #[test]
    fn survival_at_is_a_right_continuous_step() {
        let km = KaplanMeier::fit(&[lt(1.0, true), lt(3.0, true)]);
        assert_eq!(km.survival_at(0.5), 1.0);
        assert_eq!(km.survival_at(1.0), 0.5);
        assert_eq!(km.survival_at(2.9), 0.5);
        assert_eq!(km.survival_at(3.0), 0.0);
    }

    #[test]
    fn heavy_censoring_yields_no_median() {
        let mut lifetimes = vec![lt(5.0, true)];
        lifetimes.extend(std::iter::repeat_n(lt(100.0, false), 9));
        let km = KaplanMeier::fit(&lifetimes);
        assert_eq!(km.median_hours(), None);
        assert!(km.survival_at(1000.0) > 0.8);
    }

    #[test]
    fn tied_events_share_one_step() {
        let km = KaplanMeier::fit(&[lt(2.0, true), lt(2.0, true), lt(5.0, true), lt(9.0, false)]);
        assert_eq!(km.points().len(), 2);
        assert_eq!(km.points()[0].events, 2);
        assert!((km.points()[0].survival - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let km = KaplanMeier::fit(&[]);
        assert!(km.points().is_empty());
        assert_eq!(km.median_hours(), None);
        assert_eq!(km.survival_at(10.0), 1.0);
    }

    #[test]
    fn gpu_lifetimes_include_censored_gpus() {
        let window = StudyPeriods::delta().op;
        let gpus: Vec<(String, PciAddr)> = (0..4)
            .map(|i| ("gpub001".to_owned(), PciAddr::for_gpu_index(i)))
            .collect();
        // Only GPU 0 errors, 10 hours in; twice (first occurrence wins).
        let errors = vec![
            CoalescedError {
                time: window.start + Duration::from_hours(10),
                host: "gpub001".to_owned(),
                pci: PciAddr::for_gpu_index(0),
                kind: ErrorKind::GspError,
                merged_lines: 1,
            },
            CoalescedError {
                time: window.start + Duration::from_hours(99),
                host: "gpub001".to_owned(),
                pci: PciAddr::for_gpu_index(0),
                kind: ErrorKind::GspError,
                merged_lines: 1,
            },
        ];
        let lifetimes = gpu_lifetimes(&errors, &gpus, &[ErrorKind::GspError], window);
        assert_eq!(lifetimes.len(), 4);
        let observed: Vec<&Lifetime> = lifetimes.iter().filter(|l| l.observed).collect();
        assert_eq!(observed.len(), 1);
        assert!((observed[0].hours - 10.0).abs() < 1e-9);
        for l in lifetimes.iter().filter(|l| !l.observed) {
            assert!((l.hours - window.hours()).abs() < 1e-9);
        }
    }

    #[test]
    fn gpu_lifetimes_respect_kind_filter_and_window() {
        let window = StudyPeriods::delta().op;
        let gpus = vec![("gpub001".to_owned(), PciAddr::for_gpu_index(0))];
        let errors = vec![
            // Wrong kind.
            CoalescedError {
                time: window.start + Duration::from_hours(1),
                host: "gpub001".to_owned(),
                pci: PciAddr::for_gpu_index(0),
                kind: ErrorKind::MmuError,
                merged_lines: 1,
            },
            // Outside window (pre-op).
            CoalescedError {
                time: Timestamp::from_ymd_hms(2022, 3, 1, 0, 0, 0).unwrap(),
                host: "gpub001".to_owned(),
                pci: PciAddr::for_gpu_index(0),
                kind: ErrorKind::GspError,
                merged_lines: 1,
            },
        ];
        let lifetimes = gpu_lifetimes(&errors, &gpus, &[ErrorKind::GspError], window);
        assert!(!lifetimes[0].observed);
    }
}
