//! GitHub-Markdown renderers for the tables — the format EXPERIMENTS.md
//! and CI summaries consume directly.

use crate::pipeline::StudyReport;
use simtime::Phase;
use std::fmt::Write as _;
use xid::ErrorKind;

fn md_opt(v: Option<f64>, decimals: usize) -> String {
    v.map_or("—".to_owned(), |v| format!("{v:.*}", decimals))
}

/// Table I as a Markdown table.
pub fn table1_md(report: &StudyReport) -> String {
    let s = &report.stats;
    let mut out = String::from(
        "| Code | Event | Pre-op | Op | Op sys MTBE (h) | Op node MTBE (h) |\n|---|---|---|---|---|---|\n",
    );
    let mut row = |code: &str, name: &str, pre: u64, op: u64| {
        let sys = (op > 0).then(|| s.phase_hours(Phase::Op) / op as f64);
        let node = sys.map(|m| m * s.node_count() as f64);
        let _ = writeln!(
            out,
            "| {code} | {name} | {pre} | {op} | {} | {} |",
            md_opt(sys, 1),
            md_opt(node, 0)
        );
    };
    for kind in ErrorKind::STUDIED {
        let codes: Vec<String> = kind.codes().iter().map(u16::to_string).collect();
        row(
            &codes.join("/"),
            kind.abbreviation(),
            s.count(kind, Phase::PreOp),
            s.count(kind, Phase::Op),
        );
    }
    row(
        "—",
        "Uncorrectable ECC Errors",
        s.uncorrectable_count(Phase::PreOp),
        s.uncorrectable_count(Phase::Op),
    );
    row(
        "**Σ**",
        "**total**",
        s.total_count(Phase::PreOp),
        s.total_count(Phase::Op),
    );
    out
}

/// Table II as a Markdown table.
pub fn table2_md(report: &StudyReport) -> String {
    let mut out = String::from(
        "| XID | GPU error | Failed jobs | Encounters | P(fail) |\n|---|---|---|---|---|\n",
    );
    for (kind, impact) in report.impact.kinds() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            kind.primary_code(),
            kind.abbreviation(),
            impact.failed,
            impact.encountered,
            impact
                .failure_probability()
                .map_or("—".to_owned(), |p| format!("{:.2}%", p * 100.0))
        );
    }
    out
}

/// Table III as a Markdown table.
pub fn table3_md(report: &StudyReport) -> String {
    let mut out = String::from(
        "| GPUs | Count | Share | Mean (min) | P50 | P99 | ML kGPUh | non-ML kGPUh |\n|---|---|---|---|---|---|---|---|\n",
    );
    for row in &report.mix {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3}% | {:.2} | {:.2} | {:.2} | {:.1} | {:.1} |",
            row.label,
            row.count,
            row.share_pct,
            row.mean_mins,
            row.p50_mins,
            row.p99_mins,
            row.ml_gpu_hours_k,
            row.non_ml_gpu_hours_k
        );
    }
    out
}

/// The findings checklist as Markdown task-list items.
pub fn findings_md(report: &StudyReport) -> String {
    let findings = crate::findings::Findings::evaluate(report);
    let mut out = String::new();
    for check in findings.checks() {
        let _ = writeln!(
            out,
            "- [{}] {} — {}",
            if check.pass { 'x' } else { ' ' },
            check.id,
            check.detail
        );
    }
    let (pass, total) = findings.score();
    let _ = writeln!(out, "\n**{pass}/{total} findings reproduced**");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use hpclog::{PciAddr, XidEvent};
    use simtime::{Duration, StudyPeriods};
    use xid::XidCode;

    fn report() -> StudyReport {
        let op = StudyPeriods::delta().op.start;
        let events = vec![XidEvent::new(
            op + Duration::from_secs(60),
            "gpub001",
            PciAddr::for_gpu_index(0),
            XidCode::GSP_RPC_TIMEOUT,
            "",
        )];
        Pipeline::delta().run_events(events, None, &[], &[], &[])
    }

    /// Each Markdown row must have the same column count as its header.
    fn assert_rectangular(md: &str) {
        let mut lines = md.lines().filter(|l| l.starts_with('|'));
        let header_cols = lines.next().expect("header").matches('|').count();
        for line in lines {
            assert_eq!(line.matches('|').count(), header_cols, "{line}");
        }
    }

    #[test]
    fn tables_are_rectangular() {
        let r = report();
        for md in [table1_md(&r), table2_md(&r), table3_md(&r)] {
            assert_rectangular(&md);
        }
    }

    #[test]
    fn table1_md_contains_counts_and_total() {
        let md = table1_md(&report());
        assert!(md.contains("| 119/120 | GSP Error | 0 | 1 |"), "{md}");
        assert!(md.contains("**total**"));
        assert!(md.contains("Uncorrectable ECC Errors"));
    }

    #[test]
    fn findings_md_renders_tasklist() {
        let md = findings_md(&report());
        assert!(md.contains("- ["));
        assert!(md.contains("findings reproduced"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        for md in [table1_md(&r), table2_md(&r), table3_md(&r), findings_md(&r)] {
            assert!(!md.is_empty());
        }
    }
}
