//! CSV interchange for job and outage records.
//!
//! The analysis pipeline's real-world inputs arrive as exports — `sacct
//! --parsable`-style job dumps and recovery-tooling outage logs. This
//! module defines a small, documented CSV schema for each and parses it
//! strictly (bad rows are reported with line numbers, not skipped
//! silently — silent data loss is how reliability studies go wrong).
//! For end-to-end runs over untrusted exports, the `_lenient` variants
//! keep every good row and divert bad ones into a
//! [`QuarantineLedger`] instead of aborting.
//!
//! ## Job schema
//!
//! ```text
//! id,name,submit,start,end,gpus,gpu_slots,state
//! 4242,train_resnet,2023-01-05T10:00:00Z,2023-01-05T10:03:00Z,2023-01-05T12:00:00Z,2,gpub042:0;gpub042:1,COMPLETED
//! ```
//!
//! `gpu_slots` is `host:index` pairs joined with `;` (empty for CPU jobs);
//! `state` is a Slurm state label — `COMPLETED` counts as success,
//! anything else as failure.
//!
//! ## Outage schema
//!
//! ```text
//! host,start,duration_secs
//! gpub042,2023-01-05T13:00:00Z,3180
//! ```

use crate::job::{AccountedJob, OutageRecord};
use hpclog::quarantine::{QuarantineCategory, QuarantineLedger};
use simtime::{Duration, Timestamp};
use std::error::Error;
use std::fmt;

/// Error returned when a CSV export cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    line: usize,
    what: String,
}

impl CsvError {
    pub(crate) fn new(line: usize, what: impl Into<String>) -> Self {
        CsvError {
            line,
            what: what.into(),
        }
    }

    /// The 1-based line number the error was found on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.what)
    }
}

impl Error for CsvError {}

/// The job CSV header.
pub const JOB_HEADER: &str = "id,name,submit,start,end,gpus,gpu_slots,state";

/// The outage CSV header.
pub const OUTAGE_HEADER: &str = "host,start,duration_secs";

/// Parses a job export. The first line must be [`JOB_HEADER`].
///
/// # Errors
///
/// Returns [`CsvError`] naming the offending line on any malformed row.
pub fn parse_jobs(text: &str) -> Result<Vec<AccountedJob>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == JOB_HEADER => {}
        Some((_, header)) => {
            return Err(CsvError::new(
                1,
                format!("expected header {JOB_HEADER:?}, got {header:?}"),
            ))
        }
        None => return Err(CsvError::new(1, "empty input")),
    }
    let mut jobs = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        jobs.push(parse_job_row(raw, line_no)?);
    }
    Ok(jobs)
}

pub(crate) fn parse_job_row(raw: &str, line_no: usize) -> Result<AccountedJob, CsvError> {
    let fields: Vec<&str> = raw.split(',').collect();
    if fields.len() != 8 {
        return Err(CsvError::new(
            line_no,
            format!("expected 8 fields, got {}", fields.len()),
        ));
    }
    let id: u64 = fields[0]
        .parse()
        .map_err(|_| CsvError::new(line_no, format!("bad id {:?}", fields[0])))?;
    let time = |s: &str, what: &str| {
        s.parse::<Timestamp>()
            .map_err(|e| CsvError::new(line_no, format!("bad {what}: {e}")))
    };
    let submit = time(fields[2], "submit")?;
    let start = time(fields[3], "start")?;
    let end = time(fields[4], "end")?;
    if end < start || start < submit {
        return Err(CsvError::new(
            line_no,
            "times must satisfy submit <= start <= end",
        ));
    }
    let gpus: u32 = fields[5]
        .parse()
        .map_err(|_| CsvError::new(line_no, format!("bad gpus {:?}", fields[5])))?;
    let gpu_slots = parse_slots(fields[6], line_no)?;
    Ok(AccountedJob {
        id,
        name: fields[1].to_owned(),
        submit,
        start,
        end,
        gpus,
        gpu_slots,
        completed: fields[7].trim() == "COMPLETED",
    })
}

fn parse_slots(field: &str, line_no: usize) -> Result<Vec<(String, u8)>, CsvError> {
    if field.trim().is_empty() {
        return Ok(Vec::new());
    }
    field
        .split(';')
        .map(|pair| {
            let (host, idx) = pair
                .split_once(':')
                .ok_or_else(|| CsvError::new(line_no, format!("bad gpu slot {pair:?}")))?;
            let idx: u8 = idx
                .parse()
                .map_err(|_| CsvError::new(line_no, format!("bad gpu index in {pair:?}")))?;
            Ok((host.to_owned(), idx))
        })
        .collect()
}

/// Renders jobs in the [`JOB_HEADER`] schema (the inverse of
/// [`parse_jobs`]).
pub fn render_jobs(jobs: &[AccountedJob]) -> String {
    let mut out = String::from(JOB_HEADER);
    out.push('\n');
    for j in jobs {
        let slots: Vec<String> = j
            .gpu_slots
            .iter()
            .map(|(h, i)| format!("{h}:{i}"))
            .collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            j.id,
            j.name,
            j.submit,
            j.start,
            j.end,
            j.gpus,
            slots.join(";"),
            if j.completed { "COMPLETED" } else { "FAILED" }
        ));
    }
    out
}

/// Parses an outage export. The first line must be [`OUTAGE_HEADER`].
///
/// # Errors
///
/// Returns [`CsvError`] naming the offending line on any malformed row.
pub fn parse_outages(text: &str) -> Result<Vec<OutageRecord>, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == OUTAGE_HEADER => {}
        Some((_, header)) => {
            return Err(CsvError::new(
                1,
                format!("expected header {OUTAGE_HEADER:?}, got {header:?}"),
            ))
        }
        None => return Err(CsvError::new(1, "empty input")),
    }
    let mut outages = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        outages.push(parse_outage_row(raw, line_no)?);
    }
    Ok(outages)
}

pub(crate) fn parse_outage_row(raw: &str, line_no: usize) -> Result<OutageRecord, CsvError> {
    let fields: Vec<&str> = raw.split(',').collect();
    if fields.len() != 3 {
        return Err(CsvError::new(
            line_no,
            format!("expected 3 fields, got {}", fields.len()),
        ));
    }
    let start = fields[1]
        .parse::<Timestamp>()
        .map_err(|e| CsvError::new(line_no, format!("bad start: {e}")))?;
    let secs: u64 = fields[2]
        .trim()
        .parse()
        .map_err(|_| CsvError::new(line_no, format!("bad duration {:?}", fields[2])))?;
    Ok(OutageRecord {
        host: fields[0].to_owned(),
        start,
        duration: Duration::from_secs(secs),
    })
}

/// Parses a job export like [`parse_jobs`], but never fails: rows that do
/// not parse (and a wrong or missing header) are recorded in `ledger`
/// under [`QuarantineCategory::BadRecord`] and skipped, and every row that
/// does parse is kept.
pub fn parse_jobs_lenient(text: &str, ledger: &mut QuarantineLedger) -> Vec<AccountedJob> {
    parse_rows_lenient(text, JOB_HEADER, ledger, parse_job_row)
}

/// Parses an outage export like [`parse_outages`], but never fails; see
/// [`parse_jobs_lenient`] for the reject semantics.
pub fn parse_outages_lenient(text: &str, ledger: &mut QuarantineLedger) -> Vec<OutageRecord> {
    parse_rows_lenient(text, OUTAGE_HEADER, ledger, parse_outage_row)
}

fn parse_rows_lenient<T>(
    text: &str,
    header: &str,
    ledger: &mut QuarantineLedger,
    parse_row: fn(&str, usize) -> Result<T, CsvError>,
) -> Vec<T> {
    let mut lines = text.lines().enumerate().peekable();
    match lines.peek() {
        Some((_, first)) if first.trim() == header => {
            lines.next();
        }
        Some((_, first)) => {
            // A wrong header is itself a bad record, but the rows below it
            // may still be sound — keep going.
            ledger.record(QuarantineCategory::BadRecord, 1, first.as_bytes());
            lines.next();
        }
        None => return Vec::new(),
    }
    let mut records = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        match parse_row(raw, line_no) {
            Ok(record) => records.push(record),
            Err(_) => ledger.record(
                QuarantineCategory::BadRecord,
                line_no as u64,
                raw.as_bytes(),
            ),
        }
    }
    records
}

/// Renders outages in the [`OUTAGE_HEADER`] schema.
pub fn render_outages(outages: &[OutageRecord]) -> String {
    let mut out = String::from(OUTAGE_HEADER);
    out.push('\n');
    for o in outages {
        out.push_str(&format!(
            "{},{},{}\n",
            o.host,
            o.start,
            o.duration.as_secs()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> AccountedJob {
        AccountedJob {
            id: 42,
            name: "train_resnet".to_owned(),
            submit: Timestamp::from_ymd_hms(2023, 1, 5, 10, 0, 0).unwrap(),
            start: Timestamp::from_ymd_hms(2023, 1, 5, 10, 3, 0).unwrap(),
            end: Timestamp::from_ymd_hms(2023, 1, 5, 12, 0, 0).unwrap(),
            gpus: 2,
            gpu_slots: vec![("gpub042".to_owned(), 0), ("gpub042".to_owned(), 1)],
            completed: true,
        }
    }

    #[test]
    fn job_roundtrip() {
        let jobs = vec![
            sample_job(),
            AccountedJob {
                id: 43,
                gpus: 0,
                gpu_slots: Vec::new(),
                completed: false,
                ..sample_job()
            },
        ];
        let csv = render_jobs(&jobs);
        let back = parse_jobs(&csv).unwrap();
        assert_eq!(back, jobs);
    }

    #[test]
    fn outage_roundtrip() {
        let outages = vec![OutageRecord {
            host: "gpub042".to_owned(),
            start: Timestamp::from_ymd_hms(2023, 1, 5, 13, 0, 0).unwrap(),
            duration: Duration::from_secs(3180),
        }];
        let csv = render_outages(&outages);
        assert_eq!(parse_outages(&csv).unwrap(), outages);
    }

    #[test]
    fn job_errors_carry_line_numbers() {
        let bad_header = parse_jobs("wrong\n").unwrap_err();
        assert_eq!(bad_header.line(), 1);

        let csv = format!(
            "{JOB_HEADER}\n1,a,notatime,2023-01-05T10:03:00Z,2023-01-05T12:00:00Z,1,,COMPLETED\n"
        );
        let err = parse_jobs(&csv).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("submit"), "{err}");
    }

    #[test]
    fn job_field_count_checked() {
        let csv = format!("{JOB_HEADER}\n1,a,b\n");
        let err = parse_jobs(&csv).unwrap_err();
        assert!(err.to_string().contains("8 fields"), "{err}");
    }

    #[test]
    fn job_time_ordering_checked() {
        let csv = format!(
            "{JOB_HEADER}\n1,a,2023-01-05T10:00:00Z,2023-01-05T09:00:00Z,2023-01-05T12:00:00Z,1,,FAILED\n"
        );
        let err = parse_jobs(&csv).unwrap_err();
        assert!(err.to_string().contains("submit <= start"), "{err}");
    }

    #[test]
    fn bad_slots_rejected() {
        let csv = format!(
            "{JOB_HEADER}\n1,a,2023-01-05T10:00:00Z,2023-01-05T10:00:00Z,2023-01-05T12:00:00Z,1,gpub042,FAILED\n"
        );
        assert!(parse_jobs(&csv).is_err());
        let csv = format!(
            "{JOB_HEADER}\n1,a,2023-01-05T10:00:00Z,2023-01-05T10:00:00Z,2023-01-05T12:00:00Z,1,gpub042:x,FAILED\n"
        );
        assert!(parse_jobs(&csv).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = format!("{JOB_HEADER}\n\n\n");
        assert!(parse_jobs(&csv).unwrap().is_empty());
        let csv = format!("{OUTAGE_HEADER}\n\n");
        assert!(parse_outages(&csv).unwrap().is_empty());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_jobs("").is_err());
        assert!(parse_outages("").is_err());
    }

    #[test]
    fn outage_errors_carry_line_numbers() {
        let csv = format!("{OUTAGE_HEADER}\ngpub001,2023-01-05T13:00:00Z,abc\n");
        let err = parse_outages(&csv).unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn lenient_keeps_good_rows_and_quarantines_bad() {
        let good = "42,train_resnet,2023-01-05T10:00:00Z,2023-01-05T10:03:00Z,2023-01-05T12:00:00Z,2,gpub042:0;gpub042:1,COMPLETED";
        let csv = format!("{JOB_HEADER}\n{good}\nnot,a,row\n{good}\n");
        let mut ledger = QuarantineLedger::new();
        let jobs = parse_jobs_lenient(&csv, &mut ledger);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs, vec![sample_job(), sample_job()]);
        assert_eq!(ledger.counts().get(QuarantineCategory::BadRecord), 1);
        // The exemplar points at the offending physical line.
        assert_eq!(ledger.exemplars()[0].line_no, 3);
    }

    #[test]
    fn lenient_flags_wrong_header_but_still_reads_rows() {
        let csv = "bogus header\ngpub001,2023-01-05T13:00:00Z,600\n";
        let mut ledger = QuarantineLedger::new();
        let outages = parse_outages_lenient(csv, &mut ledger);
        assert_eq!(outages.len(), 1);
        assert_eq!(ledger.counts().get(QuarantineCategory::BadRecord), 1);
    }

    #[test]
    fn lenient_empty_input_is_empty_not_an_error() {
        let mut ledger = QuarantineLedger::new();
        assert!(parse_jobs_lenient("", &mut ledger).is_empty());
        assert!(parse_outages_lenient("", &mut ledger).is_empty());
        assert!(ledger.is_empty());
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let jobs = vec![sample_job()];
        let csv = render_jobs(&jobs);
        let mut ledger = QuarantineLedger::new();
        assert_eq!(
            parse_jobs_lenient(&csv, &mut ledger),
            parse_jobs(&csv).unwrap()
        );
        assert!(ledger.is_empty());
    }

    #[test]
    fn non_completed_states_are_failures() {
        for state in ["FAILED", "CANCELLED", "TIMEOUT", "NODE_FAIL"] {
            let csv = format!(
                "{JOB_HEADER}\n1,a,2023-01-05T10:00:00Z,2023-01-05T10:00:00Z,2023-01-05T12:00:00Z,1,,{state}\n"
            );
            assert!(!parse_jobs(&csv).unwrap()[0].completed, "{state}");
        }
    }
}
