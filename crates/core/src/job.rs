//! Input record types: sacct-style job records and outage records.
//!
//! The pipeline deliberately defines its *own* input types rather than
//! importing a scheduler's: the paper's analysis consumed a Slurm
//! accounting database export, and any data source that can produce these
//! plain records — the bundled `slurmsim` simulator, a real `sacct` dump, a
//! CSV — can feed the pipeline.

use simtime::{Duration, Timestamp};
use std::fmt;

/// One accounted job, as the Slurm database records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountedJob {
    /// Scheduler job id.
    pub id: u64,
    /// User-visible job name (basis of the ML-workload heuristic).
    pub name: String,
    /// Submission time.
    pub submit: Timestamp,
    /// Start time.
    pub start: Timestamp,
    /// End time.
    pub end: Timestamp,
    /// Number of GPUs allocated (0 = CPU job).
    pub gpus: u32,
    /// Allocated GPU devices as `(hostname, device index)` pairs, from the
    /// GRES bindings.
    pub gpu_slots: Vec<(String, u8)>,
    /// Whether the job completed successfully (exit 0).
    pub completed: bool,
}

impl AccountedJob {
    /// Elapsed wall-clock runtime.
    pub fn elapsed(&self) -> Duration {
        self.end - self.start
    }

    /// GPU-hours consumed.
    pub fn gpu_hours(&self) -> f64 {
        self.gpus as f64 * self.elapsed().as_hours_f64()
    }

    /// Whether the job was running at `t` (half-open `[start, end)`).
    pub fn running_at(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the job held the GPU `(host, index)`.
    pub fn uses_gpu(&self, host: &str, index: u8) -> bool {
        self.gpu_slots.iter().any(|(h, i)| h == host && *i == index)
    }

    /// The §V-A machine-learning heuristic: job names containing
    /// ML-indicative keywords are classed as ML workloads. The paper uses
    /// exactly this approximation because submission scripts were not
    /// available for inspection.
    pub fn is_ml(&self) -> bool {
        is_ml_name(&self.name)
    }
}

impl fmt::Display for AccountedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job#{} {} gpus={} {} elapsed={}",
            self.id,
            self.name,
            self.gpus,
            if self.completed {
                "COMPLETED"
            } else {
                "FAILED"
            },
            self.elapsed()
        )
    }
}

/// The §V-A keyword heuristic, usable on bare names.
pub fn is_ml_name(name: &str) -> bool {
    const KEYWORDS: [&str; 12] = [
        "train",
        "model",
        "bert",
        "resnet",
        "llm",
        "gpt",
        "finetune",
        "epoch",
        "torch",
        "tensorflow",
        "diffusion",
        "inference",
    ];
    let name = name.to_ascii_lowercase();
    KEYWORDS.iter().any(|k| name.contains(k))
}

/// One node outage (drain/reboot episode), as the recovery tooling logs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageRecord {
    /// Hostname of the affected node.
    pub host: String,
    /// When the node left service.
    pub start: Timestamp,
    /// How long it stayed out.
    pub duration: Duration,
}

impl OutageRecord {
    /// The outage duration in fractional hours.
    pub fn hours(&self) -> f64 {
        self.duration.as_hours_f64()
    }
}

impl fmt::Display for OutageRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} down {} from {}",
            self.host, self.duration, self.start
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str) -> AccountedJob {
        AccountedJob {
            id: 1,
            name: name.to_owned(),
            submit: Timestamp::from_unix(0),
            start: Timestamp::from_unix(100),
            end: Timestamp::from_unix(3700),
            gpus: 2,
            gpu_slots: vec![("gpub042".to_owned(), 0), ("gpub042".to_owned(), 1)],
            completed: true,
        }
    }

    #[test]
    fn elapsed_and_gpu_hours() {
        let j = job("x");
        assert_eq!(j.elapsed(), Duration::from_secs(3600));
        assert!((j.gpu_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_at_half_open() {
        let j = job("x");
        assert!(!j.running_at(Timestamp::from_unix(99)));
        assert!(j.running_at(Timestamp::from_unix(100)));
        assert!(!j.running_at(Timestamp::from_unix(3700)));
    }

    #[test]
    fn gpu_slot_lookup() {
        let j = job("x");
        assert!(j.uses_gpu("gpub042", 0));
        assert!(j.uses_gpu("gpub042", 1));
        assert!(!j.uses_gpu("gpub042", 2));
        assert!(!j.uses_gpu("gpub043", 0));
    }

    #[test]
    fn ml_heuristic() {
        assert!(is_ml_name("train_resnet50_v2"));
        assert!(is_ml_name("MODEL-eval"));
        assert!(is_ml_name("llm_inference"));
        assert!(!is_ml_name("namd_apoa1"));
        assert!(!is_ml_name("cfd_solver"));
        assert!(job("bert_finetune").is_ml());
    }

    #[test]
    fn outage_hours() {
        let o = OutageRecord {
            host: "gpub001".to_owned(),
            start: Timestamp::from_unix(0),
            duration: Duration::from_mins(53),
        };
        assert!((o.hours() - 53.0 / 60.0).abs() < 1e-12);
        assert!(o.to_string().contains("gpub001"));
    }
}
