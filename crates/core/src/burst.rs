//! Burstiness and episode analysis of error inter-arrival times.
//!
//! §IV of the paper repeatedly observes that errors cluster — the GSP
//! flapping that reconciles its Tables I and II, the NVLink defective-link
//! episodes, the 17-day storm. This module recovers that structure *from
//! the coalesced error stream alone*: per-key inter-arrival statistics,
//! the coefficient of variation (CoV > 1 ⇒ burstier than Poisson), and an
//! episode detector that groups consecutive same-GPU same-kind errors
//! whose gaps stay below a threshold.

use crate::coalesce::CoalescedError;
use hpclog::PciAddr;
use simtime::{Duration, Timestamp};
use std::collections::HashMap;
use xid::ErrorKind;

/// Inter-arrival statistics for one error kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterArrival {
    /// Number of gaps measured (errors − distinct keys).
    pub gaps: usize,
    /// Mean gap in hours.
    pub mean_hours: f64,
    /// Standard deviation of gaps in hours.
    pub std_hours: f64,
}

impl InterArrival {
    /// Coefficient of variation: `std / mean`. A Poisson process has
    /// CoV = 1; CoV ≫ 1 marks bursty, episodic error behaviour. `None`
    /// when there are no gaps or the mean is zero.
    pub fn cov(&self) -> Option<f64> {
        if self.gaps == 0 || self.mean_hours == 0.0 {
            None
        } else {
            Some(self.std_hours / self.mean_hours)
        }
    }
}

/// Computes per-GPU inter-arrival statistics for `kind` (gaps measured
/// between consecutive errors of the kind on the *same* GPU — cross-GPU
/// gaps say nothing about device burstiness).
pub fn inter_arrivals(errors: &[CoalescedError], kind: ErrorKind) -> InterArrival {
    let mut per_gpu: HashMap<(&str, PciAddr), Vec<Timestamp>> = HashMap::new();
    for e in errors.iter().filter(|e| e.kind == kind) {
        per_gpu
            .entry((e.host.as_str(), e.pci))
            .or_default()
            .push(e.time);
    }
    let mut gaps_h: Vec<f64> = Vec::new();
    for times in per_gpu.values_mut() {
        times.sort();
        for pair in times.windows(2) {
            gaps_h.push((pair[1] - pair[0]).as_hours_f64());
        }
    }
    let n = gaps_h.len();
    if n == 0 {
        return InterArrival {
            gaps: 0,
            mean_hours: 0.0,
            std_hours: 0.0,
        };
    }
    let mean = gaps_h.iter().sum::<f64>() / n as f64;
    let var = gaps_h.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
    InterArrival {
        gaps: n,
        mean_hours: mean,
        std_hours: var.sqrt(),
    }
}

/// One detected episode: a run of same-GPU, same-kind errors with every
/// consecutive gap below the detection threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// Hostname.
    pub host: String,
    /// GPU.
    pub pci: PciAddr,
    /// Error kind.
    pub kind: ErrorKind,
    /// First error time.
    pub start: Timestamp,
    /// Last error time.
    pub end: Timestamp,
    /// Errors in the episode.
    pub errors: u64,
}

impl Episode {
    /// Episode length.
    pub fn length(&self) -> Duration {
        self.end - self.start
    }
}

/// Groups errors into episodes: consecutive same-key errors whose gaps are
/// at most `max_gap`. Singleton episodes (one error) are included, so
/// `episodes.iter().map(|e| e.errors).sum()` equals the error count.
pub fn detect_episodes(errors: &[CoalescedError], max_gap: Duration) -> Vec<Episode> {
    let mut per_key: HashMap<(&str, PciAddr, ErrorKind), Vec<Timestamp>> = HashMap::new();
    for e in errors {
        per_key
            .entry((e.host.as_str(), e.pci, e.kind))
            .or_default()
            .push(e.time);
    }
    let mut episodes = Vec::new();
    for ((host, pci, kind), mut times) in per_key {
        times.sort();
        let mut start = times[0];
        let mut prev = times[0];
        let mut count = 1u64;
        for &t in &times[1..] {
            if t - prev <= max_gap {
                count += 1;
            } else {
                episodes.push(Episode {
                    host: host.to_owned(),
                    pci,
                    kind,
                    start,
                    end: prev,
                    errors: count,
                });
                start = t;
                count = 1;
            }
            prev = t;
        }
        episodes.push(Episode {
            host: host.to_owned(),
            pci,
            kind,
            start,
            end: prev,
            errors: count,
        });
    }
    episodes.sort_by(|a, b| (a.start, &a.host, a.pci).cmp(&(b.start, &b.host, b.pci)));
    episodes
}

/// Summary of an episode detection pass for one kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeSummary {
    /// Episodes found.
    pub episodes: usize,
    /// Total errors covered.
    pub errors: u64,
    /// Mean errors per episode.
    pub mean_size: f64,
    /// Largest episode size.
    pub max_size: u64,
    /// Longest episode length in hours.
    pub max_length_hours: f64,
}

/// Summarises the episodes of one kind.
pub fn summarize_episodes(episodes: &[Episode], kind: ErrorKind) -> EpisodeSummary {
    let of_kind: Vec<&Episode> = episodes.iter().filter(|e| e.kind == kind).collect();
    let errors: u64 = of_kind.iter().map(|e| e.errors).sum();
    EpisodeSummary {
        episodes: of_kind.len(),
        errors,
        mean_size: if of_kind.is_empty() {
            0.0
        } else {
            errors as f64 / of_kind.len() as f64
        },
        max_size: of_kind.iter().map(|e| e.errors).max().unwrap_or(0),
        max_length_hours: of_kind
            .iter()
            .map(|e| e.length().as_hours_f64())
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(host: &str, gpu: u8, kind: ErrorKind, secs: u64) -> CoalescedError {
        CoalescedError {
            time: Timestamp::from_unix(1_700_000_000 + secs),
            host: host.to_owned(),
            pci: PciAddr::for_gpu_index(gpu),
            kind,
            merged_lines: 1,
        }
    }

    #[test]
    fn regular_process_has_low_cov() {
        // Perfectly periodic gaps: CoV = 0.
        let errors: Vec<_> = (0..20)
            .map(|i| err("n1", 0, ErrorKind::MmuError, i * 3600))
            .collect();
        let ia = inter_arrivals(&errors, ErrorKind::MmuError);
        assert_eq!(ia.gaps, 19);
        assert!((ia.mean_hours - 1.0).abs() < 1e-9);
        assert!(ia.cov().unwrap() < 1e-9);
    }

    #[test]
    fn bursty_process_has_high_cov() {
        // Two tight bursts a week apart.
        let mut errors: Vec<_> = (0..10)
            .map(|i| err("n1", 0, ErrorKind::GspError, i * 60))
            .collect();
        errors.extend((0..10).map(|i| err("n1", 0, ErrorKind::GspError, 604_800 + i * 60)));
        let ia = inter_arrivals(&errors, ErrorKind::GspError);
        assert!(ia.cov().unwrap() > 2.0, "cov {:?}", ia.cov());
    }

    #[test]
    fn gaps_never_cross_gpus() {
        // One error on each of 5 GPUs: no gaps at all.
        let errors: Vec<_> = (0..5)
            .map(|g| err("n1", g, ErrorKind::MmuError, g as u64))
            .collect();
        let ia = inter_arrivals(&errors, ErrorKind::MmuError);
        assert_eq!(ia.gaps, 0);
        assert_eq!(ia.cov(), None);
    }

    #[test]
    fn episode_detection_groups_and_conserves() {
        // GPU 0: burst of 3 (gaps 60 s), lull, burst of 2. GPU 1: singleton.
        let errors = vec![
            err("n1", 0, ErrorKind::GspError, 0),
            err("n1", 0, ErrorKind::GspError, 60),
            err("n1", 0, ErrorKind::GspError, 120),
            err("n1", 0, ErrorKind::GspError, 100_000),
            err("n1", 0, ErrorKind::GspError, 100_060),
            err("n1", 1, ErrorKind::GspError, 50),
        ];
        let episodes = detect_episodes(&errors, Duration::from_hours(1));
        assert_eq!(episodes.len(), 3);
        let total: u64 = episodes.iter().map(|e| e.errors).sum();
        assert_eq!(total, 6);
        let summary = summarize_episodes(&episodes, ErrorKind::GspError);
        assert_eq!(summary.episodes, 3);
        assert_eq!(summary.max_size, 3);
        assert!((summary.mean_size - 2.0).abs() < 1e-12);
    }

    #[test]
    fn episode_boundaries_respect_gap_threshold() {
        let errors = vec![
            err("n1", 0, ErrorKind::NvlinkError, 0),
            err("n1", 0, ErrorKind::NvlinkError, 3601), // just over 1 h
        ];
        let split = detect_episodes(&errors, Duration::from_hours(1));
        assert_eq!(split.len(), 2);
        let joined = detect_episodes(&errors, Duration::from_secs(3601));
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].errors, 2);
        assert_eq!(joined[0].length(), Duration::from_secs(3601));
    }

    #[test]
    fn different_kinds_never_share_episodes() {
        let errors = vec![
            err("n1", 0, ErrorKind::GspError, 0),
            err("n1", 0, ErrorKind::MmuError, 10),
        ];
        let episodes = detect_episodes(&errors, Duration::from_hours(1));
        assert_eq!(episodes.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(detect_episodes(&[], Duration::from_hours(1)).is_empty());
        let ia = inter_arrivals(&[], ErrorKind::GspError);
        assert_eq!(ia.gaps, 0);
        let summary = summarize_episodes(&[], ErrorKind::GspError);
        assert_eq!(summary.episodes, 0);
        assert_eq!(summary.mean_size, 0.0);
    }
}
