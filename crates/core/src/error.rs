//! The workspace error taxonomy for the strict ingestion paths.
//!
//! Strict pipeline entry points ([`crate::Pipeline::run_csv`] and friends)
//! fail fast on the first defect, but they fail with *structure*: a
//! [`PipelineError`] says which input stream broke and why, instead of a
//! stringly `Box<dyn Error>` the caller can only print. The lenient paths
//! ([`crate::Pipeline::run_lenient`]) never return these at all — defects
//! land in a quarantine ledger instead.

use crate::csvio::CsvError;
use hpclog::ParseLogLineError;
use std::error::Error;
use std::fmt;
use std::io;

/// Which CSV export an error was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsvInput {
    /// The GPU-job accounting export.
    GpuJobs,
    /// The CPU-job accounting export.
    CpuJobs,
    /// The node-outage export.
    Outages,
}

impl fmt::Display for CsvInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CsvInput::GpuJobs => "gpu-jobs",
            CsvInput::CpuJobs => "cpu-jobs",
            CsvInput::Outages => "outages",
        })
    }
}

/// A failure on a strict ingestion path, tagged with the input it came
/// from.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Reading the log stream failed.
    Io(io::Error),
    /// A CSV export was malformed.
    Csv {
        /// Which export the bad row was in.
        input: CsvInput,
        /// The row-level parse error (carries the line number).
        source: CsvError,
    },
    /// A syslog line failed to parse on a strict single-line path.
    Log(ParseLogLineError),
}

impl PipelineError {
    /// Wraps a CSV error with the input it was found in.
    pub fn csv(input: CsvInput, source: CsvError) -> Self {
        PipelineError::Csv { input, source }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "log stream I/O error: {e}"),
            PipelineError::Csv { input, source } => {
                write!(f, "{input} export: {source}")
            }
            PipelineError::Log(e) => write!(f, "log line: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Io(e) => Some(e),
            PipelineError::Csv { source, .. } => Some(source),
            PipelineError::Log(e) => Some(e),
        }
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

impl From<ParseLogLineError> for PipelineError {
    fn from(e: ParseLogLineError) -> Self {
        PipelineError::Log(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_input() {
        let err = PipelineError::csv(
            CsvInput::Outages,
            crate::csvio::CsvError::new(7, "bad duration"),
        );
        let text = err.to_string();
        assert!(text.contains("outages"), "{text}");
        assert!(text.contains("line 7"), "{text}");
        assert!(err.source().is_some());
    }

    #[test]
    fn io_errors_convert() {
        let err: PipelineError = io::Error::other("gone").into();
        assert!(matches!(err, PipelineError::Io(_)));
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn log_errors_convert() {
        let parse = hpclog::LogLine::parse_with_year("", 2024).unwrap_err();
        let err: PipelineError = parse.into();
        assert!(matches!(err, PipelineError::Log(_)));
    }
}
