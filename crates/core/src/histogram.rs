//! Fixed-bin histograms and percentile utilities.

use std::fmt;

/// A histogram over `f64` values with uniform bins on `[lo, hi)` plus an
/// overflow bin.
///
/// # Example
///
/// ```
/// use resilience::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 5.0, 5);
/// for x in [0.5, 1.5, 1.7, 9.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[1], 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    overflow: u64,
    underflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo < hi && bins > 0,
            "invalid histogram shape [{lo}, {hi}) x {bins}"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            overflow: 0,
            underflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let width = (self.hi - self.lo) / n as f64;
            let idx = (((x - self.lo) / width) as usize).min(n - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (including out-of-range), `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// The `[start, end)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Bin fractions (of all observations), empty histogram gives zeros.
    pub fn fractions(&self) -> Vec<f64> {
        let n = self.count.max(1) as f64;
        self.bins.iter().map(|&c| c as f64 / n).collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            let bar = "#".repeat((c * 50 / max) as usize);
            writeln!(f, "[{a:8.2}, {b:8.2})  {c:>8}  {bar}")?;
        }
        if self.overflow > 0 {
            writeln!(f, "[{:8.2},      inf)  {:>8}", self.hi, self.overflow)?;
        }
        Ok(())
    }
}

/// The `p`-th percentile (0–100) of a sample, by linear interpolation on
/// the sorted order statistics; `None` on an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, p))
}

/// [`percentile`] over an already-sorted slice (ascending), with no
/// allocation. Useful when many percentiles are taken from one sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the slice is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    assert!(!sorted.is_empty(), "percentile of empty sample");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Mean of a sample, `None` if empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert!(h.bin_counts().iter().all(|&c| c == 1));
        assert_eq!(h.count(), 10);
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.0);
        h.add(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn boundary_goes_to_upper_bin() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(1.0);
        assert_eq!(h.bin_counts(), &[0, 1]);
    }

    #[test]
    fn edges_and_fractions() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 1.0));
        assert_eq!(h.bin_edges(3), (3.0, 4.0));
        h.add(0.5);
        h.add(0.6);
        h.add(2.5);
        h.add(9.0);
        let f = h.fractions();
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid histogram shape")]
    fn bad_shape_panics() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn display_renders_rows() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(3.0);
        let s = h.to_string();
        assert!(s.contains('#'));
        assert!(s.contains("inf"));
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 75.0), Some(7.5));
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 50.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
