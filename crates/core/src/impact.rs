//! Job-impact analysis — §V: correlating GPU errors with job failures
//! (Table II) and characterizing the workload mix (Table III).
//!
//! **Encounter**: a job encounters an error if the error fires on a GPU the
//! job holds, while the job is running.
//!
//! **Attribution**: an encountered error is attributed as a potential
//! failure cause if the job terminates unsuccessfully within the
//! attribution window (20 seconds in the paper) after the error. Multiple
//! error kinds near one termination are all attributed, exactly as §V-B
//! describes.

use crate::coalesce::CoalescedError;
use crate::histogram::{mean, percentile_sorted};
use crate::job::AccountedJob;
use simtime::{Duration, Timestamp};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xid::ErrorKind;

/// The paper's attribution window between an error and a job failure.
pub const ATTRIBUTION_WINDOW: Duration = Duration::from_secs(20);

/// Encounter/failure tallies for one error kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindImpact {
    /// Distinct jobs that encountered this kind.
    pub encountered: u64,
    /// Of those, jobs whose failure was attributed to it.
    pub failed: u64,
}

impl KindImpact {
    /// P(job failure | job encountered this kind), `None` if never
    /// encountered — the Table II column.
    pub fn failure_probability(&self) -> Option<f64> {
        if self.encountered == 0 {
            None
        } else {
            Some(self.failed as f64 / self.encountered as f64)
        }
    }
}

/// The Table II analysis result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobImpact {
    per_kind: BTreeMap<ErrorKind, KindImpact>,
    gpu_failed_jobs: u64,
    /// Distinct GPU-failed jobs as `(termination instant, job id)`,
    /// ascending by job id — the impact rollup buckets these.
    failed_ends: Vec<(Timestamp, u64)>,
    /// One entry per attributed `(kind, job)` pair as
    /// `(termination instant, kind, job id)`, kind-major order.
    attributions: Vec<(Timestamp, ErrorKind, u64)>,
}

impl JobImpact {
    /// Joins jobs against coalesced errors with the given attribution
    /// window.
    ///
    /// GPU allocations are exclusive on Delta, so at most one job holds a
    /// GPU at any instant; the join indexes jobs by GPU slot and binary-
    /// searches by time, making the whole pass `O((J + E) log J)`.
    pub fn compute(jobs: &[AccountedJob], errors: &[CoalescedError], window: Duration) -> Self {
        // (host, gpu index) -> jobs sorted by start time.
        let mut slots: HashMap<(&str, u8), Vec<usize>> = HashMap::new();
        for (idx, job) in jobs.iter().enumerate() {
            for (host, gpu) in &job.gpu_slots {
                slots.entry((host.as_str(), *gpu)).or_default().push(idx);
            }
        }
        for list in slots.values_mut() {
            list.sort_by_key(|&i| jobs[i].start);
        }

        let mut enc_events: Vec<(ErrorKind, u64)> = Vec::new();
        let mut fail_events: Vec<(ErrorKind, u64, Timestamp)> = Vec::new();
        for err in errors {
            let Some(gpu_index) = err.gpu_index() else {
                continue;
            };
            let Some(list) = slots.get(&(err.host.as_str(), gpu_index)) else {
                continue;
            };
            // Candidates hold the GPU over (start, end] — *inclusive* of
            // the end instant and *exclusive* of the start instant: a job
            // killed by this very error terminates exactly at the error
            // time (the paper's window is "error preceding the failure"),
            // while a job that started in the same second as the error is
            // a successor backfilled onto the freed GPU and never saw it.
            // Allocations are exclusive, so walking back from the last
            // start < t visits at most the incumbent plus a predecessor
            // that ended exactly at t.
            let pos = list.partition_point(|&i| jobs[i].start < err.time);
            let mut idx = pos;
            while idx > 0 {
                idx -= 1;
                let job = &jobs[list[idx]];
                if job.end < err.time {
                    break;
                }
                enc_events.push((err.kind, job.id));
                if !job.completed && job.end - err.time <= window {
                    fail_events.push((err.kind, job.id, job.end));
                }
            }
        }

        // The Table II tallies are instantiations of the shared
        // aggregation kernel: group the encounter/attribution event
        // streams by kind, folding distinct job sets. The attribution
        // fold keeps each job's termination instant so the rollup layer
        // can re-bucket the same events by civil time.
        let encountered: BTreeMap<ErrorKind, BTreeSet<u64>> = crate::rollup::group_fold(
            enc_events,
            |&(kind, _)| Some(kind),
            |jobs: &mut BTreeSet<u64>, (_, id)| {
                jobs.insert(id);
            },
        );
        let failed: BTreeMap<ErrorKind, BTreeMap<u64, Timestamp>> = crate::rollup::group_fold(
            fail_events.iter().copied(),
            |&(kind, _, _)| Some(kind),
            |jobs: &mut BTreeMap<u64, Timestamp>, (_, id, end)| {
                jobs.insert(id, end);
            },
        );
        let mut gpu_failed: BTreeMap<u64, Timestamp> = BTreeMap::new();
        for &(_, id, end) in &fail_events {
            gpu_failed.insert(id, end);
        }

        let kinds: BTreeSet<ErrorKind> = encountered.keys().chain(failed.keys()).copied().collect();
        let per_kind = kinds
            .into_iter()
            .map(|k| {
                (
                    k,
                    KindImpact {
                        encountered: encountered.get(&k).map_or(0, BTreeSet::len) as u64,
                        failed: failed.get(&k).map_or(0, BTreeMap::len) as u64,
                    },
                )
            })
            .collect();
        if obs::is_enabled() {
            obs::counter("core_attribution_window_hits_total", &[]).add(gpu_failed.len() as u64);
        }
        let attributions = failed
            .iter()
            .flat_map(|(&kind, jobs)| jobs.iter().map(move |(&id, &end)| (end, kind, id)))
            .collect();
        JobImpact {
            per_kind,
            gpu_failed_jobs: gpu_failed.len() as u64,
            failed_ends: gpu_failed.iter().map(|(&id, &end)| (end, id)).collect(),
            attributions,
        }
    }

    /// Tallies for one kind (zeroes if never observed).
    pub fn kind(&self, kind: ErrorKind) -> KindImpact {
        self.per_kind.get(&kind).copied().unwrap_or_default()
    }

    /// All kinds with at least one encounter, in taxonomy order.
    pub fn kinds(&self) -> impl Iterator<Item = (ErrorKind, KindImpact)> + '_ {
        self.per_kind.iter().map(|(&k, &v)| (k, v))
    }

    /// Total distinct GPU-failed jobs (the paper reports 3,285).
    pub fn gpu_failed_jobs(&self) -> u64 {
        self.gpu_failed_jobs
    }

    /// Distinct GPU-failed jobs as `(termination instant, job id)` —
    /// the events the impact rollup buckets by civil time.
    pub fn failed_job_ends(&self) -> impl Iterator<Item = (Timestamp, u64)> + '_ {
        self.failed_ends.iter().copied()
    }

    /// Attributed `(kind, job)` pairs as `(termination instant, kind,
    /// job id)`. A job attributed to several kinds appears once per
    /// kind, matching the Table II per-kind `failed` counts.
    pub fn attributions(&self) -> impl Iterator<Item = (Timestamp, ErrorKind, u64)> + '_ {
        self.attributions.iter().copied()
    }
}

/// One row of the Table III workload-mix summary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMixRow {
    /// Bucket label (`"1"`, `"2-4"`, ...).
    pub label: String,
    /// Smallest GPU count in the bucket.
    pub min_gpus: u32,
    /// Largest GPU count in the bucket (`u32::MAX` = unbounded).
    pub max_gpus: u32,
    /// Jobs in the bucket.
    pub count: u64,
    /// Share of all GPU jobs (percent).
    pub share_pct: f64,
    /// Mean elapsed minutes.
    pub mean_mins: f64,
    /// Median elapsed minutes.
    pub p50_mins: f64,
    /// 99th-percentile elapsed minutes.
    pub p99_mins: f64,
    /// GPU-hours (thousands) from ML-classified jobs.
    pub ml_gpu_hours_k: f64,
    /// GPU-hours (thousands) from non-ML jobs.
    pub non_ml_gpu_hours_k: f64,
}

/// The Table III bucket boundaries.
pub const MIX_BUCKETS: [(u32, u32, &str); 8] = [
    (1, 1, "1"),
    (2, 4, "2-4"),
    (5, 8, "4-8"),
    (9, 32, "8-32"),
    (33, 64, "32-64"),
    (65, 128, "64-128"),
    (129, 256, "128-256"),
    (257, u32::MAX, "256+"),
];

/// Computes the Table III rows over the GPU jobs in `jobs` (CPU jobs are
/// skipped). Empty buckets produce rows with zero counts and NaN-free
/// zeroed statistics.
pub fn job_mix(jobs: &[AccountedJob]) -> Vec<JobMixRow> {
    let gpu_jobs: Vec<&AccountedJob> = jobs.iter().filter(|j| j.gpus > 0).collect();
    let total = gpu_jobs.len().max(1) as f64;
    // Table III through the shared aggregation kernel: group GPU jobs by
    // mix-bucket index (the buckets are disjoint, so the first match is
    // the only match), preserving input order within each group.
    let grouped: BTreeMap<usize, Vec<&AccountedJob>> = crate::rollup::group_fold(
        gpu_jobs.iter().copied(),
        |j| {
            MIX_BUCKETS
                .iter()
                .position(|&(lo, hi, _)| j.gpus >= lo && j.gpus <= hi)
        },
        |group: &mut Vec<&AccountedJob>, j| group.push(j),
    );
    MIX_BUCKETS
        .iter()
        .enumerate()
        .map(|(index, &(lo, hi, label))| {
            let bucket: &[&AccountedJob] = grouped.get(&index).map_or(&[], Vec::as_slice);
            let mut mins: Vec<f64> = bucket.iter().map(|j| j.elapsed().as_mins_f64()).collect();
            mins.sort_by(f64::total_cmp);
            let (ml, non_ml) = bucket.iter().fold((0.0, 0.0), |(ml, non), j| {
                if j.is_ml() {
                    (ml + j.gpu_hours(), non)
                } else {
                    (ml, non + j.gpu_hours())
                }
            });
            JobMixRow {
                label: label.to_owned(),
                min_gpus: lo,
                max_gpus: hi,
                count: bucket.len() as u64,
                share_pct: bucket.len() as f64 / total * 100.0,
                mean_mins: mean(&mins).unwrap_or(0.0),
                p50_mins: if mins.is_empty() {
                    0.0
                } else {
                    percentile_sorted(&mins, 50.0)
                },
                p99_mins: if mins.is_empty() {
                    0.0
                } else {
                    percentile_sorted(&mins, 99.0)
                },
                ml_gpu_hours_k: ml / 1000.0,
                non_ml_gpu_hours_k: non_ml / 1000.0,
            }
        })
        .collect()
}

/// Success rate (completed fraction) of a job set, `None` if empty.
pub fn success_rate(jobs: &[AccountedJob]) -> Option<f64> {
    if jobs.is_empty() {
        None
    } else {
        Some(jobs.iter().filter(|j| j.completed).count() as f64 / jobs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::PciAddr;
    use simtime::Timestamp;

    fn job(id: u64, host: &str, gpu: u8, start: u64, end: u64, completed: bool) -> AccountedJob {
        AccountedJob {
            id,
            name: format!("job{id}"),
            submit: Timestamp::from_unix(start.saturating_sub(60)),
            start: Timestamp::from_unix(start),
            end: Timestamp::from_unix(end),
            gpus: 1,
            gpu_slots: vec![(host.to_owned(), gpu)],
            completed,
        }
    }

    fn error(host: &str, gpu: u8, at: u64, kind: ErrorKind) -> CoalescedError {
        CoalescedError {
            time: Timestamp::from_unix(at),
            host: host.to_owned(),
            pci: PciAddr::for_gpu_index(gpu),
            kind,
            merged_lines: 1,
        }
    }

    const W: Duration = ATTRIBUTION_WINDOW;

    #[test]
    fn encounter_requires_running_overlap() {
        let jobs = [job(1, "n1", 0, 100, 200, true)];
        // Error before start and after end: no encounter.
        let impact = JobImpact::compute(
            &jobs,
            &[
                error("n1", 0, 50, ErrorKind::GspError),
                error("n1", 0, 250, ErrorKind::GspError),
            ],
            W,
        );
        assert_eq!(impact.kind(ErrorKind::GspError).encountered, 0);
        // Error during run: encounter.
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 150, ErrorKind::GspError)], W);
        assert_eq!(impact.kind(ErrorKind::GspError).encountered, 1);
        assert_eq!(impact.kind(ErrorKind::GspError).failed, 0); // completed
    }

    #[test]
    fn attribution_needs_failure_within_window() {
        // Job fails 10 s after the error: attributed.
        let jobs = [job(1, "n1", 0, 100, 210, false)];
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 200, ErrorKind::GspError)], W);
        let k = impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 1));
        assert_eq!(impact.gpu_failed_jobs(), 1);
        assert_eq!(k.failure_probability(), Some(1.0));

        // Job fails 30 s after: encountered but not attributed.
        let jobs = [job(1, "n1", 0, 100, 230, false)];
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 200, ErrorKind::GspError)], W);
        let k = impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 0));
        assert_eq!(impact.gpu_failed_jobs(), 0);
    }

    #[test]
    fn wrong_gpu_or_host_is_no_encounter() {
        let jobs = [job(1, "n1", 0, 100, 200, false)];
        let impact = JobImpact::compute(
            &jobs,
            &[
                error("n1", 1, 150, ErrorKind::GspError),
                error("n2", 0, 150, ErrorKind::GspError),
            ],
            W,
        );
        assert_eq!(impact.kind(ErrorKind::GspError).encountered, 0);
    }

    #[test]
    fn attribution_at_exact_window_boundary() {
        // §V-B's window is inclusive: a job failing *exactly* 20 s after
        // the error is attributed; one second later is not.
        let at_boundary = [job(1, "n1", 0, 100, 220, false)];
        let impact =
            JobImpact::compute(&at_boundary, &[error("n1", 0, 200, ErrorKind::GspError)], W);
        let k = impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 1));

        let past_boundary = [job(1, "n1", 0, 100, 221, false)];
        let impact = JobImpact::compute(
            &past_boundary,
            &[error("n1", 0, 200, ErrorKind::GspError)],
            W,
        );
        let k = impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 0));
        assert_eq!(impact.gpu_failed_jobs(), 0);
    }

    #[test]
    fn job_ending_in_the_same_tick_as_the_error() {
        // A job killed by the error terminates at the error's own
        // timestamp: occupancy is (start, end], so end == error time is
        // still an encounter, and the 0 s gap attributes.
        let jobs = [job(1, "n1", 0, 100, 200, false)];
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 200, ErrorKind::MmuError)], W);
        let k = impact.kind(ErrorKind::MmuError);
        assert_eq!((k.encountered, k.failed), (1, 1));

        // The successor backfilled onto the freed GPU in the same second
        // starts *at* the error time: occupancy excludes the start
        // instant, so it never saw the error.
        let jobs = [
            job(1, "n1", 0, 100, 200, false),
            job(2, "n1", 0, 200, 300, false),
        ];
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 200, ErrorKind::MmuError)], W);
        let k = impact.kind(ErrorKind::MmuError);
        assert_eq!((k.encountered, k.failed), (1, 1));
        assert_eq!(impact.gpu_failed_jobs(), 1);
    }

    #[test]
    fn multi_gpu_job_ignores_non_allocated_gpu_errors() {
        // A 2-GPU job on GPUs 0 and 1 of n1: an error on GPU 5 of the
        // same node is not an encounter (GPU scope, not node scope), but
        // errors on either held slot are.
        let mut wide = job(1, "n1", 0, 100, 210, false);
        wide.gpus = 2;
        wide.gpu_slots = vec![("n1".to_owned(), 0), ("n1".to_owned(), 1)];
        let jobs = [wide];

        let impact = JobImpact::compute(&jobs, &[error("n1", 5, 200, ErrorKind::MmuError)], W);
        assert_eq!(impact.kind(ErrorKind::MmuError).encountered, 0);
        assert_eq!(impact.gpu_failed_jobs(), 0);

        for held in [0u8, 1] {
            let impact =
                JobImpact::compute(&jobs, &[error("n1", held, 200, ErrorKind::MmuError)], W);
            let k = impact.kind(ErrorKind::MmuError);
            assert_eq!((k.encountered, k.failed), (1, 1), "gpu {held}");
        }

        // Errors on both held GPUs still count the job once per kind.
        let impact = JobImpact::compute(
            &jobs,
            &[
                error("n1", 0, 200, ErrorKind::MmuError),
                error("n1", 1, 201, ErrorKind::MmuError),
            ],
            W,
        );
        assert_eq!(impact.kind(ErrorKind::MmuError).encountered, 1);
        assert_eq!(impact.gpu_failed_jobs(), 1);
    }

    #[test]
    fn multiple_kinds_all_attributed() {
        // PMU then MMU both within 20 s of the failure: both attributed,
        // mirroring §V-B's multiple-contributor rule.
        let jobs = [job(1, "n1", 0, 100, 215, false)];
        let impact = JobImpact::compute(
            &jobs,
            &[
                error("n1", 0, 200, ErrorKind::PmuSpiError),
                error("n1", 0, 205, ErrorKind::MmuError),
            ],
            W,
        );
        assert_eq!(impact.kind(ErrorKind::PmuSpiError).failed, 1);
        assert_eq!(impact.kind(ErrorKind::MmuError).failed, 1);
        // But the job counts once in the distinct GPU-failed total.
        assert_eq!(impact.gpu_failed_jobs(), 1);
    }

    #[test]
    fn repeated_errors_count_one_distinct_job() {
        let jobs = [job(1, "n1", 0, 100, 500, true)];
        let errors: Vec<_> = (0..10)
            .map(|i| error("n1", 0, 150 + i * 10, ErrorKind::NvlinkError))
            .collect();
        let impact = JobImpact::compute(&jobs, &errors, W);
        assert_eq!(impact.kind(ErrorKind::NvlinkError).encountered, 1);
    }

    #[test]
    fn consecutive_jobs_on_one_gpu_resolve_correctly() {
        let jobs = [
            job(1, "n1", 0, 100, 200, true),
            job(2, "n1", 0, 200, 300, false),
        ];
        // Error at 250 belongs to job 2 only.
        let impact = JobImpact::compute(&jobs, &[error("n1", 0, 250, ErrorKind::MmuError)], W);
        assert_eq!(impact.kind(ErrorKind::MmuError).encountered, 1);
        let impact2 = JobImpact::compute(&jobs, &[error("n1", 0, 150, ErrorKind::MmuError)], W);
        assert_eq!(impact2.kind(ErrorKind::MmuError).encountered, 1);
        assert_eq!(impact2.kind(ErrorKind::MmuError).failed, 0);
    }

    #[test]
    fn failure_probability_table_shape() {
        // 4 jobs encounter NVLink, 2 die within window: p = 0.5.
        let jobs: Vec<AccountedJob> = (0..4)
            .map(|i| job(i, "n1", i as u8, 100, 200 + (i % 2) * 1000, i % 2 == 1))
            .collect();
        let errors: Vec<_> = (0..4)
            .map(|i| error("n1", i as u8, 190, ErrorKind::NvlinkError))
            .collect();
        let impact = JobImpact::compute(&jobs, &errors, W);
        let k = impact.kind(ErrorKind::NvlinkError);
        assert_eq!(k.encountered, 4);
        assert_eq!(k.failed, 2);
        assert_eq!(k.failure_probability(), Some(0.5));
    }

    #[test]
    fn kinds_iterator_and_default() {
        let impact = JobImpact::default();
        assert_eq!(impact.kinds().count(), 0);
        assert_eq!(impact.kind(ErrorKind::GspError).failure_probability(), None);
    }

    fn mix_job(id: u64, gpus: u32, mins: u64, name: &str) -> AccountedJob {
        AccountedJob {
            id,
            name: name.to_owned(),
            submit: Timestamp::from_unix(0),
            start: Timestamp::from_unix(0),
            end: Timestamp::from_unix(mins * 60),
            gpus,
            gpu_slots: Vec::new(),
            completed: true,
        }
    }

    #[test]
    fn job_mix_buckets_and_shares() {
        let jobs = [
            mix_job(1, 1, 10, "a"),
            mix_job(2, 1, 20, "b"),
            mix_job(3, 4, 30, "c"),
            mix_job(4, 64, 40, "train_model"),
            mix_job(5, 0, 99, "cpu_job"),
        ];
        let rows = job_mix(&jobs);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].count, 2); // 1-GPU
        assert!((rows[0].share_pct - 50.0).abs() < 1e-9); // 2 of 4 GPU jobs
        assert_eq!(rows[1].count, 1); // 2-4
        assert_eq!(rows[4].count, 1); // 32-64
        assert_eq!(rows[7].count, 0);
    }

    #[test]
    fn job_mix_elapsed_statistics() {
        let jobs: Vec<AccountedJob> = (1..=100).map(|i| mix_job(i, 1, i, "job")).collect();
        let rows = job_mix(&jobs);
        assert!((rows[0].mean_mins - 50.5).abs() < 1e-9);
        assert!((rows[0].p50_mins - 50.5).abs() < 1.0);
        assert!((rows[0].p99_mins - 99.0).abs() < 1.1);
    }

    #[test]
    fn job_mix_ml_split() {
        let jobs = [
            mix_job(1, 2, 60, "train_resnet"), // 2 GPU-hours ML
            mix_job(2, 2, 60, "namd_apoa1"),   // 2 GPU-hours non-ML
        ];
        let rows = job_mix(&jobs);
        assert!((rows[1].ml_gpu_hours_k - 0.002).abs() < 1e-9);
        assert!((rows[1].non_ml_gpu_hours_k - 0.002).abs() < 1e-9);
    }

    #[test]
    fn job_mix_empty_is_all_zero() {
        let rows = job_mix(&[]);
        assert!(rows.iter().all(|r| r.count == 0 && r.mean_mins == 0.0));
    }

    #[test]
    fn success_rate_helper() {
        assert_eq!(success_rate(&[]), None);
        let jobs = [
            mix_job(1, 1, 10, "a"),
            AccountedJob {
                completed: false,
                ..mix_job(2, 1, 10, "b")
            },
        ];
        assert_eq!(success_rate(&jobs), Some(0.5));
    }
}
