//! The incremental streaming pipeline: batch results, live.
//!
//! [`Pipeline::run_lenient`] is a batch oracle — whole log in, whole
//! report out. A production deployment instead *tails* the cluster: log
//! bytes arrive in arbitrary-sized chunks, job records trickle in as the
//! scheduler closes them, and the process must survive restarts without
//! re-reading months of history. [`StreamingPipeline`] is that engine.
//! Feed it the same bytes in any batching, checkpoint it at any point,
//! restore and keep feeding: every materialized [`StudyReport`] and
//! [`QuarantineReport`] is **byte-identical** to what the batch pipeline
//! produces on the prefix fed so far. The differential suite
//! (`tests/incremental_equivalence.rs`) and the property layer
//! (`crates/core/tests/incremental_properties.rs`) enforce exactly that.
//!
//! # How equivalence is engineered, not hoped for
//!
//! The batch path is: lenient scan → canonical `(time, host)` sort →
//! coalesce fold → assemble. Each stage has a streaming twin that is the
//! *same code*:
//!
//! * **Scan** — [`hpclog::stream::LenientScan`] replicates the lenient
//!   scan rule-for-rule and carries the partial line, line counter and
//!   out-of-order anchor across chunk (and checkpoint) boundaries.
//! * **Order** — the scan rejects clock regressions, so accepted events
//!   leave it in non-decreasing time order. The only reordering the batch
//!   sort can then perform is *within* one timestamp, stably by host. The
//!   engine therefore buffers just the events of the newest timestamp (the
//!   *tie buffer*) and flushes them host-sorted when time advances —
//!   reproducing the canonical order with O(events-per-second) memory
//!   instead of O(stream).
//! * **Coalesce** — events are folded into a long-lived
//!   [`Coalescer`], the very type the batch [`coalesce`](crate::coalesce::coalesce)
//!   function folds through.
//! * **Assemble** — materialization calls the same `Pipeline::assemble`
//!   tail (stats, outlier rule, impact, availability) the batch path
//!   calls. Those stages run in well under a millisecond on coalesced
//!   data, so recomputing them per materialization costs nothing and
//!   removes an entire class of incremental-update bugs.
//!
//! Memory is bounded by the *analysis state*, not the stream: the
//! coalesced error list, the job and outage records, the bounded
//! quarantine ledger, and the one-second tie buffer. Raw log lines are
//! never retained.
//!
//! # Checkpoints
//!
//! [`StreamingPipeline::checkpoint`] serializes every bit of cross-batch
//! state (see `DESIGN.md` §7 for the inventory and why each field is
//! load-bearing) into a versioned [`Checkpoint`];
//! [`StreamingPipeline::restore`] rebuilds an engine that continues the
//! stream exactly — including future reservoir-sampling decisions in the
//! quarantine ledger, whose RNG state rides along. Corrupt or truncated
//! snapshots load as typed [`CheckpointError`]s, never panics.
//!
//! # Feed-order contract
//!
//! Byte-for-byte ledger equality additionally requires feeding the shared
//! quarantine ledger in the batch path's record order: all log bytes (then
//! [`finish_log`](StreamingPipeline::finish_log)), then GPU jobs, CPU
//! jobs, outages. Within each input, chunking is arbitrary. Feeding in a
//! different order still yields the same *report* and the same ledger
//! counts; only reservoir exemplar selection can differ, because exemplar
//! survival depends on record order by construction.

use crate::checkpoint::{Checkpoint, CheckpointError, Decoder, Encoder};
use crate::coalesce::{CoalescedError, Coalescer, Pushed};
use crate::csvio::{self, CsvError, JOB_HEADER, OUTAGE_HEADER};
use crate::job::{AccountedJob, OutageRecord};
use crate::pipeline::{Pipeline, QuarantineReport, StudyReport};
use hpclog::extract::ExtractStats;
use hpclog::quarantine::{
    Exemplar, LedgerSnapshot, QuarantineCategory, QuarantineCounts, QuarantineLedger,
};
use hpclog::stream::{LenientScan, ScanSnapshot};
use hpclog::{PciAddr, XidEvent};
use simtime::{Duration, Period, StudyPeriods, Timestamp};
use std::collections::BTreeMap;
use xid::{ErrorKind, XidCode};

/// A consumer of materialized study snapshots.
///
/// The publication seam between the streaming engine and whatever serves
/// its results: [`StreamingPipeline::publish_snapshot`] materializes the
/// prefix fed so far and hands the pair here. Implementations must accept
/// the snapshot without blocking the pipeline for long — the `servd`
/// store handle, the canonical implementor, builds its columnar store
/// *before* taking its swap lock for exactly that reason.
pub trait SnapshotSink {
    /// Accepts one materialized snapshot.
    fn publish(&self, report: StudyReport, quarantine: QuarantineReport);
}

/// Live per-kind tallies of the coalesced error stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Coalesced errors of this kind seen so far.
    pub errors: u64,
    /// Raw log lines merged into those errors.
    pub raw_lines: u64,
}

/// Live per-GPU / per-XID-kind counters, updated as events coalesce.
///
/// Counts reflect errors already flushed from the tie buffer into the
/// coalescer (i.e. everything up to the newest fully-elapsed second of
/// the stream) and are rebuilt from the coalesced error list on restore,
/// so they never need serializing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveCounters {
    by_kind: BTreeMap<ErrorKind, KindTally>,
    by_gpu: BTreeMap<(String, PciAddr), u64>,
}

impl LiveCounters {
    fn rebuild(errors: &[CoalescedError]) -> Self {
        let mut live = LiveCounters::default();
        for err in errors {
            live.on_started(err);
            live.add_raw(err, err.merged_lines - 1);
        }
        live
    }

    fn on_started(&mut self, err: &CoalescedError) {
        let tally = self.by_kind.entry(err.kind).or_default();
        tally.errors += 1;
        tally.raw_lines += 1;
        *self.by_gpu.entry((err.host.clone(), err.pci)).or_default() += 1;
    }

    fn on_merged(&mut self, err: &CoalescedError) {
        self.add_raw(err, 1);
    }

    fn add_raw(&mut self, err: &CoalescedError, lines: u64) {
        self.by_kind.entry(err.kind).or_default().raw_lines += lines;
    }

    /// The tally for one error kind.
    pub fn kind(&self, kind: ErrorKind) -> KindTally {
        self.by_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Coalesced errors charged to one GPU.
    pub fn gpu_errors(&self, host: &str, pci: PciAddr) -> u64 {
        self.by_gpu
            .get(&(host.to_owned(), pci))
            .copied()
            .unwrap_or(0)
    }

    /// Total coalesced errors.
    pub fn total_errors(&self) -> u64 {
        self.by_kind.values().map(|t| t.errors).sum()
    }

    /// Total raw error lines folded in.
    pub fn total_raw_lines(&self) -> u64 {
        self.by_kind.values().map(|t| t.raw_lines).sum()
    }

    /// The GPU with the most coalesced errors (ties broken by smallest
    /// `(host, pci)` key, so the answer is deterministic).
    pub fn hottest_gpu(&self) -> Option<(&str, PciAddr, u64)> {
        self.by_gpu
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|((host, pci), n)| (host.as_str(), *pci, *n))
    }

    /// Iterates `(kind, tally)` pairs in `ErrorKind` order.
    pub fn kinds(&self) -> impl Iterator<Item = (ErrorKind, KindTally)> + '_ {
        self.by_kind.iter().map(|(&k, &t)| (k, t))
    }

    /// Iterates `((host, pci), errors)` pairs in key order.
    pub fn gpus(&self) -> impl Iterator<Item = (&str, PciAddr, u64)> + '_ {
        self.by_gpu
            .iter()
            .map(|((host, pci), &n)| (host.as_str(), *pci, n))
    }
}

/// Incremental lenient CSV ingestion, replicating
/// [`csvio::parse_jobs_lenient`] / [`csvio::parse_outages_lenient`] on a
/// chunked text stream: same header handling, same blank-row skipping,
/// same physical line numbers in the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CsvFeed {
    /// True until the first complete line (the header slot) is seen.
    awaiting_header: bool,
    /// Physical lines completed so far.
    line_no: u64,
    /// Text after the last newline, carried to the next chunk.
    carry: String,
}

impl CsvFeed {
    fn new() -> Self {
        CsvFeed {
            awaiting_header: true,
            line_no: 0,
            carry: String::new(),
        }
    }

    fn feed<T>(
        &mut self,
        text: &str,
        header: &str,
        ledger: &mut QuarantineLedger,
        out: &mut Vec<T>,
        parse: fn(&str, usize) -> Result<T, CsvError>,
    ) {
        let mut rest = text;
        while let Some(pos) = rest.find('\n') {
            let (head, tail) = rest.split_at(pos);
            if self.carry.is_empty() {
                // `str::lines` strips one \r before the \n; so do we.
                let line = head.strip_suffix('\r').unwrap_or(head);
                self.line(line, header, ledger, out, parse);
            } else {
                self.carry.push_str(head);
                let full = std::mem::take(&mut self.carry);
                let line = full.strip_suffix('\r').unwrap_or(full.as_str());
                self.line(line, header, ledger, out, parse);
            }
            rest = &tail[1..];
        }
        self.carry.push_str(rest);
    }

    /// Processes the trailing unterminated line, if any. Like
    /// `str::lines`, a final line without `\n` keeps any trailing `\r`.
    fn finish<T>(
        &mut self,
        header: &str,
        ledger: &mut QuarantineLedger,
        out: &mut Vec<T>,
        parse: fn(&str, usize) -> Result<T, CsvError>,
    ) {
        if self.carry.is_empty() {
            return;
        }
        let full = std::mem::take(&mut self.carry);
        self.line(&full, header, ledger, out, parse);
    }

    fn line<T>(
        &mut self,
        raw: &str,
        header: &str,
        ledger: &mut QuarantineLedger,
        out: &mut Vec<T>,
        parse: fn(&str, usize) -> Result<T, CsvError>,
    ) {
        self.line_no += 1;
        if self.awaiting_header {
            self.awaiting_header = false;
            if raw.trim() != header {
                // A wrong header is itself a bad record, recorded at line
                // 1; the rows below it may still be sound.
                ledger.record(QuarantineCategory::BadRecord, 1, raw.as_bytes());
            }
            return;
        }
        if raw.trim().is_empty() {
            return;
        }
        match parse(raw, self.line_no as usize) {
            Ok(record) => out.push(record),
            Err(_) => ledger.record(QuarantineCategory::BadRecord, self.line_no, raw.as_bytes()),
        }
    }
}

/// The streaming pipeline engine. See the [module docs](self) for the
/// equivalence argument and the feed-order contract.
///
/// # Example
///
/// ```
/// use resilience::incremental::StreamingPipeline;
/// use resilience::Pipeline;
///
/// let line = "Mar 14 03:22:07 gpub042 kernel: NVRM: Xid (PCI:0000:27:00): 79, GPU has fallen off the bus.\n";
/// let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
/// for chunk in line.as_bytes().chunks(3) {
///     engine.push_log(chunk);
/// }
/// engine.finish_log();
/// let report = engine.materialize();
/// assert_eq!(report.extract_stats.unwrap().extracted, 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingPipeline {
    config: Pipeline,
    scan: LenientScan,
    ledger: QuarantineLedger,
    /// Events of the newest timestamp, awaiting the host-stable flush
    /// that reproduces the batch path's canonical sort.
    pending: Vec<XidEvent>,
    pending_time: Option<Timestamp>,
    coalescer: Coalescer,
    live: LiveCounters,
    gpu_feed: CsvFeed,
    cpu_feed: CsvFeed,
    outage_feed: CsvFeed,
    gpu_jobs: Vec<AccountedJob>,
    cpu_jobs: Vec<AccountedJob>,
    outages: Vec<OutageRecord>,
    metrics: StreamObs,
}

/// Cached global-registry handles for the streaming hot path, so the
/// per-event cost is one relaxed atomic op instead of a registry
/// lookup. Never serialized: checkpoints restore fresh handles to the
/// same process-wide cells. Write-only, like all instrumentation.
#[derive(Debug, Clone)]
struct StreamObs {
    tie_high_water: obs::Gauge,
    events: obs::Counter,
    merges: obs::Counter,
}

impl StreamObs {
    fn new() -> Self {
        StreamObs {
            tie_high_water: obs::gauge("core_tie_buffer_high_water", &[]),
            events: obs::counter("core_events_coalesced_total", &[]),
            merges: obs::counter("core_coalesce_merges_total", &[]),
        }
    }
}

impl StreamingPipeline {
    /// A fresh engine with the given analysis configuration; `log_year`
    /// resolves year-less syslog stamps, as in [`Pipeline::run_lenient`].
    pub fn new(config: Pipeline, log_year: i32) -> Self {
        StreamingPipeline {
            coalescer: Coalescer::new(config.coalesce_window),
            config,
            scan: LenientScan::studied_only(log_year),
            ledger: QuarantineLedger::new(),
            pending: Vec::new(),
            pending_time: None,
            live: LiveCounters::default(),
            gpu_feed: CsvFeed::new(),
            cpu_feed: CsvFeed::new(),
            outage_feed: CsvFeed::new(),
            gpu_jobs: Vec::new(),
            cpu_jobs: Vec::new(),
            outages: Vec::new(),
            metrics: StreamObs::new(),
        }
    }

    /// The analysis configuration.
    pub fn config(&self) -> &Pipeline {
        &self.config
    }

    /// Feeds the next chunk of raw log bytes, of any size.
    pub fn push_log(&mut self, bytes: &[u8]) {
        let mut events = Vec::new();
        self.scan.feed(bytes, &mut self.ledger, &mut events);
        for ev in events {
            self.ingest(ev);
        }
    }

    /// Marks the log source exhausted, processing a trailing
    /// newline-less line exactly as the batch scan does at end of file.
    /// Idempotent; call before feeding CSV inputs to keep the shared
    /// ledger in batch record order.
    pub fn finish_log(&mut self) {
        let mut events = Vec::new();
        self.scan.finish(&mut self.ledger, &mut events);
        for ev in events {
            self.ingest(ev);
        }
    }

    /// Records a log-stream I/O failure, as the batch scan does when its
    /// reader dies (the quarantine caveats pick it up).
    pub fn record_log_io_error(&mut self) {
        self.ledger.record_io_error();
    }

    /// Feeds a chunk of the GPU-jobs CSV export.
    pub fn push_gpu_jobs_csv(&mut self, text: &str) {
        self.gpu_feed.feed(
            text,
            JOB_HEADER,
            &mut self.ledger,
            &mut self.gpu_jobs,
            csvio::parse_job_row,
        );
    }

    /// Feeds a chunk of the CPU-jobs CSV export.
    pub fn push_cpu_jobs_csv(&mut self, text: &str) {
        self.cpu_feed.feed(
            text,
            JOB_HEADER,
            &mut self.ledger,
            &mut self.cpu_jobs,
            csvio::parse_job_row,
        );
    }

    /// Feeds a chunk of the outages CSV export.
    pub fn push_outages_csv(&mut self, text: &str) {
        self.outage_feed.feed(
            text,
            OUTAGE_HEADER,
            &mut self.ledger,
            &mut self.outages,
            csvio::parse_outage_row,
        );
    }

    /// Accepts one already-structured GPU job record (the `slurmsim::feed`
    /// path; bypasses CSV parsing and the ledger).
    pub fn push_gpu_job(&mut self, job: AccountedJob) {
        self.gpu_jobs.push(job);
    }

    /// Accepts one already-structured CPU job record.
    pub fn push_cpu_job(&mut self, job: AccountedJob) {
        self.cpu_jobs.push(job);
    }

    /// Accepts one already-structured outage record.
    pub fn push_outage(&mut self, outage: OutageRecord) {
        self.outages.push(outage);
    }

    fn ingest(&mut self, ev: XidEvent) {
        match self.pending_time {
            Some(t) if ev.time == t => {}
            Some(_) => {
                // The scan never emits regressions, so time advanced:
                // the previous second is complete and can flush.
                self.flush_pending();
                self.pending_time = Some(ev.time);
            }
            None => self.pending_time = Some(ev.time),
        }
        self.pending.push(ev);
        self.metrics
            .tie_high_water
            .set_max(self.pending.len() as u64);
    }

    /// Flushes the tie buffer into the coalescer in canonical order: a
    /// stable host sort of the events of one timestamp reproduces exactly
    /// what `canonical_sort` does to that time-slice of the batch stream.
    fn flush_pending(&mut self) {
        let mut batch = std::mem::take(&mut self.pending);
        batch.sort_by(|a, b| a.host.cmp(&b.host));
        let batch_len = batch.len() as u64;
        let mut merged = 0u64;
        for ev in batch {
            match self.coalescer.push(ev) {
                Pushed::Started(idx) => {
                    let err = &self.coalescer.errors()[idx];
                    self.live.on_started(err);
                }
                Pushed::Merged(idx) => {
                    merged += 1;
                    let err = &self.coalescer.errors()[idx];
                    self.live.on_merged(err);
                }
            }
        }
        if batch_len > 0 {
            self.metrics.events.add(batch_len);
            self.metrics.merges.add(merged);
        }
    }

    /// Live per-GPU / per-kind counters.
    pub fn live(&self) -> &LiveCounters {
        &self.live
    }

    /// Stage-I counters so far (the unterminated carry line, if any, is
    /// not yet counted).
    pub fn scan_stats(&self) -> ExtractStats {
        self.scan.stats()
    }

    /// The shared quarantine ledger.
    pub fn ledger(&self) -> &QuarantineLedger {
        &self.ledger
    }

    /// Coalesced errors flushed so far (pre-outlier-rule; the tie buffer
    /// of the newest timestamp is not yet included).
    pub fn errors(&self) -> &[CoalescedError] {
        self.coalescer.errors()
    }

    /// Log bytes fed so far; a resuming reader seeks here.
    pub fn log_bytes_fed(&self) -> u64 {
        self.scan.bytes_fed()
    }

    /// Total input lines consumed across every stream: completed log
    /// lines plus completed rows of each CSV feed. This is the "events"
    /// axis of the `servd` ingest publish cadence (publish every N events
    /// or T seconds) — a cheap monotone counter that advances for every
    /// kind of input, not just XID-bearing log lines.
    pub fn ingested_lines(&self) -> u64 {
        self.scan.stats().lines_seen
            + self.gpu_feed.line_no
            + self.cpu_feed.line_no
            + self.outage_feed.line_no
    }

    /// Serialized size of the current state in bytes — the "resident
    /// state" metric E13 tracks. O(state) to compute.
    pub fn state_size_bytes(&self) -> usize {
        self.checkpoint().as_bytes().len()
    }

    /// Materializes the study report for everything fed so far, without
    /// disturbing the stream. Works on a clone: pending partial lines and
    /// the tie buffer are flushed on the clone exactly as the batch path
    /// would flush them at end of input, so the result is byte-identical
    /// to `Pipeline::run_lenient` over the prefix fed so far.
    pub fn materialize(&self) -> StudyReport {
        self.materialize_full().0
    }

    /// [`materialize`](Self::materialize), also yielding the quarantine
    /// report.
    pub fn materialize_full(&self) -> (StudyReport, QuarantineReport) {
        let mut snap = self.clone();
        snap.finalize_parts()
    }

    /// Ends the stream, yielding the final reports. Equivalent to a last
    /// [`materialize_full`](Self::materialize_full) but without cloning
    /// the state.
    pub fn finalize(mut self) -> (StudyReport, QuarantineReport) {
        self.finalize_parts()
    }

    /// Materializes the current prefix and hands it to `sink` — the
    /// live-serving hook. A tailing deployment calls this on whatever
    /// cadence it wants fresh query results; the stream itself is not
    /// disturbed (see [`materialize_full`](Self::materialize_full)), and
    /// the sink decides how to expose the snapshot (the `servd` store
    /// handle swaps it in atomically behind running readers).
    pub fn publish_snapshot(&self, sink: &dyn SnapshotSink) {
        let (report, quarantine) = self.materialize_full();
        sink.publish(report, quarantine);
    }

    fn finalize_parts(&mut self) -> (StudyReport, QuarantineReport) {
        self.finish_log();
        self.gpu_feed.finish(
            JOB_HEADER,
            &mut self.ledger,
            &mut self.gpu_jobs,
            csvio::parse_job_row,
        );
        self.cpu_feed.finish(
            JOB_HEADER,
            &mut self.ledger,
            &mut self.cpu_jobs,
            csvio::parse_job_row,
        );
        self.outage_feed.finish(
            OUTAGE_HEADER,
            &mut self.ledger,
            &mut self.outages,
            csvio::parse_outage_row,
        );
        self.flush_pending();
        let stats = self.scan.stats();
        let report = self.config.assemble(
            self.coalescer.errors().to_vec(),
            Some(stats),
            &self.gpu_jobs,
            &self.cpu_jobs,
            &self.outages,
        );
        let quarantine = QuarantineReport::from_scan(self.ledger.clone(), stats);
        (report, quarantine)
    }

    // ---- checkpointing ----------------------------------------------

    /// Serializes the engine's complete cross-batch state. Restoring the
    /// result continues the stream byte-identically, including future
    /// reservoir-sampling decisions. Can be taken at any point — mid-line,
    /// mid-burst, mid-CSV-row.
    pub fn checkpoint(&self) -> Checkpoint {
        let started = std::time::Instant::now();
        let mut enc = Encoder::new();

        // Config.
        enc.u64(self.config.periods.pre_op.start.unix());
        enc.u64(self.config.periods.pre_op.end.unix());
        enc.u64(self.config.periods.op.start.unix());
        enc.u64(self.config.periods.op.end.unix());
        enc.u64(self.config.node_count as u64);
        enc.u64(self.config.coalesce_window.as_secs());
        enc.u64(self.config.attribution_window.as_secs());
        enc.f64(self.config.outlier_threshold);

        // Scan state.
        let scan = self.scan.snapshot();
        enc.i64(scan.year as i64);
        enc.bool(scan.studied_only);
        enc.u64(scan.stats.lines_seen);
        enc.u64(scan.stats.xid_lines);
        enc.u64(scan.stats.malformed);
        enc.u64(scan.stats.extracted);
        enc.u64(scan.stats.excluded);
        for n in scan.stats.quarantined.to_array() {
            enc.u64(n);
        }
        enc.bytes(&scan.carry);
        enc.u64(scan.line_no);
        enc.opt_u64(scan.prev_accepted.map(Timestamp::unix));
        enc.u64(scan.bytes_fed);

        // Ledger state (counters, exemplars, reservoir RNG).
        let ledger = self.ledger.snapshot();
        for n in ledger.counts {
            enc.u64(n);
        }
        enc.u64(ledger.io_errors);
        enc.u64(ledger.max_exemplars as u64);
        enc.u64(ledger.max_snippet_bytes as u64);
        enc.u64(ledger.max_line_bytes as u64);
        for s in ledger.rng_state {
            enc.u64(s);
        }
        enc.u64(ledger.exemplars.len() as u64);
        for ex in &ledger.exemplars {
            enc.u8(category_index(ex.category));
            enc.u64(ex.line_no);
            enc.str(&ex.snippet);
        }

        // Tie buffer (pending_time is derivable: all entries share it).
        enc.u64(self.pending.len() as u64);
        for ev in &self.pending {
            encode_event(&mut enc, ev);
        }

        // Coalesced errors (the anchor table rebuilds from these).
        enc.u64(self.coalescer.len() as u64);
        for err in self.coalescer.errors() {
            enc.u64(err.time.unix());
            enc.str(&err.host);
            encode_pci(&mut enc, err.pci);
            enc.u16(err.kind.primary_code().value());
            enc.u64(err.merged_lines);
        }

        // CSV feeds and accumulated records.
        for feed in [&self.gpu_feed, &self.cpu_feed, &self.outage_feed] {
            enc.bool(feed.awaiting_header);
            enc.u64(feed.line_no);
            enc.str(&feed.carry);
        }
        for jobs in [&self.gpu_jobs, &self.cpu_jobs] {
            enc.u64(jobs.len() as u64);
            for job in jobs {
                encode_job(&mut enc, job);
            }
        }
        enc.u64(self.outages.len() as u64);
        for o in &self.outages {
            enc.str(&o.host);
            enc.u64(o.start.unix());
            enc.u64(o.duration.as_secs());
        }

        let checkpoint = enc.finish();
        if obs::is_enabled() {
            obs::counter("core_checkpoint_encodes_total", &[]).inc();
            obs::histogram(
                "core_checkpoint_encode_us",
                &[],
                obs::registry::DURATION_US_BUCKETS,
            )
            .observe_duration(started.elapsed());
            obs::histogram(
                "core_checkpoint_bytes",
                &[],
                obs::registry::SIZE_BYTES_BUCKETS,
            )
            .observe(checkpoint.as_bytes().len() as u64);
        }
        checkpoint
    }

    /// Rebuilds an engine from a [`Checkpoint`].
    ///
    /// # Errors
    ///
    /// Any structural defect — truncation, bit flips, impossible values —
    /// returns a typed [`CheckpointError`]; no input panics.
    pub fn restore(checkpoint: &Checkpoint) -> Result<Self, CheckpointError> {
        let started = std::time::Instant::now();
        let mut dec = Decoder::new(checkpoint.as_bytes());
        dec.header()?;

        // Config.
        let pre_op = decode_period(&mut dec)?;
        let op = decode_period(&mut dec)?;
        let node_count = usize::try_from(dec.u64()?)
            .map_err(|_| CheckpointError::Invalid { what: "node count" })?;
        let coalesce_window = Duration::from_secs(dec.u64()?);
        let attribution_window = Duration::from_secs(dec.u64()?);
        let outlier_threshold = dec.f64()?;
        let config = Pipeline {
            periods: StudyPeriods { pre_op, op },
            node_count,
            coalesce_window,
            attribution_window,
            outlier_threshold,
        };

        // Scan state.
        let year = i32::try_from(dec.i64()?)
            .map_err(|_| CheckpointError::Invalid { what: "scan year" })?;
        let studied_only = dec.bool("scan filter flag")?;
        let mut stats = ExtractStats {
            lines_seen: dec.u64()?,
            xid_lines: dec.u64()?,
            malformed: dec.u64()?,
            extracted: dec.u64()?,
            excluded: dec.u64()?,
            ..ExtractStats::default()
        };
        let mut qcounts = [0u64; QuarantineCategory::ALL.len()];
        for slot in &mut qcounts {
            *slot = dec.u64()?;
        }
        stats.quarantined = QuarantineCounts::from_array(qcounts);
        let carry = dec.bytes("scan carry")?;
        let line_no = dec.u64()?;
        let prev_accepted = dec.opt_u64("order anchor")?.map(Timestamp::from_unix);
        let bytes_fed = dec.u64()?;
        let scan = LenientScan::from_snapshot(ScanSnapshot {
            year,
            studied_only,
            stats,
            carry,
            line_no,
            prev_accepted,
            bytes_fed,
        });

        // Ledger state.
        let mut counts = [0u64; QuarantineCategory::ALL.len()];
        for slot in &mut counts {
            *slot = dec.u64()?;
        }
        let io_errors = dec.u64()?;
        let max_exemplars = usize::try_from(dec.u64()?).map_err(|_| CheckpointError::Invalid {
            what: "exemplar cap",
        })?;
        let max_snippet_bytes =
            usize::try_from(dec.u64()?).map_err(|_| CheckpointError::Invalid {
                what: "snippet cap",
            })?;
        let max_line_bytes = usize::try_from(dec.u64()?)
            .map_err(|_| CheckpointError::Invalid { what: "line cap" })?;
        let mut rng_state = [0u64; 4];
        for slot in &mut rng_state {
            *slot = dec.u64()?;
        }
        let n_exemplars = dec.len("exemplar count")?;
        let mut exemplars = Vec::with_capacity(n_exemplars);
        for _ in 0..n_exemplars {
            let category = QuarantineCategory::from_index(dec.u8()? as usize).ok_or(
                CheckpointError::Invalid {
                    what: "exemplar category",
                },
            )?;
            let line_no = dec.u64()?;
            let snippet = dec.str("exemplar snippet")?;
            exemplars.push(Exemplar {
                category,
                line_no,
                snippet,
            });
        }
        let ledger = QuarantineLedger::from_snapshot(LedgerSnapshot {
            counts,
            exemplars,
            max_exemplars,
            max_snippet_bytes,
            max_line_bytes,
            io_errors,
            rng_state,
        })
        .ok_or(CheckpointError::Invalid {
            what: "ledger snapshot",
        })?;

        // Tie buffer.
        let n_pending = dec.len("tie buffer count")?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push(decode_event(&mut dec)?);
        }
        let pending_time = pending.last().map(|ev| ev.time);
        if pending.iter().any(|ev| Some(ev.time) != pending_time) {
            return Err(CheckpointError::Invalid { what: "tie buffer" });
        }

        // Coalesced errors.
        let n_errors = dec.len("error count")?;
        let mut errors = Vec::with_capacity(n_errors);
        for _ in 0..n_errors {
            let time = Timestamp::from_unix(dec.u64()?);
            let host = dec.str("error host")?;
            let pci = decode_pci(&mut dec)?;
            let kind = ErrorKind::from_code(XidCode::new(dec.u16()?));
            let merged_lines = dec.u64()?;
            if merged_lines == 0 {
                return Err(CheckpointError::Invalid {
                    what: "merged lines",
                });
            }
            errors.push(CoalescedError {
                time,
                host,
                pci,
                kind,
                merged_lines,
            });
        }
        let live = LiveCounters::rebuild(&errors);
        let coalescer = Coalescer::from_errors(coalesce_window, errors);

        // CSV feeds and accumulated records.
        let mut feeds = Vec::with_capacity(3);
        for _ in 0..3 {
            feeds.push(CsvFeed {
                awaiting_header: dec.bool("csv header flag")?,
                line_no: dec.u64()?,
                carry: dec.str("csv carry")?,
            });
        }
        let outage_feed = feeds.pop().unwrap_or_else(CsvFeed::new);
        let cpu_feed = feeds.pop().unwrap_or_else(CsvFeed::new);
        let gpu_feed = feeds.pop().unwrap_or_else(CsvFeed::new);
        let gpu_jobs = decode_jobs(&mut dec)?;
        let cpu_jobs = decode_jobs(&mut dec)?;
        let n_outages = dec.len("outage count")?;
        let mut outages = Vec::with_capacity(n_outages);
        for _ in 0..n_outages {
            outages.push(OutageRecord {
                host: dec.str("outage host")?,
                start: Timestamp::from_unix(dec.u64()?),
                duration: Duration::from_secs(dec.u64()?),
            });
        }

        dec.finish()?;
        if obs::is_enabled() {
            obs::counter("core_checkpoint_decodes_total", &[]).inc();
            obs::histogram(
                "core_checkpoint_decode_us",
                &[],
                obs::registry::DURATION_US_BUCKETS,
            )
            .observe_duration(started.elapsed());
        }
        Ok(StreamingPipeline {
            config,
            scan,
            ledger,
            pending,
            pending_time,
            coalescer,
            live,
            gpu_feed,
            cpu_feed,
            outage_feed,
            gpu_jobs,
            cpu_jobs,
            outages,
            metrics: StreamObs::new(),
        })
    }
}

fn category_index(category: QuarantineCategory) -> u8 {
    QuarantineCategory::ALL
        .iter()
        .position(|&c| c == category)
        .unwrap_or(0) as u8
}

fn encode_pci(enc: &mut Encoder, pci: PciAddr) {
    enc.u16(pci.domain);
    enc.u8(pci.bus);
    enc.u8(pci.device);
}

fn decode_pci(dec: &mut Decoder<'_>) -> Result<PciAddr, CheckpointError> {
    Ok(PciAddr::new(dec.u16()?, dec.u8()?, dec.u8()?))
}

fn encode_event(enc: &mut Encoder, ev: &XidEvent) {
    enc.u64(ev.time.unix());
    enc.str(&ev.host);
    encode_pci(enc, ev.pci);
    enc.u16(ev.code.value());
    enc.str(&ev.detail);
}

fn decode_event(dec: &mut Decoder<'_>) -> Result<XidEvent, CheckpointError> {
    let time = Timestamp::from_unix(dec.u64()?);
    let host = dec.str("event host")?;
    let pci = decode_pci(dec)?;
    let code = XidCode::new(dec.u16()?);
    let detail = dec.str("event detail")?;
    Ok(XidEvent::new(time, host, pci, code, detail))
}

fn decode_period(dec: &mut Decoder<'_>) -> Result<Period, CheckpointError> {
    let start = Timestamp::from_unix(dec.u64()?);
    let end = Timestamp::from_unix(dec.u64()?);
    if end <= start {
        return Err(CheckpointError::Invalid { what: "period" });
    }
    Ok(Period { start, end })
}

fn encode_job(enc: &mut Encoder, job: &AccountedJob) {
    enc.u64(job.id);
    enc.str(&job.name);
    enc.u64(job.submit.unix());
    enc.u64(job.start.unix());
    enc.u64(job.end.unix());
    enc.u32(job.gpus);
    enc.u64(job.gpu_slots.len() as u64);
    for (host, idx) in &job.gpu_slots {
        enc.str(host);
        enc.u8(*idx);
    }
    enc.bool(job.completed);
}

fn decode_jobs(dec: &mut Decoder<'_>) -> Result<Vec<AccountedJob>, CheckpointError> {
    let n = dec.len("job count")?;
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = dec.u64()?;
        let name = dec.str("job name")?;
        let submit = Timestamp::from_unix(dec.u64()?);
        let start = Timestamp::from_unix(dec.u64()?);
        let end = Timestamp::from_unix(dec.u64()?);
        let gpus = dec.u32()?;
        let n_slots = dec.len("slot count")?;
        let mut gpu_slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let host = dec.str("slot host")?;
            let idx = dec.u8()?;
            gpu_slots.push((host, idx));
        }
        let completed = dec.bool("job state")?;
        jobs.push(AccountedJob {
            id,
            name,
            submit,
            start,
            end,
            gpus,
            gpu_slots,
            completed,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::LogLine;

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn xid_line(secs: u64, host: &str, gpu: u8, code: u16) -> String {
        let mut line = XidEvent::new(
            op_time(secs),
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "detail",
        )
        .to_log_line()
        .to_string();
        line.push('\n');
        line
    }

    fn noise_line(secs: u64, host: &str) -> String {
        let mut line = LogLine::new(op_time(secs), host, "kernel", "usb 1-1 connected").to_string();
        line.push('\n');
        line
    }

    /// Log with same-second host ties, duplicate bursts, exact-window
    /// spacing, noise, and corruption.
    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        for (secs, host, gpu, code) in [
            (1000, "gpub003", 0, 79),
            (1000, "gpub001", 0, 79), // same-second tie, later host first
            (1005, "gpub001", 0, 79), // merges
            (1020, "gpub003", 0, 79), // exactly Δt = 20 s after its anchor
            (1041, "gpub003", 0, 79), // 21 s after new anchor: new error
            (2000, "gpub002", 1, 119),
        ] {
            log.extend_from_slice(xid_line(secs, host, gpu, code).as_bytes());
        }
        log.extend_from_slice(noise_line(2100, "gpub001").as_bytes());
        log.extend_from_slice(b"\xFF\xFE not a line\nMar 14 03:2\n");
        log
    }

    fn batch_reports(log: &[u8]) -> (StudyReport, QuarantineReport) {
        Pipeline::delta().run_lenient(log, 2024, "", "", "")
    }

    fn render(r: &StudyReport) -> String {
        crate::report::full(r)
    }

    #[test]
    fn single_push_matches_batch() {
        let log = sample_log();
        let (batch, batch_q) = batch_reports(&log);
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        engine.push_log(&log);
        let (report, quarantine) = engine.finalize();
        assert_eq!(report.errors, batch.errors);
        assert_eq!(render(&report), render(&batch));
        assert_eq!(quarantine.ledger.counts(), batch_q.ledger.counts());
        assert_eq!(quarantine.ledger.exemplars(), batch_q.ledger.exemplars());
        assert_eq!(quarantine.caveats, batch_q.caveats);
    }

    #[test]
    fn byte_at_a_time_matches_batch() {
        let log = sample_log();
        let (batch, batch_q) = batch_reports(&log);
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        for b in &log {
            engine.push_log(std::slice::from_ref(b));
        }
        let (report, quarantine) = engine.finalize();
        assert_eq!(render(&report), render(&batch));
        assert_eq!(quarantine.ledger.exemplars(), batch_q.ledger.exemplars());
    }

    #[test]
    fn materialize_is_read_only() {
        let log = sample_log();
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        let half = log.len() / 2;
        engine.push_log(&log[..half]);
        let mid = engine.materialize();
        // Materializing must not consume the carry or perturb the stream.
        engine.push_log(&log[half..]);
        let (full, _) = engine.finalize();
        let (batch, _) = batch_reports(&log);
        assert_eq!(render(&full), render(&batch));
        // And the mid-stream view matches the batch run over the prefix.
        let (batch_mid, _) = batch_reports(&log[..half]);
        assert_eq!(render(&mid), render(&batch_mid));
    }

    #[test]
    fn checkpoint_round_trips_at_every_byte() {
        let log = sample_log();
        let (batch, batch_q) = batch_reports(&log);
        for cut in (0..=log.len()).step_by(7) {
            let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
            engine.push_log(&log[..cut]);
            let ck = engine.checkpoint();
            let loaded = Checkpoint::from_bytes(ck.as_bytes().to_vec()).unwrap();
            let mut resumed = StreamingPipeline::restore(&loaded).unwrap();
            assert_eq!(resumed.log_bytes_fed(), cut as u64, "cut={cut}");
            resumed.push_log(&log[cut..]);
            let (report, quarantine) = resumed.finalize();
            assert_eq!(render(&report), render(&batch), "cut={cut}");
            assert_eq!(
                quarantine.ledger.exemplars(),
                batch_q.ledger.exemplars(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn csv_feeds_match_batch_at_any_chunking() {
        let jobs_csv = format!(
            "{JOB_HEADER}\n1,train,{},{},{},1,gpub001:0,COMPLETED\nbad,row\n\n\
             2,eval,{},{},{},1,gpub001:0,FAILED\n",
            op_time(0),
            op_time(10),
            op_time(500),
            op_time(0),
            op_time(990),
            op_time(1100),
        );
        let outages_csv = format!("{OUTAGE_HEADER}\ngpub001,{},1800\nnope\n", op_time(1300));
        let log = sample_log();
        let (batch, batch_q) =
            Pipeline::delta().run_lenient(log.as_slice(), 2024, &jobs_csv, "", &outages_csv);
        for chunk in [1, 3, 9, jobs_csv.len()] {
            let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
            engine.push_log(&log);
            engine.finish_log();
            for piece in jobs_csv.as_bytes().chunks(chunk) {
                engine.push_gpu_jobs_csv(std::str::from_utf8(piece).unwrap());
            }
            for piece in outages_csv.as_bytes().chunks(chunk) {
                engine.push_outages_csv(std::str::from_utf8(piece).unwrap());
            }
            let (report, quarantine) = engine.finalize();
            assert_eq!(render(&report), render(&batch), "chunk={chunk}");
            assert_eq!(
                quarantine.ledger.exemplars(),
                batch_q.ledger.exemplars(),
                "chunk={chunk}"
            );
            assert_eq!(
                report.impact.gpu_failed_jobs(),
                batch.impact.gpu_failed_jobs()
            );
        }
    }

    #[test]
    fn live_counters_track_the_coalesced_stream() {
        let log = sample_log();
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        engine.push_log(&log);
        engine.finish_log();
        // Flush the tie buffer by materializing a clone and compare
        // against its error list.
        let report = engine.materialize();
        let total = report.errors.len() as u64;
        // The engine's own counters lag by the tie buffer; rebuild over
        // the materialized list must equal direct tracking after a flush.
        let rebuilt = LiveCounters::rebuild(engine.errors());
        assert_eq!(&rebuilt, engine.live());
        assert!(engine.live().total_errors() <= total);
        let (host, _, n) = engine.live().hottest_gpu().unwrap();
        assert_eq!(host, "gpub003");
        assert_eq!(n, 2);
        assert_eq!(
            engine.live().kind(ErrorKind::FallenOffBus).raw_lines,
            engine
                .live()
                .kinds()
                .filter(|(k, _)| *k == ErrorKind::FallenOffBus)
                .map(|(_, t)| t.raw_lines)
                .sum::<u64>()
        );
        assert!(engine.live().gpus().count() >= 2);
        assert_eq!(
            engine
                .live()
                .gpu_errors("gpub003", PciAddr::for_gpu_index(0)),
            2
        );
    }

    #[test]
    fn truncated_checkpoints_never_panic() {
        let log = sample_log();
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        engine.push_log(&log);
        let bytes = engine.checkpoint().into_bytes();
        for cut in 0..bytes.len() {
            // A decode error means the header already rejected it: fine.
            if let Ok(ck) = Checkpoint::from_bytes(bytes[..cut].to_vec()) {
                assert!(
                    StreamingPipeline::restore(&ck).is_err(),
                    "prefix of {cut} bytes restored"
                );
            }
        }
    }

    #[test]
    fn corrupted_checkpoint_fields_are_typed_errors() {
        let engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        let bytes = engine.checkpoint().into_bytes();
        // Flip every byte in turn; restore must never panic. (Some flips
        // still decode — e.g. a counter value — which is fine; structural
        // fields must reject.)
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            if let Ok(ck) = Checkpoint::from_bytes(corrupt) {
                let _ = StreamingPipeline::restore(&ck);
            }
        }
    }

    #[test]
    fn state_size_is_bounded_by_analysis_state_not_stream_length() {
        let mut engine = StreamingPipeline::new(Pipeline::delta(), 2024);
        // A storm of duplicates: thousands of raw lines, a handful of
        // coalesced errors. State must not grow with the line count.
        engine.push_log(xid_line(0, "gpub001", 0, 79).as_bytes());
        engine.push_log(xid_line(1, "gpub001", 0, 79).as_bytes());
        let size_early = engine.state_size_bytes();
        for i in 0..2000u64 {
            engine.push_log(xid_line(2 + i / 100, "gpub001", 0, 79).as_bytes());
        }
        // Advance past the storm so the one-second tie buffer (the only
        // per-event state) flushes into the coalescer.
        engine.push_log(xid_line(100, "gpub001", 0, 79).as_bytes());
        let size_late = engine.state_size_bytes();
        assert!(
            size_late < size_early + 4096,
            "state grew with raw lines: {size_early} -> {size_late}"
        );
    }
}
