//! Renderers: every table and figure of the paper, as aligned ASCII (for
//! terminals and EXPERIMENTS.md) and CSV (for downstream plotting).

use crate::pipeline::StudyReport;
use simtime::Phase;
use std::fmt::Write as _;
use xid::ErrorKind;

/// The Table I row order (with the synthetic uncorrectable row in the
/// paper's position, after DBE).
fn table1_rows() -> Vec<Table1Row> {
    use ErrorKind::*;
    vec![
        Table1Row::Kind(MmuError, "XID 31"),
        Table1Row::Kind(DoubleBitError, "XID 48"),
        Table1Row::Uncorrectable,
        Table1Row::Kind(RowRemapEvent, "XID 63"),
        Table1Row::Kind(RowRemapFailure, "XID 64"),
        Table1Row::Kind(NvlinkError, "XID 74"),
        Table1Row::Kind(FallenOffBus, "XID 79"),
        Table1Row::Kind(ContainedMemoryError, "XID 94"),
        Table1Row::Kind(UncontainedMemoryError, "XID 95"),
        Table1Row::Kind(GspError, "XID 119/120"),
        Table1Row::Kind(PmuSpiError, "XID 122/123"),
    ]
}

enum Table1Row {
    Kind(ErrorKind, &'static str),
    Uncorrectable,
}

fn fmt_opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(v) if v >= 1000.0 => format!("{:.0}", v),
        Some(v) => format!("{v:.*}", decimals),
        None => "-".to_owned(),
    }
}

/// Renders Table I: per-kind counts and MTBE per phase.
pub fn table1(report: &StudyReport) -> String {
    let s = &report.stats;
    let hours = |p| s.phase_hours(p);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<26} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "Code", "Event", "Pre-op", "Op", "PreSysMTBE", "PreNodeMTBE", "OpSysMTBE", "OpNodeMTBE"
    );
    let mtbe = |count: u64, phase: Phase| {
        if count == 0 {
            (None, None)
        } else {
            let sys = hours(phase) / count as f64;
            (Some(sys), Some(sys * s.node_count() as f64))
        }
    };
    for row in table1_rows() {
        let (code, name, pre, op) = match row {
            Table1Row::Kind(kind, code) => (
                code,
                kind.abbreviation(),
                s.count(kind, Phase::PreOp),
                s.count(kind, Phase::Op),
            ),
            Table1Row::Uncorrectable => (
                "-",
                "Uncorrectable ECC Errors",
                s.uncorrectable_count(Phase::PreOp),
                s.uncorrectable_count(Phase::Op),
            ),
        };
        let (pre_sys, pre_node) = mtbe(pre, Phase::PreOp);
        let (op_sys, op_node) = mtbe(op, Phase::Op);
        let _ = writeln!(
            out,
            "{:<12} {:<26} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
            code,
            name,
            pre,
            op,
            fmt_opt(pre_sys, 1),
            fmt_opt(pre_node, 0),
            fmt_opt(op_sys, 1),
            fmt_opt(op_node, 0)
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:<26} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "TOTAL",
        "(incl. uncorrectable row)",
        s.total_count(Phase::PreOp),
        s.total_count(Phase::Op),
        fmt_opt(s.overall_mtbe_system(Phase::PreOp), 1),
        fmt_opt(s.overall_mtbe_per_node(Phase::PreOp), 0),
        fmt_opt(s.overall_mtbe_system(Phase::Op), 1),
        fmt_opt(s.overall_mtbe_per_node(Phase::Op), 0)
    );
    if let Some(outlier) = report.outlier() {
        let _ = writeln!(
            out,
            "* outlier rule: excluded {} {} errors from {} (pre-op storm)",
            outlier.excluded_errors,
            outlier.kind.abbreviation(),
            outlier.host
        );
    }
    out
}

/// Table I as CSV.
pub fn table1_csv(report: &StudyReport) -> String {
    let s = &report.stats;
    let mut out = String::from(
        "code,event,pre_count,op_count,pre_sys_mtbe_h,pre_node_mtbe_h,op_sys_mtbe_h,op_node_mtbe_h\n",
    );
    let cell = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.3}"));
    for row in table1_rows() {
        let (code, name, pre, op) = match row {
            Table1Row::Kind(kind, code) => (
                code,
                kind.abbreviation(),
                s.count(kind, Phase::PreOp),
                s.count(kind, Phase::Op),
            ),
            Table1Row::Uncorrectable => (
                "-",
                "Uncorrectable ECC Errors",
                s.uncorrectable_count(Phase::PreOp),
                s.uncorrectable_count(Phase::Op),
            ),
        };
        let sys = |c: u64, p| (c > 0).then(|| s.phase_hours(p) / c as f64);
        let node = |c: u64, p| sys(c, p).map(|m| m * s.node_count() as f64);
        let _ = writeln!(
            out,
            "{code},{name},{pre},{op},{},{},{},{}",
            cell(sys(pre, Phase::PreOp)),
            cell(node(pre, Phase::PreOp)),
            cell(sys(op, Phase::Op)),
            cell(node(op, Phase::Op)),
        );
    }
    out
}

/// Renders Table II: per-kind job failure probabilities.
pub fn table2(report: &StudyReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<26} {:>12} {:>12} {:>10}",
        "XID", "GPU Error", "FailedJobs", "Encounters", "P(fail)%"
    );
    for (kind, impact) in report.impact.kinds() {
        let _ = writeln!(
            out,
            "{:<10} {:<26} {:>12} {:>12} {:>10}",
            kind.primary_code(),
            kind.abbreviation(),
            impact.failed,
            impact.encountered,
            fmt_opt(impact.failure_probability().map(|p| p * 100.0), 2)
        );
    }
    let _ = writeln!(
        out,
        "total GPU-failed jobs: {}",
        report.impact.gpu_failed_jobs()
    );
    out
}

/// Table II as CSV.
pub fn table2_csv(report: &StudyReport) -> String {
    let mut out = String::from("xid,error,failed_jobs,encounters,failure_probability\n");
    for (kind, impact) in report.impact.kinds() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            kind.primary_code(),
            kind.abbreviation(),
            impact.failed,
            impact.encountered,
            impact
                .failure_probability()
                .map_or(String::new(), |p| format!("{p:.4}"))
        );
    }
    out
}

/// Renders Table III: the workload mix.
pub fn table3(report: &StudyReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "GPUs", "Count", "Share%", "MeanMin", "P50Min", "P99Min", "ML-kGPUh", "Non-kGPUh"
    );
    for row in &report.mix {
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8.3} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>9.1}",
            row.label,
            row.count,
            row.share_pct,
            row.mean_mins,
            row.p50_mins,
            row.p99_mins,
            row.ml_gpu_hours_k,
            row.non_ml_gpu_hours_k
        );
    }
    if let Some(gpu) = report.gpu_success {
        let _ = writeln!(out, "GPU job success rate: {:.2}%", gpu * 100.0);
    }
    if let Some(cpu) = report.cpu_success {
        let _ = writeln!(out, "CPU job success rate: {:.2}%", cpu * 100.0);
    }
    out
}

/// Table III as CSV.
pub fn table3_csv(report: &StudyReport) -> String {
    let mut out = String::from(
        "bucket,count,share_pct,mean_mins,p50_mins,p99_mins,ml_gpu_hours_k,non_ml_gpu_hours_k\n",
    );
    for row in &report.mix {
        let _ = writeln!(
            out,
            "{},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2}",
            row.label,
            row.count,
            row.share_pct,
            row.mean_mins,
            row.p50_mins,
            row.p99_mins,
            row.ml_gpu_hours_k,
            row.non_ml_gpu_hours_k
        );
    }
    out
}

/// Renders Figure 2: the unavailability-duration distribution plus the
/// §V-C headline numbers.
pub fn figure2(report: &StudyReport) -> String {
    let mut out = String::new();
    let hist = report.availability.duration_histogram(4.0, 16);
    let _ = writeln!(out, "Unavailability time distribution (hours):");
    let _ = write!(out, "{hist}");
    let _ = writeln!(out, "outages: {}", report.availability.outage_count());
    let _ = writeln!(
        out,
        "MTTR: {} h",
        fmt_opt(report.availability.mttr_hours(), 2)
    );
    let _ = writeln!(
        out,
        "total downtime: {:.0} node-hours",
        report.availability.total_downtime_node_hours()
    );
    let _ = writeln!(out, "MTTF estimate: {} h", fmt_opt(report.mttf_hours, 1));
    if let Some(a) = report.availability_estimate() {
        let _ = writeln!(
            out,
            "availability: {:.2}% ({:.1} minutes downtime per node-day)",
            a * 100.0,
            crate::availability::Availability::downtime_minutes_per_day(a)
        );
    }
    out
}

/// Figure 2 series as CSV (`bin_start_h,bin_end_h,count`).
pub fn figure2_csv(report: &StudyReport) -> String {
    let hist = report.availability.duration_histogram(4.0, 16);
    let mut out = String::from("bin_start_h,bin_end_h,count\n");
    for (i, &c) in hist.bin_counts().iter().enumerate() {
        let (a, b) = hist.bin_edges(i);
        let _ = writeln!(out, "{a:.2},{b:.2},{c}");
    }
    let _ = writeln!(out, "4.00,inf,{}", hist.overflow());
    out
}

/// Renders the complete report — every table, the figure, the findings
/// checklist and the deep analyses — as one document.
pub fn full(report: &StudyReport) -> String {
    let findings = crate::findings::Findings::evaluate(report);
    format!(
        "=== Table I ===\n{}\n=== Table II ===\n{}\n=== Table III ===\n{}\n=== Figure 2 ===\n{}\n=== Findings ===\n{}\n\n=== Deep analyses ===\n{}",
        table1(report),
        table2(report),
        table3(report),
        figure2(report),
        findings,
        deep(report)
    )
}

/// Renders the extension analyses — per-GPU concentration, burstiness and
/// GSP survival — as one text section (the CLI's `--deep` output and the
/// fleet-health example both use this).
pub fn deep(report: &StudyReport) -> String {
    use crate::{burst, spatial, survival};
    use simtime::Duration;
    use std::collections::BTreeSet;

    let mut out = String::new();
    let _ = writeln!(out, "— per-GPU concentration —");
    let conc = spatial::Concentration::compute(&report.errors, &[], None);
    let _ = writeln!(
        out,
        "{} errors across {} GPUs; top-1 share {:.1}%, top-5 share {:.1}%",
        conc.total(),
        conc.affected_gpus(),
        conc.top_k_share(1) * 100.0,
        conc.top_k_share(5) * 100.0
    );
    for hot in conc.hot_gpus(0.10) {
        let _ = writeln!(
            out,
            "  replacement candidate: {} {} ({} errors)",
            hot.host, hot.pci, hot.errors
        );
    }

    let _ = writeln!(
        out,
        "
— burstiness —"
    );
    let episodes = burst::detect_episodes(&report.errors, Duration::from_hours(6));
    for kind in [
        ErrorKind::GspError,
        ErrorKind::NvlinkError,
        ErrorKind::MmuError,
    ] {
        let ia = burst::inter_arrivals(&report.errors, kind);
        let summary = burst::summarize_episodes(&episodes, kind);
        let _ = writeln!(
            out,
            "  {:<14} CoV {}  episodes {} (mean size {:.1}, max {})",
            kind.abbreviation(),
            ia.cov().map_or("-".into(), |c| format!("{c:.2}")),
            summary.episodes,
            summary.mean_size,
            summary.max_size
        );
    }

    let _ = writeln!(
        out,
        "
— GSP survival (operational period) —"
    );
    let window = report.config.periods.op;
    let gpus: Vec<(String, hpclog::PciAddr)> = report
        .errors
        .iter()
        .map(|e| (e.host.clone(), e.pci))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let lifetimes = survival::gpu_lifetimes(&report.errors, &gpus, &[ErrorKind::GspError], window);
    let km = survival::KaplanMeier::fit(&lifetimes);
    let _ = writeln!(
        out,
        "  {} GPUs observed (error-logging population), {} with GSP events",
        km.subjects(),
        km.observed_events()
    );
    for h in [1000.0, 5000.0, 10000.0, 20000.0] {
        let _ = writeln!(out, "  S({h:>6.0} h) = {:.3}", km.survival_at(h));
    }
    match km.median_hours() {
        Some(m) => {
            let _ = writeln!(out, "  median time to first GSP error: {m:.0} h");
        }
        None => {
            let _ = writeln!(out, "  median time to first GSP error: beyond the window");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AccountedJob, OutageRecord};
    use crate::pipeline::Pipeline;
    use hpclog::{PciAddr, XidEvent};
    use simtime::{Duration, StudyPeriods};
    use xid::XidCode;

    fn sample_report() -> StudyReport {
        let op = StudyPeriods::delta().op.start;
        let mk = |secs: u64, code: u16| {
            XidEvent::new(
                op + Duration::from_secs(secs),
                "gpub001",
                PciAddr::for_gpu_index(0),
                XidCode::new(code),
                "",
            )
        };
        let events = vec![mk(100, 119), mk(5000, 74), mk(9000, 31), mk(12_000, 63)];
        let jobs = vec![AccountedJob {
            id: 1,
            name: "train_model".to_owned(),
            submit: op,
            start: op + Duration::from_secs(50),
            end: op + Duration::from_secs(110),
            gpus: 1,
            gpu_slots: vec![("gpub001".to_owned(), 0)],
            completed: false,
        }];
        let outages = vec![OutageRecord {
            host: "gpub001".to_owned(),
            start: op + Duration::from_secs(500),
            duration: Duration::from_mins(53),
        }];
        Pipeline::delta().run_events(events, None, &jobs, &[], &outages)
    }

    #[test]
    fn table1_contains_all_rows_and_total() {
        let t = table1(&sample_report());
        for label in [
            "MMU Error",
            "DBE",
            "RRE",
            "RRF",
            "NVLink",
            "GSP",
            "PMU",
            "TOTAL",
        ] {
            assert!(t.contains(label), "missing {label} in:\n{t}");
        }
        assert!(t.contains("Uncorrectable ECC Errors"));
    }

    #[test]
    fn table1_csv_has_header_and_rows() {
        let csv = table1_csv(&sample_report());
        assert!(csv.starts_with("code,event,"));
        assert_eq!(csv.lines().count(), 12); // header + 11 rows
    }

    #[test]
    fn table2_reports_probabilities() {
        let t = table2(&sample_report());
        assert!(t.contains("GSP Error"));
        assert!(t.contains("100.00")); // the failed job died within 20 s
        assert!(t.contains("total GPU-failed jobs: 1"));
        let csv = table2_csv(&sample_report());
        assert!(csv.starts_with("xid,error,"));
        assert!(csv.contains("119,GSP Error,1,1,1.0000"));
    }

    #[test]
    fn table3_lists_buckets_and_rates() {
        let t = table3(&sample_report());
        assert!(t.contains("2-4"));
        assert!(t.contains("256+"));
        assert!(t.contains("GPU job success rate: 0.00%"));
        let csv = table3_csv(&sample_report());
        assert_eq!(csv.lines().count(), 9); // header + 8 buckets
    }

    #[test]
    fn figure2_shows_mttr_and_availability() {
        let f = figure2(&sample_report());
        assert!(f.contains("MTTR: 0.88 h"), "{f}");
        assert!(f.contains("availability:"), "{f}");
        let csv = figure2_csv(&sample_report());
        assert!(csv.starts_with("bin_start_h,"));
        assert!(csv.contains("4.00,inf,"));
        assert_eq!(csv.lines().count(), 18); // header + 16 bins + overflow
    }

    #[test]
    fn full_concatenates_everything() {
        let f = full(&sample_report());
        for section in [
            "Table I",
            "Table II",
            "Table III",
            "Figure 2",
            "Findings",
            "Deep",
        ] {
            assert!(f.contains(section), "missing {section}");
        }
    }

    #[test]
    fn deep_renders_sections() {
        let d = deep(&sample_report());
        assert!(d.contains("concentration"));
        assert!(d.contains("burstiness"));
        assert!(d.contains("GSP survival"));
        assert!(d.contains("CoV"));
    }

    #[test]
    fn empty_report_renders_without_panicking() {
        let report = Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
        for rendered in [
            table1(&report),
            table1_csv(&report),
            table2(&report),
            table2_csv(&report),
            table3(&report),
            table3_csv(&report),
            figure2(&report),
            figure2_csv(&report),
            deep(&report),
        ] {
            assert!(!rendered.is_empty());
        }
    }
}
