//! Versioned binary checkpoints for the incremental pipeline.
//!
//! The workspace builds with zero external crates, so there is no serde to
//! lean on; instead checkpoints use a deliberately boring hand-rolled wire
//! format: a magic prefix, a format version, little-endian fixed-width
//! integers, length-prefixed byte strings, and a trailing end marker. The
//! codec's one hard rule is that *no input can make the decoder panic*:
//! every read is bounds-checked and every structural defect surfaces as a
//! typed [`CheckpointError`]. Truncate a snapshot at any byte, flip any
//! byte — loading returns an error, never UB and never a `panic!`.
//!
//! The encoding of the pipeline state itself lives with the state, in
//! [`crate::incremental`]; this module owns the container format and the
//! primitive readers/writers. The [`Encoder`]/[`Decoder`] pair is public
//! so downstream subsystems (the `servd` ingest tier wraps an engine
//! checkpoint in its own envelope) can speak the same wire discipline
//! instead of inventing a second codec.
//!
//! [`write_atomic`] is the one blessed way to put a checkpoint (or any
//! snapshot-like artifact, e.g. the ingest write-ahead segment) on disk:
//! temp file in the same directory, flush, fsync, atomic rename. A crash
//! at any instant leaves either the previous complete file or the new
//! complete file — never a torn hybrid.

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

/// A serialized [`StreamingPipeline`](crate::incremental::StreamingPipeline)
/// state: an opaque, versioned byte blob.
///
/// Produced by
/// [`StreamingPipeline::checkpoint`](crate::incremental::StreamingPipeline::checkpoint)
/// and consumed by
/// [`StreamingPipeline::restore`](crate::incremental::StreamingPipeline::restore).
/// [`from_bytes`](Checkpoint::from_bytes) validates the container header
/// (magic and version); full structural validation happens at restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    bytes: Vec<u8>,
}

impl Checkpoint {
    /// Leading magic bytes of every checkpoint.
    pub const MAGIC: [u8; 8] = *b"DGR-CKPT";
    /// Current format version. Bumped on any wire-format change; older
    /// readers reject newer snapshots with
    /// [`CheckpointError::UnsupportedVersion`] instead of misparsing them.
    pub const VERSION: u32 = 1;
    /// Trailing end marker, guarding against silent truncation at a field
    /// boundary.
    pub(crate) const END_MARKER: u32 = 0x444E_4521; // "END!"

    /// Wraps freshly encoded bytes (encoder-side constructor).
    pub(crate) fn from_encoder(bytes: Vec<u8>) -> Self {
        Checkpoint { bytes }
    }

    /// Adopts bytes read back from storage, verifying the container
    /// header.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when shorter than a header,
    /// [`CheckpointError::BadMagic`] or
    /// [`CheckpointError::UnsupportedVersion`] when the header is wrong.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Result<Self, CheckpointError> {
        let bytes = bytes.into();
        let mut dec = Decoder::new(&bytes);
        dec.header()?;
        Ok(Checkpoint { bytes })
    }

    /// The serialized form, ready to write to storage.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The format version recorded in the header.
    pub fn version(&self) -> u32 {
        // from_bytes/from_encoder guarantee a well-formed header.
        let mut v = [0u8; 4];
        v.copy_from_slice(&self.bytes[Self::MAGIC.len()..Self::MAGIC.len() + 4]);
        u32::from_le_bytes(v)
    }
}

/// Why a checkpoint could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The blob does not start with [`Checkpoint::MAGIC`] — not a
    /// checkpoint at all.
    BadMagic,
    /// The blob is a checkpoint, but from a format this build cannot read.
    UnsupportedVersion(u32),
    /// The blob ends mid-field; `offset` is where the decoder ran dry.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// Bytes remain after the end marker — the blob was concatenated or
    /// padded.
    TrailingBytes {
        /// How many bytes follow the end marker.
        extra: usize,
    },
    /// A field decoded but its value is structurally impossible; `what`
    /// names the field.
    Invalid {
        /// Which field was rejected.
        what: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {})",
                    Checkpoint::VERSION
                )
            }
            CheckpointError::Truncated { offset } => {
                write!(f, "checkpoint truncated at byte {offset}")
            }
            CheckpointError::TrailingBytes { extra } => {
                write!(
                    f,
                    "{extra} unexpected bytes after the checkpoint end marker"
                )
            }
            CheckpointError::Invalid { what } => {
                write!(f, "checkpoint field {what:?} has an impossible value")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Writes `bytes` to `path` atomically: a `<name>.tmp` sibling in the
/// same directory is written, flushed, fsynced and then renamed over the
/// target. A crash at any point leaves either the previous complete file
/// or the new complete file — the torn-checkpoint failure mode cannot
/// occur. Both `stream_study --checkpoint` and the `servd` ingest tier
/// route their snapshot writes through here.
///
/// # Errors
///
/// Any underlying filesystem error (create, write, sync, rename).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.flush()?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Little-endian primitive writer backing the checkpoint encoder.
///
/// Public so sibling subsystems (the `servd` ingest envelope) extend the
/// checkpoint format with the same primitives instead of a second codec.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A new encoder with the container header already written.
    pub fn new() -> Self {
        let mut enc = Encoder { buf: Vec::new() };
        enc.buf.extend_from_slice(&Checkpoint::MAGIC);
        enc.u32(Checkpoint::VERSION);
        enc
    }

    /// Writes the end marker and seals the checkpoint.
    pub fn finish(mut self) -> Checkpoint {
        self.u32(Checkpoint::END_MARKER);
        Checkpoint::from_encoder(self.buf)
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` (two's-complement, little-endian).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a boolean as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an optional `u64` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader: the decoding dual of [`Encoder`].
///
/// Every method returns `Err` instead of panicking when the input runs
/// out or a value is malformed.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Validates magic + version, leaving the cursor at the first body
    /// field.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`] / [`CheckpointError::UnsupportedVersion`]
    /// on a wrong header, [`CheckpointError::Truncated`] when too short.
    pub fn header(&mut self) -> Result<(), CheckpointError> {
        let magic = self.take(Checkpoint::MAGIC.len())?;
        if magic != Checkpoint::MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = self.u32()?;
        if version != Checkpoint::VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        Ok(())
    }

    /// Consumes the end marker and requires the input to end with it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] on a wrong marker,
    /// [`CheckpointError::TrailingBytes`] when bytes follow it.
    pub fn finish(&mut self) -> Result<(), CheckpointError> {
        let marker = self.u32()?;
        if marker != Checkpoint::END_MARKER {
            return Err(CheckpointError::Invalid { what: "end marker" });
        }
        let extra = self.buf.len() - self.pos;
        if extra > 0 {
            return Err(CheckpointError::TrailingBytes { extra });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CheckpointError::Truncated { offset: self.pos })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Decodes one byte.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input (likewise for
    /// every fixed-width decode below).
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        let mut v = [0u8; 2];
        v.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(v))
    }

    /// Decodes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let mut v = [0u8; 4];
        v.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(v))
    }

    /// Decodes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut v = [0u8; 8];
        v.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(v))
    }

    /// Decodes an `i64` (two's complement over the `u64` encoding).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input.
    pub fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(self.u64()? as i64)
    }

    /// Decodes an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] past the end of input.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decodes a bool, rejecting anything but 0/1.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] (tagged `what`) on other byte values.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Invalid { what }),
        }
    }

    /// Decodes an `Option<u64>` (presence byte + value).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] (tagged `what`) on a bad presence byte.
    pub fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CheckpointError::Invalid { what }),
        }
    }

    /// A length usable for pre-allocation: decoded, converted to `usize`,
    /// and sanity-bounded by the bytes actually remaining (each encoded
    /// element costs ≥ 1 byte, so a count beyond that is corruption — this
    /// keeps a flipped length byte from demanding a huge allocation).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] (tagged `what`) on an oversized count.
    pub fn len(&mut self, what: &'static str) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| CheckpointError::Invalid { what })?;
        if n > self.buf.len() - self.pos {
            return Err(CheckpointError::Invalid { what });
        }
        Ok(n)
    }

    /// Decodes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] / [`CheckpointError::Truncated`] on a
    /// bad length or short input.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, CheckpointError> {
        let n = self.len(what)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Decodes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] (tagged `what`) on non-UTF-8 bytes.
    pub fn str(&mut self, what: &'static str) -> Result<String, CheckpointError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw).map_err(|_| CheckpointError::Invalid { what })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut enc = Encoder::new();
        enc.u64(42);
        enc.str("hello");
        enc.opt_u64(Some(7));
        enc.bool(true);
        enc.f64(0.5);
        enc.finish()
    }

    #[test]
    fn round_trip() {
        let ck = sample();
        let loaded = Checkpoint::from_bytes(ck.as_bytes().to_vec()).unwrap();
        assert_eq!(loaded, ck);
        assert_eq!(loaded.version(), Checkpoint::VERSION);
        let mut dec = Decoder::new(loaded.as_bytes());
        dec.header().unwrap();
        assert_eq!(dec.u64().unwrap(), 42);
        assert_eq!(dec.str("s").unwrap(), "hello");
        assert_eq!(dec.opt_u64("o").unwrap(), Some(7));
        assert!(dec.bool("b").unwrap());
        assert_eq!(dec.f64().unwrap(), 0.5);
        dec.finish().unwrap();
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error() {
        let ck = sample();
        let bytes = ck.as_bytes();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            // Either the container header already fails, or the body
            // decode must fail — never a success, never a panic.
            let mut dec = Decoder::new(prefix);
            let result = dec.header().and_then(|()| {
                dec.u64()?;
                dec.str("s")?;
                dec.opt_u64("o")?;
                dec.bool("b")?;
                dec.f64()?;
                dec.finish()
            });
            assert!(result.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bad_magic_and_version_are_distinguished() {
        let mut bytes = sample().into_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(bytes).unwrap_err(),
            CheckpointError::BadMagic
        );

        let mut bytes = sample().into_bytes();
        bytes[Checkpoint::MAGIC.len()] = 99;
        assert_eq!(
            Checkpoint::from_bytes(bytes).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().into_bytes();
        bytes.push(0);
        let ck = Checkpoint::from_bytes(bytes).unwrap(); // header is fine
        let mut dec = Decoder::new(ck.as_bytes());
        dec.header().unwrap();
        dec.u64().unwrap();
        dec.str("s").unwrap();
        dec.opt_u64("o").unwrap();
        dec.bool("b").unwrap();
        dec.f64().unwrap();
        assert_eq!(
            dec.finish().unwrap_err(),
            CheckpointError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn oversized_length_prefix_is_invalid_not_oom() {
        let mut enc = Encoder::new();
        enc.u64(u64::MAX); // a length prefix promising 2^64 bytes
        let bytes = enc.finish().into_bytes();
        let mut dec = Decoder::new(&bytes);
        dec.header().unwrap();
        assert_eq!(
            dec.bytes("blob").unwrap_err(),
            CheckpointError::Invalid { what: "blob" }
        );
    }

    #[test]
    fn errors_render_for_humans() {
        for err in [
            CheckpointError::BadMagic,
            CheckpointError::UnsupportedVersion(9),
            CheckpointError::Truncated { offset: 3 },
            CheckpointError::TrailingBytes { extra: 2 },
            CheckpointError::Invalid { what: "field" },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    /// Regression for the torn-checkpoint failure mode `write_atomic`
    /// exists to rule out: a crash mid-rewrite must never leave a
    /// truncated file at the live path. The crash is simulated at its
    /// worst point — partial bytes staged in the `.tmp` sibling, rename
    /// never issued — and the live file must still load in full.
    #[test]
    fn write_atomic_never_exposes_a_truncated_tail() {
        let dir = std::env::temp_dir().join(format!("ckpt-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");

        // A good (large) checkpoint is on disk.
        let mut enc = Encoder::new();
        for i in 0..4096u64 {
            enc.u64(i);
        }
        let big = enc.finish();
        write_atomic(&path, big.as_bytes()).unwrap();

        // A later rewrite dies mid-write: torn bytes exist only in the
        // staging sibling, exactly where write_atomic puts them.
        let small = sample();
        let torn = &small.as_bytes()[..13];
        std::fs::write(dir.join("state.ckpt.tmp"), torn).unwrap();
        let loaded = Checkpoint::from_bytes(std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(loaded, big, "live checkpoint was disturbed by the crash");

        // The next successful write replaces the file wholesale — a
        // smaller payload must not leave any stale tail behind — and
        // consumes the stale staging file.
        write_atomic(&path, small.as_bytes()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), small.as_bytes());
        assert!(
            !dir.join("state.ckpt.tmp").exists(),
            "staging file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
