//! Parallel Stage-I drivers with a determinism guarantee.
//!
//! [`Pipeline::run_parallel`] and
//! [`Pipeline::run_lenient_parallel`] are drop-in replacements for
//! [`Pipeline::run`] and [`Pipeline::run_lenient`] that scan Stage I on a
//! scoped worker pool ([`hpclog::shard`]). The contract is strict: at
//! **any** thread count, including one, the [`StudyReport`] is
//! byte-identical to the serial path's — same aggregate numbers, same
//! event listing order, same rendered tables — and a lenient run's
//! [`QuarantineReport`] carries the same counts *and* the same
//! reservoir-sampled exemplars. The differential suite
//! (`tests/parallel_equivalence.rs`) and the property layer
//! (`crates/hpclog/tests/properties.rs`) hold the pipeline to that
//! contract on every CI run.
//!
//! Only Stage I parallelises. Coalescing, statistics, impact and
//! availability all run in well under a millisecond on three years of
//! coalesced errors; the archive scan is where the >1M-line storm lives.

use crate::csvio;
use crate::job::{AccountedJob, OutageRecord};
use crate::pipeline::{Pipeline, QuarantineReport, StudyReport};
use hpclog::archive::Archive;
use hpclog::extract::{ExtractStats, XidExtractor};
use hpclog::quarantine::QuarantineLedger;
use hpclog::XidEvent;

/// Extracts the studied events from `archive` on `threads` workers,
/// returning the canonically ordered stream and merged counters.
///
/// Exposed for benchmarks (E12 times this stage in isolation); pipeline
/// callers should use [`Pipeline::run_parallel`].
pub fn parallel_extract(archive: &Archive, threads: usize) -> (Vec<XidEvent>, ExtractStats) {
    if obs::is_enabled() {
        let label = threads.to_string();
        obs::counter("core_parallel_extracts_total", &[("threads", &label)]).inc();
    }
    let template = XidExtractor::studied_only(2024);
    hpclog::shard::extract_sharded(archive, &template, threads)
}

impl Pipeline {
    /// [`run`](Self::run) with Stage I sharded by host across `threads`
    /// scoped workers.
    ///
    /// Byte-identical to [`run`](Self::run) at every thread count: both
    /// paths canonicalise the event order (see
    /// [`run_events`](Self::run_events)), and per-shard extraction
    /// counters merge by order-insensitive sums.
    pub fn run_parallel(
        &self,
        archive: &Archive,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
        threads: usize,
    ) -> StudyReport {
        let (events, stats) = parallel_extract(archive, threads);
        self.run_events(events, Some(stats), gpu_jobs, cpu_jobs, outages)
    }

    /// [`run_lenient`](Self::run_lenient) with the log scan's
    /// classification phase parallelised across `threads` workers.
    ///
    /// Identical results to the serial lenient path — including ledger
    /// exemplars, which are reservoir-sampled in record order — because
    /// only the order-free classification work is parallel; every
    /// order-dependent effect replays serially (see
    /// [`XidExtractor::scan_reader_lenient_sharded`]).
    pub fn run_lenient_parallel<R: std::io::Read>(
        &self,
        log: R,
        log_year: i32,
        gpu_jobs_csv: &str,
        cpu_jobs_csv: &str,
        outages_csv: &str,
        threads: usize,
    ) -> (StudyReport, QuarantineReport) {
        let mut ledger = QuarantineLedger::new();
        let mut extractor = XidExtractor::studied_only(log_year);
        let events = extractor.scan_reader_lenient_sharded(log, &mut ledger, threads);
        let extract_stats = extractor.stats();
        let gpu_jobs = csvio::parse_jobs_lenient(gpu_jobs_csv, &mut ledger);
        let cpu_jobs = csvio::parse_jobs_lenient(cpu_jobs_csv, &mut ledger);
        let outages = csvio::parse_outages_lenient(outages_csv, &mut ledger);
        let report = self.run_events(events, Some(extract_stats), &gpu_jobs, &cpu_jobs, &outages);
        let quarantine = QuarantineReport::from_scan(ledger, extract_stats);
        (report, quarantine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::{LogLine, PciAddr, Timestamp};
    use simtime::{Duration, StudyPeriods};
    use xid::XidCode;

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn sample_archive() -> Archive {
        let mut archive = Archive::new();
        for (i, host) in ["gpub001", "gpub002", "gpub003"].iter().enumerate() {
            for d in 0..40u64 {
                archive.push(
                    XidEvent::new(
                        op_time(1000 + d * 60),
                        *host,
                        PciAddr::for_gpu_index((i % 8) as u8),
                        if d % 3 == 0 {
                            XidCode::GSP_ERROR
                        } else {
                            XidCode::UNCONTAINED_ECC
                        },
                        "detail",
                    )
                    .to_log_line(),
                );
            }
            archive.push(LogLine::new(
                op_time(500),
                *host,
                "kernel",
                "usb 1-1 connected",
            ));
        }
        archive
    }

    #[test]
    fn run_parallel_matches_run() {
        let archive = sample_archive();
        let pipeline = Pipeline::delta();
        let serial = pipeline.run(&archive, &[], &[], &[]);
        for threads in [1, 2, 4, 8] {
            let par = pipeline.run_parallel(&archive, &[], &[], &[], threads);
            assert_eq!(par.errors, serial.errors, "threads={threads}");
            assert_eq!(par.extract_stats, serial.extract_stats, "threads={threads}");
            assert_eq!(
                crate::report::full(&par),
                crate::report::full(&serial),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_lenient_parallel_matches_run_lenient() {
        let archive = sample_archive();
        let mut log = Vec::new();
        for line in archive.iter() {
            log.extend_from_slice(line.to_string().as_bytes());
            log.push(b'\n');
        }
        // A little corruption so the ledger is non-trivial.
        log.extend_from_slice(b"\xFF\xFE not a line\nMar 14 03:2\n");
        let pipeline = Pipeline::delta();
        let (serial, serial_q) = pipeline.run_lenient(log.as_slice(), 2024, "", "", "");
        for threads in [1, 2, 4, 8] {
            let (par, par_q) =
                pipeline.run_lenient_parallel(log.as_slice(), 2024, "", "", "", threads);
            assert_eq!(par.errors, serial.errors, "threads={threads}");
            assert_eq!(
                crate::report::full(&par),
                crate::report::full(&serial),
                "threads={threads}"
            );
            assert_eq!(
                par_q.ledger.counts(),
                serial_q.ledger.counts(),
                "threads={threads}"
            );
            assert_eq!(
                par_q.ledger.exemplars(),
                serial_q.ledger.exemplars(),
                "threads={threads}"
            );
            assert_eq!(par_q.caveats, serial_q.caveats, "threads={threads}");
        }
    }
}
