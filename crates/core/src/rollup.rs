//! Calendar-aware rollup cubes over a shared aggregation kernel.
//!
//! Every headline artifact of the paper — Table I's per-phase counts,
//! Table II's per-kind impact tallies, Table III's workload mix, the
//! availability figures — is a *grouped fold* over an event stream:
//! classify each row into a key, accumulate per key. [`group_fold`] is
//! that kernel, written once; [`stats`](crate::stats),
//! [`impact`](crate::impact) and [`crate::impact::job_mix`] all route
//! their tallies through it, so the canned paper queries and the serving
//! layer's time-bucketed rollups are the same code path with different
//! key functions.
//!
//! The time-bucketed instantiations live here too:
//!
//! * [`RollupCube`] — per-civil-bucket error counts (total and per
//!   studied kind), built per store shard from time-sorted columns and
//!   k-way merged with [`hpclog::shard::merge_sorted_by`], the same
//!   kernel the ingest pipeline and scatter-gather store use — so the
//!   merged cube is byte-identical whether the store has 1 shard or 8,
//!   by construction.
//! * [`impact_cells`] — distinct GPU-failed jobs per bucket of their
//!   termination instant, total and per attributed kind.
//! * [`availability_cells`] — node-outage downtime seconds apportioned
//!   to the buckets each outage overlaps.
//!
//! Buckets are the DST-correct civil intervals of
//! [`simtime::civiltime`]: a local day is 23 or 25 hours across a DST
//! transition, and every event lands in exactly one bucket.

use crate::impact::JobImpact;
use crate::job::OutageRecord;
use simtime::{Bucket, Timestamp, Tz};
use std::collections::BTreeMap;
use xid::ErrorKind;

/// Number of studied error kinds — the width of per-kind cube columns.
pub const STUDIED_LEN: usize = ErrorKind::STUDIED.len();

/// The column index of a studied kind in a cube's `by_kind` array
/// (Table I order), `None` for unstudied kinds.
pub fn kind_index(kind: ErrorKind) -> Option<usize> {
    ErrorKind::STUDIED.iter().position(|&k| k == kind)
}

/// The shared aggregation kernel: classify each row with `key` (rows
/// yielding `None` are dropped) and fold it into that key's accumulator.
///
/// Deterministic by construction: the result map is keyed in `K`'s order
/// and each group's accumulator sees its rows in input order. Every
/// grouped tally in the crate — Table I phase counts, Table II impact
/// sets, Table III mix buckets, the rollup cubes — is an instantiation
/// of this one fold.
pub fn group_fold<R, K: Ord, A: Default>(
    rows: impl IntoIterator<Item = R>,
    mut key: impl FnMut(&R) -> Option<K>,
    mut fold: impl FnMut(&mut A, R),
) -> BTreeMap<K, A> {
    let mut groups: BTreeMap<K, A> = BTreeMap::new();
    for row in rows {
        if let Some(k) = key(&row) {
            fold(groups.entry(k).or_default(), row);
        }
    }
    groups
}

/// One cell of an error cube: the counts of a single civil bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorCell {
    /// Bucket start (UTC instant), the cube's sort key.
    pub start: Timestamp,
    /// Bucket end (UTC instant, exclusive).
    pub end: Timestamp,
    /// All error rows in the bucket (studied or not).
    pub total: u64,
    /// Per-studied-kind counts, indexed by [`kind_index`].
    pub by_kind: [u64; STUDIED_LEN],
}

impl ErrorCell {
    fn zero(start: Timestamp, end: Timestamp) -> Self {
        ErrorCell {
            start,
            end,
            total: 0,
            by_kind: [0; STUDIED_LEN],
        }
    }

    fn absorb(&mut self, other: &ErrorCell) {
        debug_assert_eq!(self.start, other.start);
        self.total += other.total;
        for (into, from) in self.by_kind.iter_mut().zip(other.by_kind) {
            *into += from;
        }
    }
}

/// A pre-aggregated error rollup for one `(timezone, bucket)` pair:
/// sparse, sorted cells (only buckets containing at least one event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupCube {
    tz: String,
    bucket: Bucket,
    cells: Vec<ErrorCell>,
}

impl RollupCube {
    /// Builds a cube from a **time-ascending** event stream (the order
    /// every store shard and the canonical pipeline output guarantee).
    /// Because bucketing is monotone, equal bucket keys are consecutive
    /// and the build is one linear scan with no intermediate map.
    pub fn build(
        tz: &Tz,
        bucket: Bucket,
        events: impl IntoIterator<Item = (Timestamp, ErrorKind)>,
    ) -> Self {
        let mut cells: Vec<ErrorCell> = Vec::new();
        for (time, kind) in events {
            let start = tz.bucket_start(bucket, time);
            let fresh = match cells.last() {
                Some(cell) => {
                    debug_assert!(cell.start <= start, "events must be time-ascending");
                    cell.start != start
                }
                None => true,
            };
            if fresh {
                cells.push(ErrorCell::zero(start, tz.bucket_end(bucket, time)));
            }
            if let Some(cell) = cells.last_mut() {
                cell.total += 1;
                if let Some(i) = kind_index(kind) {
                    cell.by_kind[i] += 1;
                }
            }
        }
        RollupCube {
            tz: tz.name().to_owned(),
            bucket,
            cells,
        }
    }

    /// K-way merges per-shard cubes into the global cube via
    /// [`hpclog::shard::merge_sorted_by`], summing cells with equal
    /// starts. Addition is commutative, so the result is independent of
    /// how rows were distributed over shards: serial ≡ sharded by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty or the cubes disagree on
    /// timezone/bucket — merging unrelated cubes is a logic error.
    pub fn merge(shards: Vec<RollupCube>) -> RollupCube {
        assert!(!shards.is_empty(), "merge requires at least one cube");
        assert!(
            shards
                .windows(2)
                .all(|w| w[0].tz == w[1].tz && w[0].bucket == w[1].bucket),
            "cannot merge cubes with different timezones or buckets"
        );
        let tz = shards[0].tz.clone();
        let bucket = shards[0].bucket;
        let streams: Vec<Vec<ErrorCell>> = shards.into_iter().map(|c| c.cells).collect();
        let merged = hpclog::shard::merge_sorted_by(streams, |a: &ErrorCell, b: &ErrorCell| {
            a.start.cmp(&b.start)
        });
        let mut cells: Vec<ErrorCell> = Vec::with_capacity(merged.len());
        for cell in merged {
            match cells.last_mut() {
                Some(last) if last.start == cell.start => last.absorb(&cell),
                _ => cells.push(cell),
            }
        }
        RollupCube { tz, bucket, cells }
    }

    /// The timezone name the cube was bucketed in.
    pub fn tz(&self) -> &str {
        &self.tz
    }

    /// The bucket granularity.
    pub fn bucket(&self) -> Bucket {
        self.bucket
    }

    /// The sparse cells, ascending by start.
    pub fn cells(&self) -> &[ErrorCell] {
        &self.cells
    }
}

/// One cell of the impact rollup: distinct GPU-failed jobs whose
/// termination instant falls in the bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpactCell {
    /// Bucket start (UTC instant).
    pub start: Timestamp,
    /// Bucket end (UTC instant, exclusive).
    pub end: Timestamp,
    /// Distinct GPU-failed jobs ending in the bucket.
    pub failed_jobs: u64,
    /// Distinct jobs per attributed kind, indexed by [`kind_index`]. A
    /// job attributed to several kinds counts once per kind (the §V-B
    /// multiple-contributor rule), but once in `failed_jobs`.
    pub failed_by_kind: [u64; STUDIED_LEN],
}

/// Buckets a computed [`JobImpact`] by job-termination instant. Sparse:
/// only buckets with at least one failed job appear.
pub fn impact_cells(tz: &Tz, bucket: Bucket, impact: &JobImpact) -> Vec<ImpactCell> {
    #[derive(Default)]
    struct Acc {
        failed_jobs: u64,
        failed_by_kind: [u64; STUDIED_LEN],
    }
    let total = group_fold(
        impact.failed_job_ends(),
        |&(end, _)| Some(tz.bucket_start(bucket, end)),
        |acc: &mut Acc, _| acc.failed_jobs += 1,
    );
    let per_kind = group_fold(
        impact.attributions(),
        |&(end, kind, _)| kind_index(kind).map(|i| (tz.bucket_start(bucket, end), i)),
        |acc: &mut u64, _| *acc += 1,
    );
    let mut cells: Vec<ImpactCell> = total
        .into_iter()
        .map(|(start, acc)| ImpactCell {
            start,
            end: tz.bucket_end(bucket, start),
            failed_jobs: acc.failed_jobs,
            failed_by_kind: acc.failed_by_kind,
        })
        .collect();
    for ((start, i), count) in per_kind {
        if let Ok(pos) = cells.binary_search_by_key(&start, |c| c.start) {
            cells[pos].failed_by_kind[i] = count;
        }
    }
    cells
}

/// One cell of the availability rollup: downtime node-seconds the
/// bucket accumulated from overlapping node outages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityCell {
    /// Bucket start (UTC instant).
    pub start: Timestamp,
    /// Bucket end (UTC instant, exclusive).
    pub end: Timestamp,
    /// Node-seconds of outage overlapping the bucket.
    pub downtime_node_secs: u64,
}

/// Apportions outage durations to the civil buckets they overlap —
/// walking each outage bucket-by-bucket, so an outage spanning a DST
/// transition splits exactly at the transition's bucket boundary.
/// Sparse: only buckets with downtime appear.
pub fn availability_cells(
    tz: &Tz,
    bucket: Bucket,
    outages: &[OutageRecord],
) -> Vec<AvailabilityCell> {
    let mut slices: Vec<(Timestamp, u64)> = Vec::new();
    for outage in outages {
        let end = outage.start + outage.duration;
        let mut cursor = outage.start;
        while cursor < end {
            let bucket_end = tz.bucket_end(bucket, cursor);
            let slice_end = bucket_end.min(end);
            slices.push((
                tz.bucket_start(bucket, cursor),
                slice_end.unix() - cursor.unix(),
            ));
            cursor = bucket_end;
        }
    }
    group_fold(
        slices,
        |&(start, _)| Some(start),
        |acc: &mut u64, (_, secs)| *acc += secs,
    )
    .into_iter()
    .map(|(start, downtime_node_secs)| AvailabilityCell {
        start,
        end: tz.bucket_end(bucket, start),
        downtime_node_secs,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Duration;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_unix(secs)
    }

    #[test]
    fn group_fold_groups_in_key_order_and_drops_none() {
        let rows = [("b", 2u64), ("a", 1), ("b", 3), ("skip", 9)];
        let sums = group_fold(
            rows,
            |&(k, _)| if k == "skip" { None } else { Some(k) },
            |acc: &mut u64, (_, v)| *acc += v,
        );
        assert_eq!(
            sums.into_iter().collect::<Vec<_>>(),
            vec![("a", 1), ("b", 5)]
        );
    }

    #[test]
    fn cube_build_is_a_linear_scan_over_sorted_events() {
        let tz = Tz::utc();
        let day = 86_400;
        let events = vec![
            (t(100), ErrorKind::GspError),
            (t(200), ErrorKind::GspError),
            (t(day + 5), ErrorKind::MmuError),
            (t(day + 6), ErrorKind::Other(xid::XidCode::new(200))),
        ];
        let cube = RollupCube::build(&tz, Bucket::Day, events);
        assert_eq!(cube.cells().len(), 2);
        let gsp = kind_index(ErrorKind::GspError).unwrap();
        let mmu = kind_index(ErrorKind::MmuError).unwrap();
        assert_eq!(cube.cells()[0].total, 2);
        assert_eq!(cube.cells()[0].by_kind[gsp], 2);
        // Unstudied kinds count toward the total only.
        assert_eq!(cube.cells()[1].total, 2);
        assert_eq!(cube.cells()[1].by_kind[mmu], 1);
        assert_eq!(cube.cells()[1].by_kind.iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_sums_equal_buckets_and_is_layout_independent() {
        let tz = Tz::utc();
        let all: Vec<(Timestamp, ErrorKind)> = (0..100)
            .map(|i| (t(i * 3000), ErrorKind::GspError))
            .collect();
        let whole = RollupCube::build(&tz, Bucket::Hour, all.clone());
        // Any partition of the rows merges back to the same cube —
        // including one with an empty shard.
        let (left, right): (Vec<_>, Vec<_>) = all.iter().partition(|(ts, _)| ts.unix() % 2 == 0);
        let merged = RollupCube::merge(vec![
            RollupCube::build(&tz, Bucket::Hour, left),
            RollupCube::build(&tz, Bucket::Hour, Vec::new()),
            RollupCube::build(&tz, Bucket::Hour, right),
        ]);
        assert_eq!(merged, RollupCube::merge(vec![whole]));
    }

    #[test]
    #[should_panic(expected = "different timezones")]
    fn merge_rejects_mismatched_cubes() {
        let a = RollupCube::build(&Tz::utc(), Bucket::Day, Vec::new());
        let b = RollupCube::build(&Tz::america_chicago(), Bucket::Day, Vec::new());
        let _ = RollupCube::merge(vec![a, b]);
    }

    #[test]
    fn availability_cells_split_outages_at_bucket_boundaries() {
        let tz = Tz::utc();
        // A 3-hour outage starting 30 minutes before a day boundary.
        let outages = [OutageRecord {
            host: "gpub001".to_owned(),
            start: t(86_400 - 1800),
            duration: Duration::from_hours(3),
        }];
        let cells = availability_cells(&tz, Bucket::Day, &outages);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].downtime_node_secs, 1800);
        assert_eq!(cells[1].downtime_node_secs, 3 * 3600 - 1800);
        // The same outage in hour buckets: 30 min + 2 full hours + 30 min.
        let hours = availability_cells(&tz, Bucket::Hour, &outages);
        assert_eq!(hours.len(), 4);
        assert_eq!(
            hours.iter().map(|c| c.downtime_node_secs).sum::<u64>(),
            3 * 3600
        );
    }

    #[test]
    fn availability_cells_sum_overlapping_outages() {
        let tz = Tz::utc();
        let outages = [
            OutageRecord {
                host: "a".to_owned(),
                start: t(1000),
                duration: Duration::from_secs(600),
            },
            OutageRecord {
                host: "b".to_owned(),
                start: t(1200),
                duration: Duration::from_secs(600),
            },
        ];
        let cells = availability_cells(&tz, Bucket::Day, &outages);
        assert_eq!(cells.len(), 1);
        // Two nodes down concurrently: node-seconds add.
        assert_eq!(cells[0].downtime_node_secs, 1200);
    }
}
