//! Counterfactual scenario campaigns: the compute layer behind `/whatif`.
//!
//! The paper's headline numbers invite counterfactual questions — what if
//! MTTR halved, Xid 79 doubled, the scheduler ran strict FIFO? — and the
//! simulation substrates (`faultsim` → `clustersim` → `slurmsim`) can
//! answer them. This module turns a handful of typed knobs
//! ([`ScenarioSpec`]) into a bounded, seeded, paired campaign
//! ([`run_campaign`]): for every repetition it runs the *baseline*
//! (Delta as measured) and the *scenario* (the same seeds with the knobs
//! applied) and reports per-rep MTBE, availability, error/reboot counts
//! and jobs killed, so the serving layer can present
//! baseline-vs-scenario deltas with honest spread.
//!
//! # Canonicalization
//!
//! Query surfaces cache under a canonical key, so equivalent specs must
//! collapse to one string: parameters are defaulted, re-ordered and
//! de-duplicated by [`ScenarioSpec::parse`], per-XID rate multipliers
//! are folded onto their *rate family* (Xid 94 and Xid 48 both scale the
//! uncorrectable-memory hazard, so `xid_rate=94:2` and `xid_rate=48:2`
//! canonicalize identically), and [`ScenarioSpec::canonical`] renders
//! the result deterministically. Conflicting duplicates (the same axis
//! with two different values) are a typed error, never a silent
//! last-wins.
//!
//! # Determinism
//!
//! Same spec + seed ⇒ identical [`CampaignResult`] regardless of where
//! or how often it runs: every reptition's fault campaign and scheduler
//! simulation seed forks deterministically from the spec seed, and the
//! baseline arm of rep `r` shares rep `r`'s seed so the comparison is
//! paired (the counterfactual re-rolls *decisions*, not *luck*).

use clustersim::{Cluster, RepairModel};
use faultsim::{Campaign, FaultConfig};
use simrng::dist::LogNormal;
use simrng::Rng;
use simtime::Phase;
use slurmsim::{SchedPolicy, Simulation, WorkloadConfig};
use std::fmt;
use xid::{ErrorKind, XidCode};

/// Fraction of the two-year Delta study each repetition simulates. At
/// 0.02 (~a week of pre-op plus ~2.5 weeks of operation over the full
/// 448-GPU cluster) one paired rep costs on the order of 100 ms — small
/// enough for an interactive service, large enough that the op phase
/// sees hundreds of errors.
pub const SIM_SCALE: f64 = 0.02;

/// Defaults for unspecified spec axes.
pub const DEFAULT_SEED: u64 = 0xA100;
/// Default repetition count (paired baseline + scenario runs).
pub const DEFAULT_REPS: u32 = 3;

/// Upper bound on `mttr_scale` and per-XID rate multipliers: generous
/// for any plausible what-if, small enough that a campaign stays
/// bounded.
pub const MAX_SCALE: f64 = 100.0;

/// A hazard-rate family a `xid_rate=<XID>:<mult>` knob can scale.
///
/// The fault injector calibrates one rate per *family*, not per code
/// (Xid 119 and 120 are both GSP; Xid 48/63/64/94/95 are all downstream
/// of one root uncorrectable-memory hazard), so the scenario axis is
/// the family and any member code names it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RateAxis {
    /// Xid 31 — MMU faults (`mmu_per_gpu_hour`).
    Mmu,
    /// Xid 48/63/64/94/95 — the root uncorrectable-memory hazard
    /// (`uncorrectable_per_gpu_hour`).
    Uncorrectable,
    /// Xid 74 — NVLink incidents (`nvlink_incidents_per_node_hour`).
    Nvlink,
    /// Xid 79 — fallen off the bus (`fallen_per_gpu_hour`).
    Fallen,
    /// Xid 119/120 — GSP errors (`gsp_per_gpu_hour`).
    Gsp,
    /// Xid 122/123 — PMU SPI failures (`pmu_per_gpu_hour`).
    Pmu,
}

impl RateAxis {
    /// Maps a studied error kind onto its hazard family.
    pub fn from_kind(kind: ErrorKind) -> Option<RateAxis> {
        match kind {
            ErrorKind::MmuError => Some(RateAxis::Mmu),
            ErrorKind::DoubleBitError
            | ErrorKind::RowRemapEvent
            | ErrorKind::RowRemapFailure
            | ErrorKind::ContainedMemoryError
            | ErrorKind::UncontainedMemoryError => Some(RateAxis::Uncorrectable),
            ErrorKind::NvlinkError => Some(RateAxis::Nvlink),
            ErrorKind::FallenOffBus => Some(RateAxis::Fallen),
            ErrorKind::GspError => Some(RateAxis::Gsp),
            ErrorKind::PmuSpiError => Some(RateAxis::Pmu),
            _ => None,
        }
    }

    /// The canonical XID code naming this family in cache keys.
    pub fn canonical_code(self) -> u16 {
        match self {
            RateAxis::Mmu => 31,
            RateAxis::Uncorrectable => 48,
            RateAxis::Nvlink => 74,
            RateAxis::Fallen => 79,
            RateAxis::Gsp => 119,
            RateAxis::Pmu => 122,
        }
    }
}

/// Why a `/whatif` query failed to parse into a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A query key the scenario surface does not know.
    UnknownParam(String),
    /// A value failed to parse or fell outside its valid range; carries
    /// the key and the offending raw value.
    BadValue {
        /// The query key.
        key: &'static str,
        /// The raw value as received.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// `xid_rate` named a code the study does not track.
    UnknownXid(String),
    /// The same axis was given twice with different values.
    Conflict {
        /// The query key.
        key: &'static str,
        /// A description of the clash.
        detail: String,
    },
    /// `reps` exceeded the server's cap.
    RepsOverCap {
        /// What was asked for.
        requested: u32,
        /// The server-side cap.
        cap: u32,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownParam(key) => {
                write!(f, "unknown query parameter {key:?}")
            }
            ScenarioError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "bad {key} {value:?}: expected {expected}"),
            ScenarioError::UnknownXid(raw) => {
                write!(f, "xid_rate {raw:?}: not a studied XID code")
            }
            ScenarioError::Conflict { key, detail } => {
                write!(f, "conflicting {key} values: {detail}")
            }
            ScenarioError::RepsOverCap { requested, cap } => {
                write!(f, "reps {requested} exceeds the server cap {cap}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A parsed, validated, canonical counterfactual request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Repair-time multiplier: scales both the reboot and the
    /// replacement duration distributions. `1` is Delta as measured;
    /// must be finite and in `(0, MAX_SCALE]` (a zero MTTR is not a
    /// repair model).
    pub mttr_scale: f64,
    /// Per-family hazard multipliers, sorted by canonical code. Empty
    /// means no rate change.
    pub xid_rates: Vec<(RateAxis, f64)>,
    /// Queue-drain policy for the scheduler arm.
    pub sched: SchedPolicy,
    /// Root seed; every rep forks from it.
    pub seed: u64,
    /// Paired repetitions to run.
    pub reps: u32,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            mttr_scale: 1.0,
            xid_rates: Vec::new(),
            sched: SchedPolicy::Backfill,
            seed: DEFAULT_SEED,
            reps: DEFAULT_REPS,
        }
    }
}

fn parse_scale(key: &'static str, raw: &str) -> Result<f64, ScenarioError> {
    let bad = |expected: &str| ScenarioError::BadValue {
        key,
        value: raw.to_owned(),
        expected: expected.to_owned(),
    };
    let v: f64 = raw
        .parse()
        .map_err(|_| bad(&format!("a number in (0, {MAX_SCALE}]")))?;
    if !v.is_finite() || v <= 0.0 || v > MAX_SCALE {
        return Err(bad(&format!("a number in (0, {MAX_SCALE}]")));
    }
    Ok(v)
}

/// Canonical shortest-round-trip rendering for a validated multiplier;
/// `format!("{v}")` on an `f64` is deterministic and re-parses to the
/// same bits, so `0.50` and `0.5` collapse to one key.
fn fmt_scale(v: f64) -> String {
    format!("{v}")
}

impl ScenarioSpec {
    /// Parses query pairs (in any order, with duplicates) into a
    /// validated spec. `rep_cap` is the server-side ceiling on `reps`.
    ///
    /// Duplicate parameters are accepted when every occurrence
    /// canonicalizes to the same value and rejected as a
    /// [`ScenarioError::Conflict`] otherwise — a client that sends
    /// `mttr_scale=0.5&mttr_scale=2` is asking two different questions
    /// and deserves a 400, not a silent coin-flip.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] naming the offending key and value.
    pub fn parse(pairs: &[(String, String)], rep_cap: u32) -> Result<ScenarioSpec, ScenarioError> {
        let mut spec = ScenarioSpec::default();
        let mut seen_mttr: Option<f64> = None;
        let mut seen_sched: Option<SchedPolicy> = None;
        let mut seen_seed: Option<u64> = None;
        let mut seen_reps: Option<u32> = None;
        let mut rates: Vec<(RateAxis, f64)> = Vec::new();
        for (k, v) in pairs {
            match k.as_str() {
                "mttr_scale" => {
                    let parsed = parse_scale("mttr_scale", v)?;
                    if let Some(prev) = seen_mttr {
                        if prev != parsed {
                            return Err(ScenarioError::Conflict {
                                key: "mttr_scale",
                                detail: format!("{} vs {}", fmt_scale(prev), fmt_scale(parsed)),
                            });
                        }
                    }
                    seen_mttr = Some(parsed);
                }
                "xid_rate" => {
                    let (code_raw, mult_raw) =
                        v.split_once(':').ok_or_else(|| ScenarioError::BadValue {
                            key: "xid_rate",
                            value: v.clone(),
                            expected: "<XID>:<multiplier>".to_owned(),
                        })?;
                    let code: u16 = code_raw
                        .parse()
                        .map_err(|_| ScenarioError::UnknownXid(v.clone()))?;
                    let axis = RateAxis::from_kind(ErrorKind::from_code(XidCode::new(code)))
                        .ok_or_else(|| ScenarioError::UnknownXid(v.clone()))?;
                    let mult = parse_scale("xid_rate", mult_raw)?;
                    if let Some(&(_, prev)) = rates.iter().find(|(a, _)| *a == axis) {
                        if prev != mult {
                            return Err(ScenarioError::Conflict {
                                key: "xid_rate",
                                detail: format!(
                                    "xid {} given ×{} and ×{}",
                                    axis.canonical_code(),
                                    fmt_scale(prev),
                                    fmt_scale(mult)
                                ),
                            });
                        }
                    } else {
                        rates.push((axis, mult));
                    }
                }
                "sched" => {
                    let parsed = SchedPolicy::parse(v).map_err(|_| ScenarioError::BadValue {
                        key: "sched",
                        value: v.clone(),
                        expected: "fifo|backfill".to_owned(),
                    })?;
                    if let Some(prev) = seen_sched {
                        if prev != parsed {
                            return Err(ScenarioError::Conflict {
                                key: "sched",
                                detail: format!("{} vs {}", prev.name(), parsed.name()),
                            });
                        }
                    }
                    seen_sched = Some(parsed);
                }
                "seed" => {
                    let parsed: u64 = v.parse().map_err(|_| ScenarioError::BadValue {
                        key: "seed",
                        value: v.clone(),
                        expected: "an unsigned 64-bit integer".to_owned(),
                    })?;
                    if let Some(prev) = seen_seed {
                        if prev != parsed {
                            return Err(ScenarioError::Conflict {
                                key: "seed",
                                detail: format!("{prev} vs {parsed}"),
                            });
                        }
                    }
                    seen_seed = Some(parsed);
                }
                "reps" => {
                    let parsed: u32 = v.parse().map_err(|_| ScenarioError::BadValue {
                        key: "reps",
                        value: v.clone(),
                        expected: "a positive integer".to_owned(),
                    })?;
                    if parsed == 0 {
                        return Err(ScenarioError::BadValue {
                            key: "reps",
                            value: v.clone(),
                            expected: "a positive integer".to_owned(),
                        });
                    }
                    if let Some(prev) = seen_reps {
                        if prev != parsed {
                            return Err(ScenarioError::Conflict {
                                key: "reps",
                                detail: format!("{prev} vs {parsed}"),
                            });
                        }
                    }
                    seen_reps = Some(parsed);
                }
                other => return Err(ScenarioError::UnknownParam(other.to_owned())),
            }
        }
        if let Some(v) = seen_mttr {
            spec.mttr_scale = v;
        }
        if let Some(v) = seen_sched {
            spec.sched = v;
        }
        if let Some(v) = seen_seed {
            spec.seed = v;
        }
        if let Some(v) = seen_reps {
            if v > rep_cap {
                return Err(ScenarioError::RepsOverCap {
                    requested: v,
                    cap: rep_cap,
                });
            }
            spec.reps = v;
        }
        rates.sort_by_key(|(a, _)| a.canonical_code());
        spec.xid_rates = rates;
        Ok(spec)
    }

    /// The neutral twin of this spec: same seed and reps, every
    /// counterfactual knob at its measured-system value. This is the
    /// baseline arm each rep is paired against.
    pub fn baseline(&self) -> ScenarioSpec {
        ScenarioSpec {
            seed: self.seed,
            reps: self.reps,
            ..ScenarioSpec::default()
        }
    }

    /// Whether every knob sits at its measured-system default (the
    /// scenario arm *is* the baseline).
    pub fn is_neutral(&self) -> bool {
        self.mttr_scale == 1.0 && self.xid_rates.is_empty() && self.sched == SchedPolicy::Backfill
    }

    /// The canonical query string: keys sorted, defaults materialized,
    /// multipliers in shortest-round-trip form, rate families under
    /// their canonical code. Two specs are equivalent iff their
    /// canonical strings are byte-equal, which is what the serving
    /// layer caches under.
    pub fn canonical(&self) -> String {
        let mut out = format!(
            "mttr_scale={}&reps={}&sched={}&seed={}",
            fmt_scale(self.mttr_scale),
            self.reps,
            self.sched.name(),
            self.seed
        );
        for (axis, mult) in &self.xid_rates {
            out.push_str(&format!(
                "&xid_rate={}:{}",
                axis.canonical_code(),
                fmt_scale(*mult)
            ));
        }
        out
    }

    /// Applies the spec's knobs to a fault configuration (rates and
    /// repair model; the scheduler knob applies at simulation time).
    fn apply(&self, config: &mut FaultConfig) -> Result<(), ScenarioError> {
        let s = self.mttr_scale;
        if s != 1.0 {
            let model = |mean: f64, median: f64| {
                LogNormal::from_mean_median(mean * s, median * s).map_err(|e| {
                    ScenarioError::BadValue {
                        key: "mttr_scale",
                        value: fmt_scale(s),
                        expected: format!("a scale the repair model accepts ({e})"),
                    }
                })
            };
            // Delta's measured distributions (see RepairModel::delta):
            // reboot LogNormal fit to mean 0.88 h / median 0.60 h,
            // replacement to mean 24 h / median 12 h.
            config.repair = RepairModel::new(model(0.88, 0.60)?, model(24.0, 12.0)?);
        }
        for &(axis, mult) in &self.xid_rates {
            let pair = match axis {
                RateAxis::Mmu => &mut config.rates.mmu_per_gpu_hour,
                RateAxis::Uncorrectable => &mut config.rates.uncorrectable_per_gpu_hour,
                RateAxis::Nvlink => &mut config.rates.nvlink_incidents_per_node_hour,
                RateAxis::Fallen => &mut config.rates.fallen_per_gpu_hour,
                RateAxis::Gsp => &mut config.rates.gsp_per_gpu_hour,
                RateAxis::Pmu => &mut config.rates.pmu_per_gpu_hour,
            };
            pair.0 *= mult;
            pair.1 *= mult;
        }
        Ok(())
    }
}

/// One repetition's headline numbers for one arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepOutcome {
    /// Ground-truth errors in the operational phase.
    pub errors: u64,
    /// Completed node reboots over the whole campaign.
    pub reboots: u64,
    /// Operational hours / operational errors; `0` when no errors
    /// occurred (a sentinel that renders cleanly, unlike infinity).
    pub mtbe_hours: f64,
    /// Empirical operational availability: `1 − downtime/(nodes×hours)`.
    pub availability: f64,
    /// Jobs the scheduler recorded as killed by GPU errors.
    pub jobs_killed: u64,
}

/// A finished campaign: per-rep outcomes for both arms, index-aligned
/// (rep `r` of each arm shares its fork of the spec seed).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The spec that ran (canonical).
    pub spec: ScenarioSpec,
    /// Baseline (as-measured) outcomes, one per rep.
    pub baseline: Vec<RepOutcome>,
    /// Counterfactual outcomes, one per rep.
    pub scenario: Vec<RepOutcome>,
}

/// Mean / min / max over one metric of one arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Arithmetic mean over reps.
    pub mean: f64,
    /// Smallest rep value.
    pub min: f64,
    /// Largest rep value.
    pub max: f64,
}

/// Summarizes `metric` over a slice of rep outcomes.
pub fn spread(reps: &[RepOutcome], metric: impl Fn(&RepOutcome) -> f64) -> Spread {
    let mut mean = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for rep in reps {
        let v = metric(rep);
        mean += v;
        min = min.min(v);
        max = max.max(v);
    }
    if reps.is_empty() {
        return Spread {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    Spread {
        mean: mean / reps.len() as f64,
        min,
        max,
    }
}

/// Runs one arm's repetition: fault campaign, then the scheduler
/// co-simulation, then the headline metrics.
fn run_rep(spec: &ScenarioSpec, rep_seed: u64) -> Result<RepOutcome, ScenarioError> {
    let mut config = FaultConfig::delta_scaled(SIM_SCALE);
    config.emit_logs = false;
    config.seed = rep_seed;
    spec.apply(&mut config)?;

    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let workload = WorkloadConfig::delta_scaled(SIM_SCALE);
    let outcome = Simulation::new(&cluster, workload, rep_seed)
        .with_policy(spec.sched)
        .run(&campaign.ground_truth, &campaign.holds);

    let op = campaign.config.periods.op;
    let op_hours = op.hours();
    let errors = campaign.events_in(Phase::Op).count() as u64;
    let op_downtime: f64 = campaign
        .ledger
        .outages()
        .iter()
        .filter(|o| op.contains(o.start))
        .map(|o| o.duration.as_hours_f64())
        .sum();
    let availability =
        1.0 - op_downtime / (campaign.config.spec.gpu_node_count() as f64 * op_hours);
    Ok(RepOutcome {
        errors,
        reboots: campaign.ledger.outage_count() as u64,
        mtbe_hours: if errors > 0 {
            op_hours / errors as f64
        } else {
            0.0
        },
        availability,
        jobs_killed: outcome.stats.error_kills,
    })
}

/// Runs the paired campaign: `spec.reps` repetitions of baseline and
/// scenario. `progress(done, total)` is called after every finished
/// arm-rep (`total = 2 × reps`), which is what backs the `/whatif/jobs`
/// progress surface.
///
/// # Errors
///
/// A [`ScenarioError`] if the spec's knobs produce an invalid substrate
/// configuration (cannot happen for a spec that came out of
/// [`ScenarioSpec::parse`]).
pub fn run_campaign(
    spec: &ScenarioSpec,
    mut progress: impl FnMut(u32, u32),
) -> Result<CampaignResult, ScenarioError> {
    let total = spec.reps * 2;
    let mut done = 0;
    let baseline_spec = spec.baseline();
    let mut baseline = Vec::with_capacity(spec.reps as usize);
    let mut scenario = Vec::with_capacity(spec.reps as usize);
    let root = Rng::seed_from(spec.seed);
    for rep in 0..spec.reps {
        // One fork per rep; baseline and scenario share it so the
        // comparison is paired.
        let rep_seed = root.fork(u64::from(rep)).next_u64();
        let span = obs::span("whatif_rep");
        let base = run_rep(&baseline_spec, rep_seed)?;
        done += 1;
        progress(done, total);
        let scen = if spec.is_neutral() {
            base
        } else {
            run_rep(spec, rep_seed)?
        };
        done += 1;
        progress(done, total);
        drop(span);
        baseline.push(base);
        scenario.push(scen);
    }
    Ok(CampaignResult {
        spec: spec.clone(),
        baseline,
        scenario,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn defaults_and_canonical_form() {
        let spec = ScenarioSpec::parse(&[], 32).unwrap();
        assert_eq!(spec, ScenarioSpec::default());
        assert_eq!(
            spec.canonical(),
            format!("mttr_scale=1&reps=3&sched=backfill&seed={DEFAULT_SEED}")
        );
        assert!(spec.is_neutral());
    }

    #[test]
    fn reordered_and_duplicated_params_canonicalize_identically() {
        let a = ScenarioSpec::parse(
            &pairs(&[("mttr_scale", "0.5"), ("seed", "7"), ("xid_rate", "79:2")]),
            32,
        )
        .unwrap();
        let b = ScenarioSpec::parse(
            &pairs(&[
                ("xid_rate", "79:2"),
                ("mttr_scale", "0.50"),
                ("seed", "7"),
                ("xid_rate", "79:2.0"),
            ]),
            32,
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(
            a.canonical(),
            "mttr_scale=0.5&reps=3&sched=backfill&seed=7&xid_rate=79:2"
        );
    }

    #[test]
    fn family_codes_collapse_to_the_canonical_member() {
        // Xid 94 (contained) and 48 (DBE) are the same root hazard.
        let a = ScenarioSpec::parse(&pairs(&[("xid_rate", "94:2")]), 32).unwrap();
        let b = ScenarioSpec::parse(&pairs(&[("xid_rate", "48:2")]), 32).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.canonical().contains("xid_rate=48:2"), "{}", a.canonical());
        // Xid 120 folds onto 119 (both GSP).
        let c = ScenarioSpec::parse(&pairs(&[("xid_rate", "120:3")]), 32).unwrap();
        assert!(
            c.canonical().contains("xid_rate=119:3"),
            "{}",
            c.canonical()
        );
    }

    #[test]
    fn rate_families_sort_by_canonical_code() {
        let spec =
            ScenarioSpec::parse(&pairs(&[("xid_rate", "122:2"), ("xid_rate", "31:0.5")]), 32)
                .unwrap();
        assert!(
            spec.canonical().ends_with("xid_rate=31:0.5&xid_rate=122:2"),
            "{}",
            spec.canonical()
        );
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let cases: &[(&[(&str, &str)], &str)] = &[
            (&[("mttr_scale", "0")], "mttr_scale zero"),
            (&[("mttr_scale", "-1")], "negative"),
            (&[("mttr_scale", "nan")], "nan"),
            (&[("mttr_scale", "1e9")], "over max"),
            (&[("xid_rate", "13:2")], "unstudied xid"),
            (&[("xid_rate", "999:2")], "unknown xid"),
            (&[("xid_rate", "79")], "missing mult"),
            (&[("xid_rate", "79:0")], "zero mult"),
            (&[("sched", "lifo")], "bad sched"),
            (&[("seed", "-3")], "bad seed"),
            (&[("reps", "0")], "zero reps"),
            (&[("bogus", "1")], "unknown key"),
            (&[("mttr_scale", "0.5"), ("mttr_scale", "2")], "conflict"),
            (
                &[("xid_rate", "94:2"), ("xid_rate", "48:3")],
                "family conflict",
            ),
        ];
        for (query, label) in cases {
            let err = ScenarioSpec::parse(&pairs(query), 32);
            assert!(err.is_err(), "{label}: {err:?}");
        }
    }

    #[test]
    fn reps_over_cap_is_a_typed_error() {
        let err = ScenarioSpec::parse(&pairs(&[("reps", "9")]), 8).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::RepsOverCap {
                requested: 9,
                cap: 8
            }
        );
        assert!(ScenarioSpec::parse(&pairs(&[("reps", "8")]), 8).is_ok());
    }

    #[test]
    fn campaign_is_deterministic_and_paired() {
        let spec = ScenarioSpec::parse(
            &pairs(&[("mttr_scale", "0.5"), ("reps", "2"), ("seed", "11")]),
            8,
        )
        .unwrap();
        let a = run_campaign(&spec, |_, _| {}).unwrap();
        let b = run_campaign(&spec, |_, _| {}).unwrap();
        assert_eq!(a, b);
        // Halved repair times should improve availability on average
        // (repair durations feed back into the campaign, so per-rep
        // error counts may drift slightly; the paired seeds keep the
        // comparison tight, not identical).
        let base = spread(&a.baseline, |r| r.availability);
        let scen = spread(&a.scenario, |r| r.availability);
        assert!(
            scen.mean > base.mean,
            "faster repair: {} vs {}",
            scen.mean,
            base.mean
        );
    }

    #[test]
    fn neutral_scenario_reuses_the_baseline_rep() {
        let spec = ScenarioSpec::parse(&pairs(&[("reps", "1"), ("seed", "3")]), 8).unwrap();
        let mut calls = Vec::new();
        let result = run_campaign(&spec, |done, total| calls.push((done, total))).unwrap();
        assert_eq!(result.baseline, result.scenario);
        assert_eq!(calls, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn spread_summarizes_mean_min_max() {
        let reps = [
            RepOutcome {
                errors: 1,
                reboots: 0,
                mtbe_hours: 2.0,
                availability: 0.9,
                jobs_killed: 5,
            },
            RepOutcome {
                errors: 3,
                reboots: 0,
                mtbe_hours: 4.0,
                availability: 0.8,
                jobs_killed: 7,
            },
        ];
        let s = spread(&reps, |r| r.mtbe_hours);
        assert_eq!((s.mean, s.min, s.max), (3.0, 2.0, 4.0));
        let empty = spread(&[], |r| r.mtbe_hours);
        assert_eq!((empty.mean, empty.min, empty.max), (0.0, 0.0, 0.0));
    }
}
