//! The end-to-end Stage I–III pipeline driver.
//!
//! [`Pipeline::run`] wires the stages of Fig. 1 together: raw consolidated
//! logs are filtered and extracted (`hpclog`), coalesced ([`mod@crate::coalesce`]),
//! tallied into error statistics ([`crate::stats`], with the SRE outlier
//! rule applied for the headline MTBE numbers), joined against the job
//! records ([`crate::impact`]) and combined with outage records into the
//! availability estimate ([`crate::availability`]). The result is a
//! [`StudyReport`] from which every table and figure renders
//! ([`crate::report`]) and every headline finding evaluates
//! ([`crate::findings`]).

use crate::availability::Availability;
use crate::coalesce::{coalesce, CoalesceSummary, CoalescedError};
use crate::impact::{job_mix, success_rate, JobImpact, JobMixRow, ATTRIBUTION_WINDOW};
use crate::job::{AccountedJob, OutageRecord};
use crate::stats::{exclude_dominant_gpu, ErrorStats, OutlierReport};
use hpclog::archive::Archive;
use hpclog::extract::{ExtractStats, XidExtractor};
use hpclog::XidEvent;
use simtime::{Duration, Phase, StudyPeriods};
use xid::ErrorKind;

/// Pipeline configuration: the analysis windows and the machine constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    /// The study calendar (phase boundaries).
    pub periods: StudyPeriods,
    /// GPU-node count for per-node MTBE (106 on Delta).
    pub node_count: usize,
    /// Coalescing window Δt (Fig. 1 stage ii).
    pub coalesce_window: Duration,
    /// Error→failure attribution window (§V-B, 20 s).
    pub attribution_window: Duration,
    /// Share above which one GPU's errors of a kind are excluded as an
    /// outlier (the SRE faulty-GPU rule).
    pub outlier_threshold: f64,
}

impl Pipeline {
    /// The paper's configuration: Delta calendar, 106 nodes, Δt = 20 s
    /// (duplicates repeat within ~10 s; distinct storm errors arrive ≥30 s
    /// apart, so Δt between them separates the two regimes), 20 s
    /// attribution, 50% outlier threshold.
    pub fn delta() -> Self {
        Pipeline {
            periods: StudyPeriods::delta(),
            node_count: 106,
            coalesce_window: Duration::from_secs(20),
            attribution_window: ATTRIBUTION_WINDOW,
            outlier_threshold: 0.5,
        }
    }

    /// Runs the full pipeline from a raw log archive.
    pub fn run(
        &self,
        archive: &Archive,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
    ) -> StudyReport {
        let mut extractor = XidExtractor::studied_only(2024);
        let events: Vec<XidEvent> =
            archive.iter().filter_map(|line| extractor.extract(line)).collect();
        self.run_events(events, Some(extractor.stats()), gpu_jobs, cpu_jobs, outages)
    }

    /// Runs the pipeline from already-extracted events (Stage I done
    /// elsewhere, e.g. when replaying a pre-parsed export).
    pub fn run_events(
        &self,
        events: Vec<XidEvent>,
        extract_stats: Option<ExtractStats>,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
    ) -> StudyReport {
        let errors = coalesce(events, self.coalesce_window);
        let coalesce_summary = CoalesceSummary::of(&errors);
        let stats_raw = ErrorStats::compute(&errors, self.periods, self.node_count);

        // SRE outlier rule: the dominant-GPU storm distorts pre-op memory
        // statistics; exclude it for the headline numbers.
        let (errors_clean, outlier) = exclude_dominant_gpu(
            &errors,
            ErrorKind::UncontainedMemoryError,
            Phase::PreOp,
            self.periods,
            self.outlier_threshold,
        );
        let stats = ErrorStats::compute(&errors_clean, self.periods, self.node_count);

        let impact = JobImpact::compute(gpu_jobs, &errors_clean, self.attribution_window);
        let mix = job_mix(gpu_jobs);

        // Availability over the operational period only (§V-C).
        let op = self.periods.op;
        let op_outages: Vec<OutageRecord> = outages
            .iter()
            .filter(|o| op.contains(o.start))
            .cloned()
            .collect();
        let availability = Availability::compute(&op_outages, self.node_count, op.hours());
        let mttf_hours = stats.overall_mtbe_per_node(Phase::Op);

        StudyReport {
            config: *self,
            extract_stats,
            coalesce_summary,
            errors: errors_clean,
            stats_raw,
            stats,
            outlier,
            impact,
            mix,
            gpu_success: success_rate(gpu_jobs),
            cpu_success: success_rate(cpu_jobs),
            availability,
            mttf_hours,
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::delta()
    }
}

/// Everything the pipeline computes; the source of every table, figure and
/// finding.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The configuration the report was computed with.
    pub config: Pipeline,
    /// Stage I extraction counters (absent when extraction was external).
    pub extract_stats: Option<ExtractStats>,
    /// Coalescing summary (raw lines vs errors).
    pub coalesce_summary: CoalesceSummary,
    /// The coalesced, outlier-filtered error set.
    pub errors: Vec<CoalescedError>,
    /// Statistics *before* outlier exclusion (storm included).
    pub stats_raw: ErrorStats,
    /// Statistics after the SRE outlier rule — the Table I / headline
    /// numbers.
    pub stats: ErrorStats,
    /// The outlier exclusion performed, if any.
    pub outlier: Option<crate::stats::OutlierReport>,
    /// The Table II join.
    pub impact: JobImpact,
    /// The Table III rows.
    pub mix: Vec<JobMixRow>,
    /// GPU-job success rate (§V-A: 74.68%).
    pub gpu_success: Option<f64>,
    /// CPU-job success rate (§V-A: 74.90%).
    pub cpu_success: Option<f64>,
    /// §V-C availability analysis over the operational period.
    pub availability: Availability,
    /// MTTF estimate (overall operational per-node MTBE), the paper's
    /// conservative every-error-interrupts assumption.
    pub mttf_hours: Option<f64>,
}

impl StudyReport {
    /// The availability estimate via the paper's formula, if computable.
    pub fn availability_estimate(&self) -> Option<f64> {
        self.availability.availability_from_mttf(self.mttf_hours?)
    }

    /// The outlier exclusion, by reference.
    pub fn outlier(&self) -> Option<&OutlierReport> {
        self.outlier.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::{LogLine, PciAddr, Timestamp};
    use xid::XidCode;

    fn pipeline() -> Pipeline {
        Pipeline::delta()
    }

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn xid_line(t: Timestamp, host: &str, gpu: u8, code: u16) -> LogLine {
        XidEvent::new(t, host, PciAddr::for_gpu_index(gpu), XidCode::new(code), "detail")
            .to_log_line()
    }

    fn gpu_job(id: u64, host: &str, gpu: u8, start: u64, end: u64, ok: bool) -> AccountedJob {
        AccountedJob {
            id,
            name: format!("job{id}"),
            submit: op_time(start.saturating_sub(10)),
            start: op_time(start),
            end: op_time(end),
            gpus: 1,
            gpu_slots: vec![(host.to_owned(), gpu)],
            completed: ok,
        }
    }

    #[test]
    fn end_to_end_from_raw_lines() {
        let mut archive = Archive::new();
        // Three duplicate GSP lines -> one coalesced error that kills a job.
        for d in [0, 5, 10] {
            archive.push(xid_line(op_time(1000 + d), "gpub001", 0, 119));
        }
        // Noise and an excluded software XID.
        archive.push(LogLine::new(op_time(500), "gpub001", "kernel", "usb 1-1 connected"));
        archive.push(xid_line(op_time(2000), "gpub002", 1, 13));

        let jobs = [gpu_job(1, "gpub001", 0, 900, 1005, false)];
        let outages = [OutageRecord {
            host: "gpub001".to_owned(),
            start: op_time(1300),
            duration: Duration::from_mins(53),
        }];
        let report = pipeline().run(&archive, &jobs, &[], &outages);

        let es = report.extract_stats.unwrap();
        assert_eq!(es.extracted, 3);
        assert_eq!(es.excluded, 1);
        assert_eq!(report.coalesce_summary.errors, 1);
        assert_eq!(report.coalesce_summary.raw_lines, 3);
        assert_eq!(report.stats.count(ErrorKind::GspError, Phase::Op), 1);
        let k = report.impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 1));
        assert_eq!(report.impact.gpu_failed_jobs(), 1);
        assert!((report.availability.mttr_hours().unwrap() - 53.0 / 60.0).abs() < 1e-9);
        assert!(report.availability_estimate().is_some());
    }

    #[test]
    fn storm_outlier_excluded_from_headline_stats() {
        let pre = StudyPeriods::delta().pre_op.start;
        let mut events = Vec::new();
        // Faulty GPU: 500 uncontained errors, minutes apart (no coalescing).
        for i in 0..500u64 {
            events.push(XidEvent::new(
                pre + Duration::from_secs(i * 300),
                "gpub038",
                PciAddr::for_gpu_index(2),
                XidCode::UNCONTAINED_ECC,
                "",
            ));
        }
        // Healthy background: 5 uncontained errors elsewhere.
        for i in 0..5u64 {
            events.push(XidEvent::new(
                pre + Duration::from_days(i + 10),
                "gpub001",
                PciAddr::for_gpu_index(0),
                XidCode::UNCONTAINED_ECC,
                "",
            ));
        }
        let report = pipeline().run_events(events, None, &[], &[], &[]);
        // Raw stats see everything; headline stats see only the background.
        assert_eq!(report.stats_raw.count(ErrorKind::UncontainedMemoryError, Phase::PreOp), 505);
        assert_eq!(report.stats.count(ErrorKind::UncontainedMemoryError, Phase::PreOp), 5);
        let outlier = report.outlier().expect("storm detected");
        assert_eq!(outlier.host, "gpub038");
        assert_eq!(outlier.excluded_errors, 500);
    }

    #[test]
    fn availability_counts_op_outages_only() {
        let pre_outage = OutageRecord {
            host: "gpub001".to_owned(),
            start: StudyPeriods::delta().pre_op.start + Duration::from_days(3),
            duration: Duration::from_hours(2),
        };
        let op_outage = OutageRecord {
            host: "gpub002".to_owned(),
            start: op_time(5000),
            duration: Duration::from_mins(30),
        };
        let report = pipeline().run_events(Vec::new(), None, &[], &[], &[pre_outage, op_outage]);
        assert_eq!(report.availability.outage_count(), 1);
        assert!((report.availability.mttr_hours().unwrap() - 0.5).abs() < 1e-9);
        // No errors -> no MTTF -> no formula-based estimate.
        assert_eq!(report.mttf_hours, None);
        assert_eq!(report.availability_estimate(), None);
    }

    #[test]
    fn success_rates_flow_through() {
        let jobs = [
            gpu_job(1, "gpub001", 0, 100, 200, true),
            gpu_job(2, "gpub001", 1, 100, 200, false),
        ];
        let cpu = [AccountedJob { gpus: 0, gpu_slots: Vec::new(), ..jobs[0].clone() }];
        let report = pipeline().run_events(Vec::new(), None, &jobs, &cpu, &[]);
        assert_eq!(report.gpu_success, Some(0.5));
        assert_eq!(report.cpu_success, Some(1.0));
        assert_eq!(report.mix.len(), 8);
        assert_eq!(report.mix[0].count, 2);
    }
}
