//! The end-to-end Stage I–III pipeline driver.
//!
//! [`Pipeline::run`] wires the stages of Fig. 1 together: raw consolidated
//! logs are filtered and extracted (`hpclog`), coalesced ([`mod@crate::coalesce`]),
//! tallied into error statistics ([`crate::stats`], with the SRE outlier
//! rule applied for the headline MTBE numbers), joined against the job
//! records ([`crate::impact`]) and combined with outage records into the
//! availability estimate ([`crate::availability`]). The result is a
//! [`StudyReport`] from which every table and figure renders
//! ([`crate::report`]) and every headline finding evaluates
//! ([`crate::findings`]).

use crate::availability::Availability;
use crate::coalesce::{coalesce, CoalesceSummary, CoalescedError};
use crate::csvio;
use crate::error::{CsvInput, PipelineError};
use crate::impact::{job_mix, success_rate, JobImpact, JobMixRow, ATTRIBUTION_WINDOW};
use crate::job::{AccountedJob, OutageRecord};
use crate::stats::{exclude_dominant_gpu, ErrorStats, OutlierReport};
use hpclog::archive::Archive;
use hpclog::extract::{ExtractStats, XidExtractor};
use hpclog::quarantine::QuarantineLedger;
use hpclog::XidEvent;
use simtime::{Duration, Phase, StudyPeriods};
use std::fmt;
use xid::ErrorKind;

/// Pipeline configuration: the analysis windows and the machine constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    /// The study calendar (phase boundaries).
    pub periods: StudyPeriods,
    /// GPU-node count for per-node MTBE (106 on Delta).
    pub node_count: usize,
    /// Coalescing window Δt (Fig. 1 stage ii).
    pub coalesce_window: Duration,
    /// Error→failure attribution window (§V-B, 20 s).
    pub attribution_window: Duration,
    /// Share above which one GPU's errors of a kind are excluded as an
    /// outlier (the SRE faulty-GPU rule).
    pub outlier_threshold: f64,
}

impl Pipeline {
    /// The paper's configuration: Delta calendar, 106 nodes, Δt = 20 s
    /// (duplicates repeat within ~10 s; distinct storm errors arrive ≥30 s
    /// apart, so Δt between them separates the two regimes), 20 s
    /// attribution, 50% outlier threshold.
    pub fn delta() -> Self {
        Pipeline {
            periods: StudyPeriods::delta(),
            node_count: 106,
            coalesce_window: Duration::from_secs(20),
            attribution_window: ATTRIBUTION_WINDOW,
            outlier_threshold: 0.5,
        }
    }

    /// Runs the full pipeline from a raw log archive.
    pub fn run(
        &self,
        archive: &Archive,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
    ) -> StudyReport {
        let mut extractor = XidExtractor::studied_only(2024);
        let events: Vec<XidEvent> = {
            let mut span = obs::span("stage_extract");
            let events = archive
                .iter()
                .filter_map(|line| extractor.extract(line))
                .collect();
            span.add_items(extractor.stats().lines_seen);
            events
        };
        hpclog::extract::record_scan_metrics(&ExtractStats::default(), &extractor.stats());
        self.run_events(events, Some(extractor.stats()), gpu_jobs, cpu_jobs, outages)
    }

    /// Runs the full pipeline from raw byte streams — a log reader plus
    /// CSV exports — failing fast with a typed [`PipelineError`] on the
    /// first defect in any input.
    ///
    /// This is the strict counterpart of [`run_lenient`](Self::run_lenient):
    /// use it when the inputs are trusted (rendered by this workspace) and
    /// any defect means a bug upstream.
    ///
    /// `log_year` resolves the year-less syslog stamps (the wire format
    /// drops the year; the consolidated day files carry it out of band).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Io`] if the log stream fails, or
    /// [`PipelineError::Csv`] naming the export and line of the first bad
    /// CSV row.
    pub fn run_csv<R: std::io::Read>(
        &self,
        log: R,
        log_year: i32,
        gpu_jobs_csv: &str,
        cpu_jobs_csv: &str,
        outages_csv: &str,
    ) -> Result<StudyReport, PipelineError> {
        let mut extractor = XidExtractor::studied_only(log_year);
        let events = extractor.scan_reader(log)?;
        let gpu_jobs = csvio::parse_jobs(gpu_jobs_csv)
            .map_err(|e| PipelineError::csv(CsvInput::GpuJobs, e))?;
        let cpu_jobs = csvio::parse_jobs(cpu_jobs_csv)
            .map_err(|e| PipelineError::csv(CsvInput::CpuJobs, e))?;
        let outages = csvio::parse_outages(outages_csv)
            .map_err(|e| PipelineError::csv(CsvInput::Outages, e))?;
        Ok(self.run_events(
            events,
            Some(extractor.stats()),
            &gpu_jobs,
            &cpu_jobs,
            &outages,
        ))
    }

    /// Runs the full pipeline from raw byte streams without ever failing:
    /// every defective log line and CSV row is classified into the
    /// returned [`QuarantineReport`]'s ledger, I/O errors truncate the log
    /// scan instead of aborting it, and the study is computed from
    /// whatever survived. [`Caveat`] flags say how much to trust the
    /// result.
    ///
    /// This is the entry point for real-world archives, where a multi-month
    /// consolidated log *will* contain truncated lines, interleaved
    /// writes and the occasional clock regression, and discarding three
    /// months of analysis over one bad byte is the wrong trade.
    /// `log_year` resolves the year-less syslog stamps, as in
    /// [`run_csv`](Self::run_csv).
    pub fn run_lenient<R: std::io::Read>(
        &self,
        log: R,
        log_year: i32,
        gpu_jobs_csv: &str,
        cpu_jobs_csv: &str,
        outages_csv: &str,
    ) -> (StudyReport, QuarantineReport) {
        let mut ledger = QuarantineLedger::new();
        let mut extractor = XidExtractor::studied_only(log_year);
        let events = extractor.scan_reader_lenient(log, &mut ledger);
        let extract_stats = extractor.stats();
        let gpu_jobs = csvio::parse_jobs_lenient(gpu_jobs_csv, &mut ledger);
        let cpu_jobs = csvio::parse_jobs_lenient(cpu_jobs_csv, &mut ledger);
        let outages = csvio::parse_outages_lenient(outages_csv, &mut ledger);
        let report = self.run_events(events, Some(extract_stats), &gpu_jobs, &cpu_jobs, &outages);
        let quarantine = QuarantineReport::from_scan(ledger, extract_stats);
        (report, quarantine)
    }

    /// Runs the pipeline from already-extracted events (Stage I done
    /// elsewhere, e.g. when replaying a pre-parsed export).
    ///
    /// Events are first put into the canonical `(time, host, seq)` order
    /// (see [`hpclog::shard`]): a stable sort that every entry path —
    /// serial, streaming, or [`run_parallel`](Self::run_parallel) at any
    /// thread count — funnels through, so equal inputs always produce
    /// byte-identical reports. Coalescing never merges across hosts, so
    /// the sort cannot change any aggregate number.
    pub fn run_events(
        &self,
        mut events: Vec<XidEvent>,
        extract_stats: Option<ExtractStats>,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
    ) -> StudyReport {
        hpclog::shard::canonical_sort(&mut events);
        let events_in = events.len() as u64;
        let errors = {
            let mut span = obs::span("stage_coalesce");
            span.add_items(events_in);
            coalesce(events, self.coalesce_window)
        };
        if obs::is_enabled() {
            obs::counter("core_events_coalesced_total", &[]).add(events_in);
            obs::counter("core_coalesce_merges_total", &[]).add(events_in - errors.len() as u64);
        }
        self.assemble(errors, extract_stats, gpu_jobs, cpu_jobs, outages)
    }

    /// Stages iii–v on an already-coalesced, canonically ordered error set.
    ///
    /// Shared tail of [`run_events`](Self::run_events) and the incremental
    /// engine's materialization (`core::incremental`): both paths produce
    /// their coalesced errors differently but must assemble the
    /// [`StudyReport`] through the one code path, so equivalence reduces to
    /// the error sets being equal.
    pub(crate) fn assemble(
        &self,
        errors: Vec<CoalescedError>,
        extract_stats: Option<ExtractStats>,
        gpu_jobs: &[AccountedJob],
        cpu_jobs: &[AccountedJob],
        outages: &[OutageRecord],
    ) -> StudyReport {
        let mut span = obs::span("stage_assemble");
        span.add_items(errors.len() as u64);
        if obs::is_enabled() {
            obs::counter("core_errors_total", &[]).add(errors.len() as u64);
            obs::counter("core_reports_assembled_total", &[]).inc();
        }
        let coalesce_summary = CoalesceSummary::of(&errors);
        let stats_raw = ErrorStats::compute(&errors, self.periods, self.node_count);

        // SRE outlier rule: the dominant-GPU storm distorts pre-op memory
        // statistics; exclude it for the headline numbers.
        let (errors_clean, outlier) = exclude_dominant_gpu(
            &errors,
            ErrorKind::UncontainedMemoryError,
            Phase::PreOp,
            self.periods,
            self.outlier_threshold,
        );
        let stats = ErrorStats::compute(&errors_clean, self.periods, self.node_count);

        let impact = JobImpact::compute(gpu_jobs, &errors_clean, self.attribution_window);
        let mix = job_mix(gpu_jobs);

        // Availability over the operational period only (§V-C).
        let op = self.periods.op;
        let op_outages: Vec<OutageRecord> = outages
            .iter()
            .filter(|o| op.contains(o.start))
            .cloned()
            .collect();
        let availability = Availability::compute(&op_outages, self.node_count, op.hours());
        let mttf_hours = stats.overall_mtbe_per_node(Phase::Op);

        StudyReport {
            config: *self,
            extract_stats,
            coalesce_summary,
            errors: errors_clean,
            stats_raw,
            stats,
            outlier,
            impact,
            mix,
            gpu_success: success_rate(gpu_jobs),
            cpu_success: success_rate(cpu_jobs),
            availability,
            op_outages,
            mttf_hours,
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::delta()
    }
}

/// Everything the pipeline computes; the source of every table, figure and
/// finding.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The configuration the report was computed with.
    pub config: Pipeline,
    /// Stage I extraction counters (absent when extraction was external).
    pub extract_stats: Option<ExtractStats>,
    /// Coalescing summary (raw lines vs errors).
    pub coalesce_summary: CoalesceSummary,
    /// The coalesced, outlier-filtered error set.
    pub errors: Vec<CoalescedError>,
    /// Statistics *before* outlier exclusion (storm included).
    pub stats_raw: ErrorStats,
    /// Statistics after the SRE outlier rule — the Table I / headline
    /// numbers.
    pub stats: ErrorStats,
    /// The outlier exclusion performed, if any.
    pub outlier: Option<crate::stats::OutlierReport>,
    /// The Table II join.
    pub impact: JobImpact,
    /// The Table III rows.
    pub mix: Vec<JobMixRow>,
    /// GPU-job success rate (§V-A: 74.68%).
    pub gpu_success: Option<f64>,
    /// CPU-job success rate (§V-A: 74.90%).
    pub cpu_success: Option<f64>,
    /// §V-C availability analysis over the operational period.
    pub availability: Availability,
    /// The operational-period outages the availability analysis was
    /// computed from — retained so the serving layer can re-bucket
    /// downtime by civil time (the availability rollup).
    pub op_outages: Vec<OutageRecord>,
    /// MTTF estimate (overall operational per-node MTBE), the paper's
    /// conservative every-error-interrupts assumption.
    pub mttf_hours: Option<f64>,
}

impl StudyReport {
    /// The availability estimate via the paper's formula, if computable.
    pub fn availability_estimate(&self) -> Option<f64> {
        self.availability.availability_from_mttf(self.mttf_hours?)
    }

    /// The outlier exclusion, by reference.
    pub fn outlier(&self) -> Option<&OutlierReport> {
        self.outlier.as_ref()
    }
}

/// A trust qualifier attached to a lenient run's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Caveat {
    /// The log stream died mid-scan; the error window is incomplete.
    InputIoError,
    /// More than [`QuarantineReport::HIGH_REJECT_RATE`] of the scanned
    /// log lines were quarantined — the surviving sample may be biased.
    HighRejectRate {
        /// Quarantined lines.
        rejected: u64,
        /// Lines scanned.
        seen: u64,
    },
    /// Lines were quarantined and *no* events were extracted at all: the
    /// corruption may have eaten the signal, not just the noise.
    NothingExtracted,
}

impl fmt::Display for Caveat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Caveat::InputIoError => {
                write!(f, "log stream I/O error: the scan ended early")
            }
            Caveat::HighRejectRate { rejected, seen } => write!(
                f,
                "high reject rate: {rejected} of {seen} log lines quarantined"
            ),
            Caveat::NothingExtracted => {
                write!(f, "lines were quarantined but no events were extracted")
            }
        }
    }
}

/// What a lenient run refused to ingest, and how much that should worry
/// the reader.
#[derive(Debug, Clone)]
pub struct QuarantineReport {
    /// Per-category reject counts plus exemplar bad lines.
    pub ledger: QuarantineLedger,
    /// Result-trust qualifiers derived from the ledger and the scan
    /// counters; empty means the inputs were clean (or losslessly dirty —
    /// e.g. only duplicate floods, which quarantine nothing).
    pub caveats: Vec<Caveat>,
}

impl QuarantineReport {
    /// Reject fraction above which [`Caveat::HighRejectRate`] is raised.
    pub const HIGH_REJECT_RATE: f64 = 0.05;

    pub(crate) fn from_scan(ledger: QuarantineLedger, stats: ExtractStats) -> Self {
        let mut caveats = Vec::new();
        if ledger.io_errors() > 0 {
            caveats.push(Caveat::InputIoError);
        }
        // Rate the *log scan* only: the ledger is shared with the CSV
        // parsers, whose row rejects are counted in different units than
        // `lines_seen` and would skew the fraction.
        let rejected = stats.quarantined.total();
        let seen = stats.lines_seen;
        if seen > 0 && rejected as f64 / seen as f64 > Self::HIGH_REJECT_RATE {
            caveats.push(Caveat::HighRejectRate { rejected, seen });
        }
        if rejected > 0 && stats.extracted == 0 {
            caveats.push(Caveat::NothingExtracted);
        }
        QuarantineReport { ledger, caveats }
    }

    /// True when nothing was quarantined and no caveat applies.
    pub fn is_clean(&self) -> bool {
        self.ledger.is_empty() && self.caveats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpclog::{LogLine, PciAddr, Timestamp};
    use xid::XidCode;

    fn pipeline() -> Pipeline {
        Pipeline::delta()
    }

    fn op_time(secs: u64) -> Timestamp {
        StudyPeriods::delta().op.start + Duration::from_secs(secs)
    }

    fn xid_line(t: Timestamp, host: &str, gpu: u8, code: u16) -> LogLine {
        XidEvent::new(
            t,
            host,
            PciAddr::for_gpu_index(gpu),
            XidCode::new(code),
            "detail",
        )
        .to_log_line()
    }

    fn gpu_job(id: u64, host: &str, gpu: u8, start: u64, end: u64, ok: bool) -> AccountedJob {
        AccountedJob {
            id,
            name: format!("job{id}"),
            submit: op_time(start.saturating_sub(10)),
            start: op_time(start),
            end: op_time(end),
            gpus: 1,
            gpu_slots: vec![(host.to_owned(), gpu)],
            completed: ok,
        }
    }

    #[test]
    fn end_to_end_from_raw_lines() {
        let mut archive = Archive::new();
        // Three duplicate GSP lines -> one coalesced error that kills a job.
        for d in [0, 5, 10] {
            archive.push(xid_line(op_time(1000 + d), "gpub001", 0, 119));
        }
        // Noise and an excluded software XID.
        archive.push(LogLine::new(
            op_time(500),
            "gpub001",
            "kernel",
            "usb 1-1 connected",
        ));
        archive.push(xid_line(op_time(2000), "gpub002", 1, 13));

        let jobs = [gpu_job(1, "gpub001", 0, 900, 1005, false)];
        let outages = [OutageRecord {
            host: "gpub001".to_owned(),
            start: op_time(1300),
            duration: Duration::from_mins(53),
        }];
        let report = pipeline().run(&archive, &jobs, &[], &outages);

        let es = report.extract_stats.unwrap();
        assert_eq!(es.extracted, 3);
        assert_eq!(es.excluded, 1);
        assert_eq!(report.coalesce_summary.errors, 1);
        assert_eq!(report.coalesce_summary.raw_lines, 3);
        assert_eq!(report.stats.count(ErrorKind::GspError, Phase::Op), 1);
        let k = report.impact.kind(ErrorKind::GspError);
        assert_eq!((k.encountered, k.failed), (1, 1));
        assert_eq!(report.impact.gpu_failed_jobs(), 1);
        assert!((report.availability.mttr_hours().unwrap() - 53.0 / 60.0).abs() < 1e-9);
        assert!(report.availability_estimate().is_some());
    }

    #[test]
    fn storm_outlier_excluded_from_headline_stats() {
        let pre = StudyPeriods::delta().pre_op.start;
        let mut events = Vec::new();
        // Faulty GPU: 500 uncontained errors, minutes apart (no coalescing).
        for i in 0..500u64 {
            events.push(XidEvent::new(
                pre + Duration::from_secs(i * 300),
                "gpub038",
                PciAddr::for_gpu_index(2),
                XidCode::UNCONTAINED_ECC,
                "",
            ));
        }
        // Healthy background: 5 uncontained errors elsewhere.
        for i in 0..5u64 {
            events.push(XidEvent::new(
                pre + Duration::from_days(i + 10),
                "gpub001",
                PciAddr::for_gpu_index(0),
                XidCode::UNCONTAINED_ECC,
                "",
            ));
        }
        let report = pipeline().run_events(events, None, &[], &[], &[]);
        // Raw stats see everything; headline stats see only the background.
        assert_eq!(
            report
                .stats_raw
                .count(ErrorKind::UncontainedMemoryError, Phase::PreOp),
            505
        );
        assert_eq!(
            report
                .stats
                .count(ErrorKind::UncontainedMemoryError, Phase::PreOp),
            5
        );
        let outlier = report.outlier().expect("storm detected");
        assert_eq!(outlier.host, "gpub038");
        assert_eq!(outlier.excluded_errors, 500);
    }

    #[test]
    fn availability_counts_op_outages_only() {
        let pre_outage = OutageRecord {
            host: "gpub001".to_owned(),
            start: StudyPeriods::delta().pre_op.start + Duration::from_days(3),
            duration: Duration::from_hours(2),
        };
        let op_outage = OutageRecord {
            host: "gpub002".to_owned(),
            start: op_time(5000),
            duration: Duration::from_mins(30),
        };
        let report = pipeline().run_events(Vec::new(), None, &[], &[], &[pre_outage, op_outage]);
        assert_eq!(report.availability.outage_count(), 1);
        assert!((report.availability.mttr_hours().unwrap() - 0.5).abs() < 1e-9);
        // No errors -> no MTTF -> no formula-based estimate.
        assert_eq!(report.mttf_hours, None);
        assert_eq!(report.availability_estimate(), None);
    }

    fn render_log(archive: &Archive) -> Vec<u8> {
        let mut out = Vec::new();
        for line in archive.iter() {
            out.extend_from_slice(line.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }

    fn sample_inputs() -> (Archive, String, String) {
        let mut archive = Archive::new();
        for d in [0, 5, 10] {
            archive.push(xid_line(op_time(1000 + d), "gpub001", 0, 119));
        }
        archive.push(LogLine::new(
            op_time(500),
            "gpub001",
            "kernel",
            "usb 1-1 connected",
        ));
        let jobs = crate::csvio::render_jobs(&[gpu_job(1, "gpub001", 0, 900, 1005, false)]);
        let outages = crate::csvio::render_outages(&[OutageRecord {
            host: "gpub001".to_owned(),
            start: op_time(1300),
            duration: Duration::from_mins(53),
        }]);
        (archive, jobs, outages)
    }

    #[test]
    fn run_csv_strict_roundtrip() {
        let (archive, jobs, outages) = sample_inputs();
        let report = pipeline()
            .run_csv(
                render_log(&archive).as_slice(),
                2022,
                &jobs,
                &crate::csvio::render_jobs(&[]),
                &outages,
            )
            .unwrap();
        assert_eq!(report.coalesce_summary.errors, 1);
        assert_eq!(report.impact.gpu_failed_jobs(), 1);
    }

    #[test]
    fn run_csv_reports_typed_errors() {
        let (archive, jobs, _) = sample_inputs();
        let err = pipeline()
            .run_csv(
                render_log(&archive).as_slice(),
                2022,
                &jobs,
                "",
                "bad outages\nrow\n",
            )
            .unwrap_err();
        match err {
            crate::error::PipelineError::Csv { input, .. } => {
                assert_eq!(input, crate::error::CsvInput::CpuJobs);
            }
            other => panic!("expected a CSV error, got {other:?}"),
        }
    }

    #[test]
    fn run_lenient_matches_strict_on_clean_input() {
        let (archive, jobs, outages) = sample_inputs();
        let empty = crate::csvio::render_jobs(&[]);
        let strict = pipeline()
            .run_csv(
                render_log(&archive).as_slice(),
                2022,
                &jobs,
                &empty,
                &outages,
            )
            .unwrap();
        let (report, quarantine) = pipeline().run_lenient(
            render_log(&archive).as_slice(),
            2022,
            &jobs,
            &empty,
            &outages,
        );
        assert!(quarantine.is_clean(), "{:?}", quarantine.ledger.counts());
        assert_eq!(
            report.coalesce_summary.errors,
            strict.coalesce_summary.errors
        );
        assert_eq!(
            report.impact.gpu_failed_jobs(),
            strict.impact.gpu_failed_jobs()
        );
        assert_eq!(
            report.availability.outage_count(),
            strict.availability.outage_count()
        );
    }

    #[test]
    fn run_lenient_degrades_instead_of_failing() {
        let (archive, jobs, outages) = sample_inputs();
        let mut log = render_log(&archive);
        // Corrupt the stream: garbage bytes and a bad jobs row appended.
        log.extend_from_slice(b"\xFF\xFE not a line\n");
        let jobs = format!("{jobs}this,row,is,bad\n");
        let (report, quarantine) =
            pipeline().run_lenient(log.as_slice(), 2022, &jobs, "", &outages);
        // The good data still flows through...
        assert_eq!(report.coalesce_summary.errors, 1);
        assert_eq!(report.availability.outage_count(), 1);
        // ...and the defects are accounted for, not swallowed.
        use hpclog::quarantine::QuarantineCategory as Q;
        assert_eq!(quarantine.ledger.counts().get(Q::Encoding), 1);
        assert_eq!(quarantine.ledger.counts().get(Q::BadRecord), 1);
        assert!(!quarantine.is_clean());
    }

    #[test]
    fn run_lenient_caveats_flag_distrust() {
        // A log that is mostly garbage triggers the high-reject caveat.
        let log = b"\xFFgarbage\n\xFFgarbage\n\xFFgarbage\nMar 14 03:22:07 gpub042 kernel: ok\n";
        let (_, quarantine) = pipeline().run_lenient(&log[..], 2024, "", "", "");
        assert!(quarantine.caveats.iter().any(|c| matches!(
            c,
            Caveat::HighRejectRate {
                rejected: 3,
                seen: 4
            }
        )));
        assert!(quarantine.caveats.contains(&Caveat::NothingExtracted));
        // Caveats render for humans.
        for c in &quarantine.caveats {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn success_rates_flow_through() {
        let jobs = [
            gpu_job(1, "gpub001", 0, 100, 200, true),
            gpu_job(2, "gpub001", 1, 100, 200, false),
        ];
        let cpu = [AccountedJob {
            gpus: 0,
            gpu_slots: Vec::new(),
            ..jobs[0].clone()
        }];
        let report = pipeline().run_events(Vec::new(), None, &jobs, &cpu, &[]);
        assert_eq!(report.gpu_success, Some(0.5));
        assert_eq!(report.cpu_success, Some(1.0));
        assert_eq!(report.mix.len(), 8);
        assert_eq!(report.mix[0].count, 2);
    }
}
