//! The DSN'25 Delta GPU resilience analysis pipeline.
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! library: the Stage I–III pipeline of Fig. 1 that turns raw per-day
//! system logs and Slurm accounting records into the published tables and
//! findings.
//!
//! ```text
//!  raw syslog text ──► extraction (hpclog) ──► coalescing ──► error stats   (Table I)
//!                                                   │
//!  sacct job records ───────────────────────────────┴──► job impact        (Tables II, III)
//!                                                   │
//!  node outage records ─────────────────────────────┴──► availability      (Fig. 2, §V-C)
//! ```
//!
//! # Modules
//!
//! * [`mod@coalesce`] — Fig. 1 stage ii: merge duplicated identical error lines
//!   from the same GPU within a window Δt into single errors.
//! * [`stats`] — error counts and system-wide / per-node MTBE per study
//!   phase, category roll-ups (the "memory is 160× more reliable than
//!   hardware" comparison), and the SRE outlier-exclusion rule for the
//!   faulty-GPU storm.
//! * [`impact`] — §V: the 20-second attribution window joining GPU errors
//!   to job terminations, per-kind conditional failure probabilities
//!   (Table II) and the workload-mix statistics (Table III).
//! * [`availability`] — §V-C: MTTR from outage durations, the
//!   MTTF/(MTTF+MTTR) availability estimate and the Fig. 2 unavailability
//!   distribution.
//! * [`histogram`] — fixed-bin histograms and percentiles used by both.
//! * [`report`] — ASCII and CSV renderers for every table and figure.
//! * [`rollup`] — the shared grouped-fold aggregation kernel the table
//!   computations route through, plus DST-correct civil-time rollup
//!   cubes (errors, impact, availability) built per store shard and
//!   k-way merged for the serving layer.
//! * [`survival`] — Kaplan–Meier time-to-first-error analysis (the Titan
//!   survival-analysis lens from the paper's related work).
//! * [`spatial`] — per-GPU error concentration: top-k shares, Gini
//!   coefficient, hot-GPU detection (the SRE replacement-candidate view).
//! * [`burst`] — inter-arrival burstiness and episode detection,
//!   recovering the flapping structure of §IV from the error stream.
//! * [`pipeline`] — the end-to-end driver: raw [`hpclog::archive::Archive`]
//!   plus job and outage records in, a [`pipeline::StudyReport`] out. The
//!   lenient entry point ([`Pipeline::run_lenient`]) never panics or
//!   aborts: defective input lands in a [`pipeline::QuarantineReport`].
//! * [`incremental`] — the streaming twin of [`pipeline`]: log bytes and
//!   job records in arbitrary-sized batches, bounded live state, and
//!   versioned checkpoint/restore — proven byte-equivalent to the batch
//!   path at every batching and cut point by the differential test layer.
//! * [`checkpoint`] — the hand-rolled versioned snapshot container the
//!   streaming engine serializes into (magic, version, typed decode
//!   errors; no external serialization crates).
//! * [`error`] — the typed failure taxonomy the strict entry points
//!   return instead of `Box<dyn Error>`.
//! * [`findings`] — programmatic checks of the paper's headline findings
//!   (i)–(vii) against a computed report.
//! * [`scenario`] — counterfactual campaigns over the simulation
//!   substrates (`faultsim` → `clustersim` → `slurmsim`): typed
//!   what-if specs (MTTR scaling, per-XID hazard multipliers,
//!   scheduler policy), canonical cache keys, and seeded paired
//!   baseline-vs-scenario repetitions; the compute layer behind the
//!   serving `/whatif` endpoint.
//!
//! # Example
//!
//! ```
//! use resilience::coalesce::coalesce;
//! use resilience::job::AccountedJob;
//! use hpclog::{Timestamp, XidEvent, PciAddr};
//! use simtime::Duration;
//! use xid::XidCode;
//!
//! // Three identical lines within 60 s are one error.
//! let t = Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7)?;
//! let mk = |secs| XidEvent::new(
//!     t + Duration::from_secs(secs), "gpub042", PciAddr::for_gpu_index(0),
//!     XidCode::GSP_RPC_TIMEOUT, "GSP timeout");
//! let merged = coalesce([mk(0), mk(5), mk(40)], Duration::from_secs(60));
//! assert_eq!(merged.len(), 1);
//! assert_eq!(merged[0].merged_lines, 3);
//! # Ok::<(), hpclog::ParseTimestampError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod burst;
pub mod checkpoint;
pub mod coalesce;
pub mod correlate;
pub mod csvio;
pub mod error;
pub mod findings;
pub mod histogram;
pub mod impact;
pub mod incremental;
pub mod job;
pub mod markdown;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod rollup;
pub mod scenario;
pub mod spatial;
pub mod stats;
pub mod survival;
pub mod timeseries;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use coalesce::{coalesce, CoalescedError};
pub use error::PipelineError;
pub use incremental::{SnapshotSink, StreamingPipeline};
pub use job::{AccountedJob, OutageRecord};
pub use pipeline::{Caveat, Pipeline, QuarantineReport, StudyReport};
