//! Availability analysis — §V-C: MTTR, the MTTF/(MTTF+MTTR) availability
//! estimate, downtime-per-day, and the Fig. 2 unavailability distribution.

use crate::histogram::Histogram;
use crate::job::OutageRecord;

/// The §V-C availability computation over a set of outages and an MTTF
/// estimate derived from error statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Availability {
    durations_hours: Vec<f64>,
    node_count: usize,
    window_hours: f64,
}

impl Availability {
    /// Builds the analysis from outage records over a `window_hours`-long
    /// observation window on `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero or `window_hours` is not positive.
    pub fn compute(outages: &[OutageRecord], node_count: usize, window_hours: f64) -> Self {
        assert!(node_count > 0 && window_hours > 0.0);
        Availability {
            durations_hours: outages.iter().map(OutageRecord::hours).collect(),
            node_count,
            window_hours,
        }
    }

    /// Number of outages observed.
    pub fn outage_count(&self) -> usize {
        self.durations_hours.len()
    }

    /// Mean time to repair in hours (the paper reports 0.88 h), `None`
    /// with no outages.
    pub fn mttr_hours(&self) -> Option<f64> {
        if self.durations_hours.is_empty() {
            None
        } else {
            Some(self.durations_hours.iter().sum::<f64>() / self.durations_hours.len() as f64)
        }
    }

    /// Cumulative node-hours lost (the paper reports ≈ 5,700).
    pub fn total_downtime_node_hours(&self) -> f64 {
        self.durations_hours.iter().sum()
    }

    /// The paper's availability formula `MTTF / (MTTF + MTTR)` with an
    /// externally supplied MTTF (derived from MTBE under the conservative
    /// assumption that every error interrupts the node). Reported: 99.5%.
    pub fn availability_from_mttf(&self, mttf_hours: f64) -> Option<f64> {
        let mttr = self.mttr_hours()?;
        Some(mttf_hours / (mttf_hours + mttr))
    }

    /// Empirical availability from the downtime ledger itself:
    /// `1 − downtime / (nodes × window)`.
    pub fn availability_empirical(&self) -> f64 {
        (1.0 - self.total_downtime_node_hours() / (self.node_count as f64 * self.window_hours))
            .max(0.0)
    }

    /// Converts an availability fraction into minutes of downtime per node
    /// per day (the paper's "7 minutes per day").
    pub fn downtime_minutes_per_day(availability: f64) -> f64 {
        (1.0 - availability) * 24.0 * 60.0
    }

    /// The Fig. 2 unavailability-duration distribution as a histogram over
    /// `[0, cap_hours)` with `bins` bins (outliers land in the overflow
    /// bin).
    pub fn duration_histogram(&self, cap_hours: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, cap_hours, bins);
        for &d in &self.durations_hours {
            h.add(d);
        }
        h
    }

    /// The raw outage durations in hours (the Fig. 2 sample).
    pub fn durations_hours(&self) -> &[f64] {
        &self.durations_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{Duration, Timestamp};

    fn outage(mins: u64) -> OutageRecord {
        OutageRecord {
            host: "gpub001".to_owned(),
            start: Timestamp::from_unix(0),
            duration: Duration::from_mins(mins),
        }
    }

    #[test]
    fn mttr_and_total() {
        let a = Availability::compute(&[outage(60), outage(30)], 106, 1000.0);
        assert_eq!(a.outage_count(), 2);
        assert!((a.mttr_hours().unwrap() - 0.75).abs() < 1e-12);
        assert!((a.total_downtime_node_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_has_no_mttr_full_availability() {
        let a = Availability::compute(&[], 106, 1000.0);
        assert_eq!(a.mttr_hours(), None);
        assert_eq!(a.availability_from_mttf(162.0), None);
        assert!((a.availability_empirical() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_formula() {
        // MTTF 162 h, MTTR 0.88 h -> 99.46% ≈ the paper's 99.5%.
        let a = Availability::compute(&[outage(53)], 106, 1000.0);
        let avail = a.availability_from_mttf(162.0).unwrap();
        assert!((avail - 162.0 / (162.0 + 53.0 / 60.0)).abs() < 1e-9);
        assert!(avail > 0.994 && avail < 0.995);
        // 0.5% unavailability is about 7 minutes per day.
        let mins = Availability::downtime_minutes_per_day(0.995);
        assert!((mins - 7.2).abs() < 0.01);
    }

    #[test]
    fn empirical_availability() {
        // 10 nodes, 100 h window, 5 node-hours lost: 99.5%.
        let outages: Vec<OutageRecord> = (0..5).map(|_| outage(60)).collect();
        let a = Availability::compute(&outages, 10, 100.0);
        assert!((a.availability_empirical() - 0.995).abs() < 1e-12);
    }

    #[test]
    fn histogram_shape() {
        let outages: Vec<OutageRecord> = [10u64, 20, 50, 50, 55, 120, 300]
            .iter()
            .map(|&m| outage(m))
            .collect();
        let a = Availability::compute(&outages, 106, 1000.0);
        let h = a.duration_histogram(4.0, 8);
        assert_eq!(h.count(), 7);
        assert_eq!(h.overflow(), 1); // the 5 h outage
        assert_eq!(a.durations_hours().len(), 7);
    }
}
