//! Throughput benchmarks for every pipeline stage: log parsing/extraction,
//! coalescing, the impact join, and whole-campaign execution.

use clustersim::Cluster;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use delta_gpu_resilience::bridge;
use faultsim::{Campaign, FaultConfig};
use hpclog::extract::XidExtractor;
use resilience::coalesce::coalesce;
use resilience::impact::JobImpact;
use resilience::Pipeline;
use simtime::Duration;
use slurmsim::{Simulation, WorkloadConfig};
use std::hint::black_box;

/// A prepared corpus: rendered log lines plus matching structured data.
struct Corpus {
    raw_lines: Vec<String>,
    events: Vec<hpclog::XidEvent>,
    jobs: Vec<resilience::AccountedJob>,
    errors: Vec<resilience::CoalescedError>,
}

fn build_corpus() -> Corpus {
    let mut config = FaultConfig::delta_scaled(0.03);
    config.seed = 0xBE7C;
    let campaign = Campaign::new(config).run();
    let raw_lines: Vec<String> = campaign.archive.iter().map(|l| l.to_string()).collect();
    let mut extractor = XidExtractor::studied_only(2022);
    let events: Vec<_> = campaign.archive.iter().filter_map(|l| extractor.extract(l)).collect();
    let errors = coalesce(events.clone(), Duration::from_secs(20));

    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.03), 1)
        .run(&campaign.ground_truth, &campaign.holds);
    Corpus { raw_lines, events, jobs: bridge::jobs(&outcome.jobs), errors }
}

fn bench_stages(c: &mut Criterion) {
    let corpus = build_corpus();

    // Stage I: raw-line parsing + XID extraction.
    let mut group = c.benchmark_group("stage1_extract");
    group.throughput(Throughput::Elements(corpus.raw_lines.len() as u64));
    group.bench_function("parse_and_extract", |b| {
        b.iter(|| {
            let mut extractor = XidExtractor::studied_only(2022);
            let n = corpus
                .raw_lines
                .iter()
                .filter_map(|l| extractor.extract_raw(l))
                .count();
            black_box(n)
        })
    });
    group.finish();

    // Stage II: coalescing.
    let mut group = c.benchmark_group("stage2_coalesce");
    group.throughput(Throughput::Elements(corpus.events.len() as u64));
    group.bench_function("coalesce_20s", |b| {
        b.iter_batched(
            || corpus.events.clone(),
            |events| black_box(coalesce(events, Duration::from_secs(20))),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // Stage III: the impact join.
    let mut group = c.benchmark_group("stage3_impact");
    group.throughput(Throughput::Elements(corpus.errors.len() as u64));
    group.bench_function("attribution_join", |b| {
        b.iter(|| {
            black_box(JobImpact::compute(
                &corpus.jobs,
                &corpus.errors,
                Duration::from_secs(20),
            ))
        })
    });
    group.finish();

    // Whole campaign (fault injection only, logs off) and whole pipeline.
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("campaign_1pct_no_logs", |b| {
        b.iter(|| {
            let mut config = FaultConfig::delta_scaled(0.01);
            config.seed = 3;
            config.emit_logs = false;
            black_box(Campaign::new(config).run())
        })
    });
    group.bench_function("scheduler_1pct", |b| {
        let mut config = FaultConfig::delta_scaled(0.01);
        config.seed = 4;
        config.emit_logs = false;
        let campaign = Campaign::new(config).run();
        let cluster = Cluster::new(campaign.config.spec);
        b.iter(|| {
            black_box(
                Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.01), 5)
                    .run(&campaign.ground_truth, &campaign.holds),
            )
        })
    });
    group.bench_function("pipeline_on_corpus", |b| {
        let mut pipeline = Pipeline::delta();
        pipeline.periods = simtime::StudyPeriods::delta_scaled(0.03);
        b.iter_batched(
            || corpus.events.clone(),
            |events| black_box(pipeline.run_events(events, None, &corpus.jobs, &[], &[])),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
