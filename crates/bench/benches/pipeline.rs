//! Throughput benchmarks for every pipeline stage: log parsing/extraction,
//! coalescing, the impact join, and whole-campaign execution.
//!
//! Plain `harness = false` binaries on the in-repo [`bench::stopwatch`]
//! harness (no external benchmarking dependency; the workspace must build
//! offline). Run with `cargo bench -p bench`.

use bench::stopwatch::bench;
use clustersim::Cluster;
use delta_gpu_resilience::bridge;
use faultsim::{Campaign, FaultConfig};
use hpclog::extract::XidExtractor;
use resilience::coalesce::coalesce;
use resilience::impact::JobImpact;
use resilience::Pipeline;
use simtime::Duration;
use slurmsim::{Simulation, WorkloadConfig};
use std::hint::black_box;

/// A prepared corpus: rendered log lines plus matching structured data.
struct Corpus {
    raw_lines: Vec<String>,
    events: Vec<hpclog::XidEvent>,
    jobs: Vec<resilience::AccountedJob>,
    errors: Vec<resilience::CoalescedError>,
}

fn build_corpus() -> Corpus {
    let mut config = FaultConfig::delta_scaled(0.03);
    config.seed = 0xBE7C;
    let campaign = Campaign::new(config).run();
    let raw_lines: Vec<String> = campaign.archive.iter().map(|l| l.to_string()).collect();
    let mut extractor = XidExtractor::studied_only(2022);
    let events: Vec<_> = campaign
        .archive
        .iter()
        .filter_map(|l| extractor.extract(l))
        .collect();
    let errors = coalesce(events.clone(), Duration::from_secs(20));

    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.03), 1)
        .run(&campaign.ground_truth, &campaign.holds);
    Corpus {
        raw_lines,
        events,
        jobs: bridge::jobs(&outcome.jobs),
        errors,
    }
}

fn main() {
    let corpus = build_corpus();

    // Stage I: raw-line parsing + XID extraction.
    bench(
        "stage1_extract/parse_and_extract",
        corpus.raw_lines.len() as u64,
        10,
        || {
            let mut extractor = XidExtractor::studied_only(2022);
            corpus
                .raw_lines
                .iter()
                .filter_map(|l| extractor.extract_raw(l))
                .count()
        },
    );

    // Stage II: coalescing.
    bench(
        "stage2_coalesce/coalesce_20s",
        corpus.events.len() as u64,
        10,
        || coalesce(corpus.events.clone(), Duration::from_secs(20)),
    );

    // Stage III: the impact join.
    bench(
        "stage3_impact/attribution_join",
        corpus.errors.len() as u64,
        10,
        || JobImpact::compute(&corpus.jobs, &corpus.errors, Duration::from_secs(20)),
    );

    // Whole campaign (fault injection only, logs off) and whole pipeline.
    bench("end_to_end/campaign_1pct_no_logs", 0, 5, || {
        let mut config = FaultConfig::delta_scaled(0.01);
        config.seed = 3;
        config.emit_logs = false;
        Campaign::new(config).run()
    });

    {
        let mut config = FaultConfig::delta_scaled(0.01);
        config.seed = 4;
        config.emit_logs = false;
        let campaign = Campaign::new(config).run();
        let cluster = Cluster::new(campaign.config.spec);
        bench("end_to_end/scheduler_1pct", 0, 5, || {
            Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.01), 5)
                .run(&campaign.ground_truth, &campaign.holds)
        });
    }

    {
        let mut pipeline = Pipeline::delta();
        pipeline.periods = simtime::StudyPeriods::delta_scaled(0.03);
        bench("end_to_end/pipeline_on_corpus", 0, 5, || {
            black_box(pipeline.run_events(corpus.events.clone(), None, &corpus.jobs, &[], &[]))
        });
    }
}
