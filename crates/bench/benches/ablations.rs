//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * coalescing-window sweep — how Δt trades accuracy for work (and why
//!   the study's counts depend on it);
//! * attribution-window sweep — sensitivity of the Table II join;
//! * storm on/off — what the 17-day episode costs the parsing stage;
//! * pattern-matching — the filter engine vs a naive substring scan.
//!
//! Plain `harness = false` binaries on the in-repo [`bench::stopwatch`]
//! harness. Run with `cargo bench -p bench`.

use bench::stopwatch::bench;
use faultsim::{Campaign, FaultConfig};
use hpclog::extract::XidExtractor;
use hpclog::pattern::FilterSet;
use resilience::coalesce::coalesce;
use resilience::impact::JobImpact;
use simtime::Duration;
use std::hint::black_box;

fn corpus_events(storm: bool, seed: u64) -> (Vec<String>, Vec<hpclog::XidEvent>) {
    let mut config = FaultConfig::delta_scaled(0.02);
    config.seed = seed;
    if !storm {
        config.storm = None;
    }
    let campaign = Campaign::new(config).run();
    let lines: Vec<String> = campaign.archive.iter().map(|l| l.to_string()).collect();
    let mut extractor = XidExtractor::studied_only(2022);
    let events: Vec<_> = campaign
        .archive
        .iter()
        .filter_map(|l| extractor.extract(l))
        .collect();
    (lines, events)
}

fn bench_coalesce_window_sweep() {
    let (_, events) = corpus_events(true, 0xAB1);
    for window_secs in [1u64, 5, 20, 60, 300, 600] {
        bench(
            &format!("ablation_coalesce_window/{window_secs}"),
            events.len() as u64,
            10,
            || coalesce(events.clone(), Duration::from_secs(window_secs)).len(),
        );
    }
}

fn bench_attribution_window_sweep() {
    use clustersim::Cluster;
    use delta_gpu_resilience::bridge;
    use slurmsim::{Simulation, WorkloadConfig};

    let mut config = FaultConfig::delta_scaled(0.02);
    config.seed = 0xAB2;
    config.emit_logs = false;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.02), 9)
        .run(&campaign.ground_truth, &campaign.holds);
    let jobs = bridge::jobs(&outcome.jobs);
    let events: Vec<_> = campaign
        .ground_truth
        .iter()
        .map(|e| {
            hpclog::XidEvent::new(
                e.time,
                e.gpu.node.hostname(),
                hpclog::PciAddr::for_gpu_index(e.gpu.index),
                e.kind.primary_code(),
                "",
            )
        })
        .collect();
    let errors = coalesce(events, Duration::from_secs(20));

    for window_secs in [5u64, 20, 60] {
        bench(
            &format!("ablation_attribution_window/{window_secs}"),
            errors.len() as u64,
            10,
            || JobImpact::compute(&jobs, &errors, Duration::from_secs(window_secs)),
        );
    }
}

fn bench_storm_parse_cost() {
    let (with_storm, _) = corpus_events(true, 0xAB3);
    let (without_storm, _) = corpus_events(false, 0xAB3);
    for (name, lines) in [
        ("with_storm", &with_storm),
        ("without_storm", &without_storm),
    ] {
        bench(
            &format!("ablation_storm_parse/{name}"),
            lines.len() as u64,
            5,
            || {
                let mut extractor = XidExtractor::studied_only(2022);
                lines
                    .iter()
                    .filter_map(|l| extractor.extract_raw(l))
                    .count()
            },
        );
    }
}

fn bench_pattern_engine() {
    let (lines, _) = corpus_events(false, 0xAB4);
    let filter = FilterSet::compile(&[
        "*NVRM: Xid (PCI:{w}): {d},*",
        "*Row remapping*",
        "*fallen off the bus*",
    ])
    .expect("static patterns compile");
    bench(
        "ablation_pattern_matching/filterset",
        lines.len() as u64,
        10,
        || black_box(lines.iter().filter(|l| filter.matches(l)).count()),
    );
    bench(
        "ablation_pattern_matching/naive_substring",
        lines.len() as u64,
        10,
        || {
            black_box(
                lines
                    .iter()
                    .filter(|l| {
                        l.contains("NVRM: Xid")
                            || l.contains("Row remapping")
                            || l.contains("fallen off the bus")
                    })
                    .count(),
            )
        },
    );
}

fn main() {
    bench_coalesce_window_sweep();
    bench_attribution_window_sweep();
    bench_storm_parse_cost();
    bench_pattern_engine();
}
