//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * coalescing-window sweep — how Δt trades accuracy for work (and why
//!   the study's counts depend on it);
//! * attribution-window sweep — sensitivity of the Table II join;
//! * storm on/off — what the 17-day episode costs the parsing stage;
//! * pattern-matching — the filter engine vs a naive substring scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faultsim::{Campaign, FaultConfig};
use hpclog::extract::XidExtractor;
use hpclog::pattern::FilterSet;
use resilience::coalesce::coalesce;
use resilience::impact::JobImpact;
use simtime::Duration;
use std::hint::black_box;

fn corpus_events(storm: bool, seed: u64) -> (Vec<String>, Vec<hpclog::XidEvent>) {
    let mut config = FaultConfig::delta_scaled(0.02);
    config.seed = seed;
    if !storm {
        config.storm = None;
    }
    let campaign = Campaign::new(config).run();
    let lines: Vec<String> = campaign.archive.iter().map(|l| l.to_string()).collect();
    let mut extractor = XidExtractor::studied_only(2022);
    let events: Vec<_> = campaign.archive.iter().filter_map(|l| extractor.extract(l)).collect();
    (lines, events)
}

fn bench_coalesce_window_sweep(c: &mut Criterion) {
    let (_, events) = corpus_events(true, 0xAB1);
    let mut group = c.benchmark_group("ablation_coalesce_window");
    group.throughput(Throughput::Elements(events.len() as u64));
    for window_secs in [1u64, 5, 20, 60, 300, 600] {
        group.bench_with_input(
            BenchmarkId::from_parameter(window_secs),
            &window_secs,
            |b, &secs| {
                b.iter(|| {
                    black_box(coalesce(events.clone(), Duration::from_secs(secs)).len())
                })
            },
        );
    }
    group.finish();
}

fn bench_attribution_window_sweep(c: &mut Criterion) {
    use clustersim::Cluster;
    use delta_gpu_resilience::bridge;
    use slurmsim::{Simulation, WorkloadConfig};

    let mut config = FaultConfig::delta_scaled(0.02);
    config.seed = 0xAB2;
    config.emit_logs = false;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(0.02), 9)
        .run(&campaign.ground_truth, &campaign.holds);
    let jobs = bridge::jobs(&outcome.jobs);
    let events: Vec<_> = campaign
        .ground_truth
        .iter()
        .map(|e| {
            hpclog::XidEvent::new(
                e.time,
                e.gpu.node.hostname(),
                hpclog::PciAddr::for_gpu_index(e.gpu.index),
                e.kind.primary_code(),
                "",
            )
        })
        .collect();
    let errors = coalesce(events, Duration::from_secs(20));

    let mut group = c.benchmark_group("ablation_attribution_window");
    for window_secs in [5u64, 20, 60] {
        group.bench_with_input(
            BenchmarkId::from_parameter(window_secs),
            &window_secs,
            |b, &secs| {
                b.iter(|| {
                    black_box(JobImpact::compute(&jobs, &errors, Duration::from_secs(secs)))
                })
            },
        );
    }
    group.finish();
}

fn bench_storm_parse_cost(c: &mut Criterion) {
    let (with_storm, _) = corpus_events(true, 0xAB3);
    let (without_storm, _) = corpus_events(false, 0xAB3);
    let mut group = c.benchmark_group("ablation_storm_parse");
    group.sample_size(10);
    for (name, lines) in [("with_storm", &with_storm), ("without_storm", &without_storm)] {
        group.throughput(Throughput::Elements(lines.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut extractor = XidExtractor::studied_only(2022);
                black_box(lines.iter().filter_map(|l| extractor.extract_raw(l)).count())
            })
        });
    }
    group.finish();
}

fn bench_pattern_engine(c: &mut Criterion) {
    let (lines, _) = corpus_events(false, 0xAB4);
    let filter = FilterSet::compile(&[
        "*NVRM: Xid (PCI:{w}): {d},*",
        "*Row remapping*",
        "*fallen off the bus*",
    ])
    .expect("static patterns compile");
    let mut group = c.benchmark_group("ablation_pattern_matching");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("filterset", |b| {
        b.iter(|| black_box(lines.iter().filter(|l| filter.matches(l)).count()))
    });
    group.bench_function("naive_substring", |b| {
        b.iter(|| {
            black_box(
                lines
                    .iter()
                    .filter(|l| {
                        l.contains("NVRM: Xid")
                            || l.contains("Row remapping")
                            || l.contains("fallen off the bus")
                    })
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coalesce_window_sweep,
    bench_attribution_window_sweep,
    bench_storm_parse_cost,
    bench_pattern_engine
);
criterion_main!(benches);
