//! E12 parallel ingest sweep: Stage-I throughput across a threads ×
//! archive-size grid, against the serial baseline, with the determinism
//! contract asserted at every cell.
//!
//! One campaign is rendered once; day-prefix subsets of its archive give
//! the size axis. For every (size, threads) cell the sharded extractor
//! ([`resilience::parallel::parallel_extract`]) is timed against the
//! serial Stage-I scan, and its output — events *and* counters — must be
//! identical to the serial path's. The full-pipeline render (`report::full`
//! plus the markdown tables) is then compared byte-for-byte at every
//! thread count.
//!
//! ```text
//! cargo run --release -p bench --bin par_sweep [--smoke] [SCALE] [SEED]
//! ```
//!
//! `--smoke` runs a small fixed grid and asserts a machine-scaled
//! throughput floor (CI keeps it honest without assuming core counts).

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use delta_gpu_resilience::bridge;
use hpclog::archive::Archive;
use hpclog::extract::XidExtractor;
use hpclog::shard;
use resilience::parallel::parallel_extract;
use resilience::{markdown, report, Pipeline};
use std::time::Instant;

/// Worker counts swept (the grid's thread axis).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The scaled calendar starts Jan 1 2022; at scale ≤ 0.25 it ends before
/// New Year, so one fixed year resolves every year-less syslog stamp.
const LOG_YEAR: i32 = 2022;

fn main() {
    let (smoke, options) = parse_args();
    banner("Parallel ingest sweep (E12)", options);
    let study = run_study(options, true);
    let archive = &study.campaign.archive;
    println!(
        "archive: {} lines over {} days",
        archive.line_count(),
        archive.day_count()
    );

    let fractions: &[f64] = if smoke { &[1.0] } else { &[0.25, 0.5, 1.0] };
    let iters = if smoke { 3 } else { 5 };
    let mut smoke_ratio: Option<f64> = None;

    println!(
        "\nStage I (extract + canonical order), median of {iters} iters:\n\
         {:>10} {:>8} {:>12} {:>14} {:>9}",
        "lines", "threads", "median ms", "lines/s", "speedup"
    );
    for &frac in fractions {
        let sub = day_prefix(archive, frac);
        let lines = sub.line_count() as u64;
        let serial = median_secs(iters, || serial_extract(&sub));
        print_row(lines, 0, serial, 1.0);
        let (expect_events, expect_stats) = serial_extract(&sub);
        for t in THREADS {
            let (events, stats) = parallel_extract(&sub, t);
            assert_eq!(events, expect_events, "threads={t}: event stream differs");
            assert_eq!(stats, expect_stats, "threads={t}: counters differ");
            let par = median_secs(iters, || parallel_extract(&sub, t));
            let speedup = serial / par;
            print_row(lines, t, par, speedup);
            if smoke && frac == 1.0 && t == 4 {
                smoke_ratio = Some(speedup);
            }
        }
    }

    // Full-pipeline determinism: byte-identical renders at every thread
    // count, on both the strict-archive and the lenient byte-stream path.
    let gpu_jobs = bridge::jobs(&study.outcome.jobs);
    let cpu_jobs = bridge::jobs(&study.outcome.cpu_jobs);
    let outages = bridge::outages(study.campaign.ledger.outages());
    let mut pipeline = Pipeline::delta();
    pipeline.periods = study.campaign.config.periods;

    let serial_report = pipeline.run(archive, &gpu_jobs, &cpu_jobs, &outages);
    let serial_render = render_all(&serial_report);
    let serial_secs = median_secs(iters, || {
        pipeline.run(archive, &gpu_jobs, &cpu_jobs, &outages)
    });
    println!("\nfull pipeline, median of {iters} iters:");
    println!("  serial      {:>10.2} ms", serial_secs * 1e3);
    for t in THREADS {
        let par = pipeline.run_parallel(archive, &gpu_jobs, &cpu_jobs, &outages, t);
        assert_eq!(
            render_all(&par),
            serial_render,
            "threads={t}: full render differs from serial"
        );
        let par_secs = median_secs(iters, || {
            pipeline.run_parallel(archive, &gpu_jobs, &cpu_jobs, &outages, t)
        });
        println!(
            "  threads={t}   {:>10.2} ms   {:.2}x   render byte-identical",
            par_secs * 1e3,
            serial_secs / par_secs
        );
    }

    // Lenient path: identical ledger at every thread count.
    let log = render_log(archive);
    let gpu_csv = resilience::csvio::render_jobs(&gpu_jobs);
    let cpu_csv = resilience::csvio::render_jobs(&cpu_jobs);
    let out_csv = resilience::csvio::render_outages(&outages);
    let (lenient_report, lenient_q) =
        pipeline.run_lenient(log.as_slice(), LOG_YEAR, &gpu_csv, &cpu_csv, &out_csv);
    let lenient_render = render_all(&lenient_report);
    for t in THREADS {
        let (r, q) = pipeline.run_lenient_parallel(
            log.as_slice(),
            LOG_YEAR,
            &gpu_csv,
            &cpu_csv,
            &out_csv,
            t,
        );
        assert_eq!(
            render_all(&r),
            lenient_render,
            "threads={t}: lenient render"
        );
        assert_eq!(q.ledger.counts(), lenient_q.ledger.counts(), "threads={t}");
        assert_eq!(
            q.ledger.exemplars(),
            lenient_q.ledger.exemplars(),
            "threads={t}: lenient exemplars"
        );
    }
    println!("lenient path: ledger + render identical at threads {THREADS:?}");

    if let Some(ratio) = smoke_ratio {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // The floor scales with the machine: with real cores, 4 workers
        // must at least match serial; starved of cores, the shard/merge
        // overhead may cost up to half.
        let floor = if cores >= 4 {
            1.0
        } else if cores >= 2 {
            0.8
        } else {
            0.5
        };
        assert!(
            ratio >= floor,
            "smoke: 4-thread ingest ran {ratio:.2}x serial, below the \
             {floor:.1}x floor for {cores} cores"
        );
        println!(
            "smoke: 4-thread ingest {ratio:.2}x serial (floor {floor:.1}x, {cores} cores) — ok"
        );
    }
    println!("\nE12 complete: every cell byte-identical to serial.");
}

/// Parses `[--smoke] [SCALE] [SEED]` (RunOptions::from_args cannot eat the
/// flag). Defaults: scale 0.05 full grid, 0.02 smoke.
fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}

/// The serial Stage-I reference: exactly what `Pipeline::run` does before
/// `run_events`, plus the canonical sort both paths share.
fn serial_extract(archive: &Archive) -> (Vec<hpclog::XidEvent>, hpclog::extract::ExtractStats) {
    let mut ex = XidExtractor::studied_only(2024);
    let mut events: Vec<hpclog::XidEvent> = archive.iter().filter_map(|l| ex.extract(l)).collect();
    shard::canonical_sort(&mut events);
    (events, ex.stats())
}

/// The first `frac` of the archive's days, as its own archive.
fn day_prefix(archive: &Archive, frac: f64) -> Archive {
    let keep = ((archive.day_count() as f64 * frac).ceil() as usize).max(1);
    let mut out = Archive::new();
    for (_, lines) in archive.days().take(keep) {
        for line in lines {
            out.push(line.clone());
        }
    }
    out
}

fn median_secs<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn print_row(lines: u64, threads: usize, secs: f64, speedup: f64) {
    let label = if threads == 0 {
        "serial".to_owned()
    } else {
        threads.to_string()
    };
    println!(
        "{:>10} {:>8} {:>12.2} {:>14.0} {:>8.2}x",
        lines,
        label,
        secs * 1e3,
        lines as f64 / secs.max(1e-12),
        speedup
    );
}

/// Every deterministic render surface the study report exposes: the full
/// ASCII report plus the three markdown tables and Fig. 2.
fn render_all(r: &resilience::StudyReport) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{:?}",
        report::full(r),
        markdown::table1_md(r),
        markdown::table2_md(r),
        markdown::table3_md(r),
        report::figure2(r),
        r.availability_estimate()
    )
}

fn render_log(archive: &Archive) -> Vec<u8> {
    let mut out = Vec::new();
    for line in archive.iter() {
        out.extend_from_slice(line.to_string().as_bytes());
        out.push(b'\n');
    }
    out
}
