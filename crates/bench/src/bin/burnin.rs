//! E7 ablation: infant mortality vs constant hazard.
//!
//! The paper observes that NVLink and row-remap-failure rates *improved*
//! from the pre-operational to the operational period and credits early
//! replacement of defective GPUs. This ablation contrasts two generative
//! explanations over the same calendar:
//!
//! * a power-law (Weibull-intensity) process with shape < 1 — genuine
//!   infant mortality: defective links fail early and leave the population;
//! * the piecewise-constant two-rate process the main model uses.
//!
//! It prints weekly error counts for both, with trend slopes, so the
//! distinguishing signature (a smooth decay vs a step at the boundary) is
//! visible.
//!
//! ```text
//! cargo run --release -p bench --bin burnin [SCALE] [SEED]
//! ```

use bench::{banner, RunOptions};
use faultsim::hazard::{PiecewiseHazard, PowerLawProcess};
use hpclog::PciAddr;
use resilience::coalesce::CoalescedError;
use resilience::timeseries::ErrorSeries;
use simrng::Rng;
use simtime::{StudyPeriods, Timestamp};
use xid::ErrorKind;

fn collect<F>(mut next: F, start: Timestamp) -> Vec<CoalescedError>
where
    F: FnMut(Timestamp) -> Option<Timestamp>,
{
    let mut out = Vec::new();
    let mut t = start;
    while let Some(fire) = next(t) {
        out.push(CoalescedError {
            time: fire,
            host: "gpub001".to_owned(),
            pci: PciAddr::for_gpu_index(0),
            kind: ErrorKind::NvlinkError,
            merged_lines: 1,
        });
        t = fire;
    }
    out
}

fn main() {
    let options = RunOptions::from_args();
    banner(
        "Burn-in ablation (E7): infant mortality vs two-rate model",
        options,
    );
    let periods = StudyPeriods::delta_scaled(options.scale.min(0.3));
    let whole = periods.whole();

    // Calibrate both models to the same total: NVLink-scale counts.
    let total_target = 400.0 * whole.days() / 273.0;
    // Power law with shape 0.45: (T/s)^k = target  =>  s = T / target^(1/k).
    let shape = 0.45;
    let scale_hours = whole.hours() / total_target.powf(1.0 / shape);
    let power = PowerLawProcess::new(whole.start, whole.end, shape, scale_hours);
    // Two-rate: pre-op heavy, op light, same totals as the paper's ratio.
    let pre_rate = 0.7 * total_target / periods.pre_op.hours();
    let op_rate = 0.3 * total_target / periods.op.hours();
    let step = PiecewiseHazard::new(periods, pre_rate, op_rate);

    let mut rng = Rng::seed_from(options.seed);
    let infant = collect(|t| power.next_fire(t, &mut rng), whole.start);
    let mut rng = Rng::seed_from(options.seed ^ 1);
    let two_rate = collect(|t| step.next_fire(t, &mut rng), whole.start);

    for (name, errors) in [("infant-mortality", &infant), ("two-rate", &two_rate)] {
        let series = ErrorSeries::weekly(errors, Some(ErrorKind::NvlinkError), whole);
        println!(
            "{name:<18} total {:>5}  trend {:+.2} errors/week²\n  {}",
            series.total(),
            series.trend().unwrap_or(0.0),
            series.render()
        );
    }
    println!(
        "\nReading: both models produce 'pre-op worse than op', but the weekly\n\
         profile separates them — the power-law decays smoothly through the\n\
         boundary, while the operational-practice model steps at it. With real\n\
         data, this comparison tells you whether early replacement (step) or\n\
         intrinsic burn-in (decay) drives the improvement."
    );
}
