//! E10 — the paper's future work (§VII), as a projection: what do Delta's
//! A100 error processes imply for a Grace-Hopper-class system?
//!
//! A GH200 deployment differs in the knobs this model exposes: node width
//! (4 H100-class GPUs per node typical), fleet size, and — the big unknown —
//! how much the GSP failure mode improves with newer firmware. The
//! projection holds the measured A100 per-GPU hazards fixed, sweeps the
//! GSP-improvement factor, and reports the resulting per-node MTBE and
//! availability for a 200-node system.
//!
//! ```text
//! cargo run --release -p bench --bin h100_projection [SCALE] [SEED]
//! ```

use bench::{banner, RunOptions};
use clustersim::ClusterSpec;
use faultsim::{Campaign, FaultConfig};
use simtime::Phase;

fn main() {
    let mut options = RunOptions::from_args();
    if options.scale >= 1.0 {
        options.scale = 0.2;
    }
    banner("H100/Grace-Hopper projection (E10)", options);

    // A hypothetical 200-node, 4-way GH200 partition.
    let spec = ClusterSpec {
        four_way_nodes: 200,
        eight_way_nodes: 0,
        cpu_nodes: 0,
    };
    println!(
        "projected system: {} nodes / {} GPUs; A100-measured hazards, GSP scaled\n",
        spec.gpu_node_count(),
        spec.gpu_count()
    );
    println!(
        "{:>22} {:>10} {:>14} {:>14} {:>12}",
        "GSP improvement", "op errors", "node MTBE (h)", "downtime min/d", "avail %"
    );
    for improvement in [1.0, 2.0, 5.0, 10.0] {
        let mut config = FaultConfig::delta_scaled(options.scale);
        config.spec = spec;
        config.seed = options.seed;
        config.emit_logs = false;
        config.storm = None;
        config.rates.gsp_per_gpu_hour.0 /= improvement;
        config.rates.gsp_per_gpu_hour.1 /= improvement;
        let out = Campaign::new(config).run();
        let nodes = spec.gpu_node_count() as f64;
        let op = out.config.periods.op;
        let total = out.stats.total(Phase::Op).max(1);
        let mtbe_node = op.hours() / total as f64 * nodes;
        let mttr = out.ledger.mttr_hours().unwrap_or(0.88);
        let avail = mtbe_node / (mtbe_node + mttr);
        println!(
            "{:>21}x {:>10} {:>14.0} {:>14.1} {:>12.3}",
            improvement,
            total,
            mtbe_node,
            (1.0 - avail) * 24.0 * 60.0,
            avail * 100.0
        );
    }
    println!(
        "\nReading: fixing GSP alone saturates fast — availability crawls from\n\
         ~99.47% to ~99.55% even at 10x, because MMU and NVLink errors then\n\
         dominate the interruption budget. That sharpens the paper's closing\n\
         argument: no single-component firmware fix reaches the nines that\n\
         system-scale, week-long jobs need; the whole hardware error surface\n\
         (and recovery path) has to improve together."
    );
}
