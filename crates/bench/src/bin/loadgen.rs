//! E15 servd load generator: throughput and tail latency of the HTTP
//! query subsystem under concurrent keep-alive clients.
//!
//! One campaign is simulated, its report is frozen into the `servd`
//! columnar store, and a server is started on an ephemeral loopback
//! port. `C` client threads then each issue `R` pipelined-keep-alive
//! requests round-robining over the full endpoint surface (tables,
//! figure, filtered error queries, MTBE slices, impact, availability,
//! metadata). Every response must come back `200 OK` with a complete
//! `Content-Length`-framed body — a single error fails the run.
//!
//! ```text
//! cargo run --release -p bench --bin loadgen [--smoke] [SCALE] [SEED]
//! ```
//!
//! `--smoke` serves a reduced request count (still ≥ 1000 requests over
//! ≥ 8 connections, the CI gate) and asserts a conservative
//! machine-scaled throughput floor.

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use servd::{ServerConfig, StoreHandle, StudyStore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// The request mix: every public endpoint, weighted equally. Filter
/// queries use hosts/kinds that exist in every Delta campaign.
const ENDPOINTS: &[&str] = &[
    "/tables/1",
    "/tables/2",
    "/tables/3",
    "/fig2",
    "/errors",
    "/errors?host=gpub001",
    "/errors?xid=74",
    "/mtbe",
    "/mtbe?xid=119",
    "/jobs/impact",
    "/availability",
    "/snapshot",
    "/healthz",
];

fn main() {
    let (smoke, options) = parse_args();
    banner("servd load generator (E15)", options);

    // Build the store once from a simulated study; serving never
    // re-runs analysis, so `emit_logs` can stay off (statistics path).
    let study = run_study(options, false);
    println!(
        "store: {} coalesced errors, {} GPU jobs, {} outages",
        study.report.errors.len(),
        study.report.impact.gpu_failed_jobs(),
        study.report.availability.outage_count()
    );
    let store = Arc::new(StoreHandle::new(StudyStore::build(study.report, None)));

    let (conns, per_conn) = if smoke { (8, 160) } else { (16, 1500) };
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        // Every client pins one keep-alive connection (and its worker)
        // for the whole run, so the pool must admit the full fleet —
        // fewer workers would strand queued connections until the
        // clients time out.
        max_queue: conns + 8,
        workers: conns,
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let server = servd::start(config, Arc::clone(&store)).unwrap_or_else(|e| {
        panic!("failed to start server: {e}");
    });
    let addr = server.addr().to_string();
    println!("serving on {addr}: {conns} connections x {per_conn} requests, {workers} workers");

    let wall = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_run(&addr, c, per_conn))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut errors = 0usize;
    for handle in handles {
        let outcome = handle.join().unwrap_or_else(|_| {
            panic!("client thread panicked");
        });
        latencies_ns.extend(outcome.latencies_ns);
        errors += outcome.errors;
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    server.shutdown();

    let total = latencies_ns.len() + errors;
    latencies_ns.sort_unstable();
    let rate = latencies_ns.len() as f64 / wall_secs.max(1e-12);
    println!(
        "\n{} requests in {:.2} s over {conns} connections: {:.0} req/s, {errors} errors",
        total, wall_secs, rate
    );
    println!(
        "latency: p50 {}  p90 {}  p99 {}  max {}",
        human_ns(percentile(&latencies_ns, 50)),
        human_ns(percentile(&latencies_ns, 90)),
        human_ns(percentile(&latencies_ns, 99)),
        human_ns(latencies_ns.last().copied().unwrap_or(0)),
    );

    assert_eq!(errors, 0, "load run saw {errors} failed requests");
    assert!(
        total >= 1000 && conns >= 8,
        "gate needs >=1000 requests over >=8 connections, got {total} over {conns}"
    );
    if smoke {
        // Conservative machine-scaled floor: loopback keep-alive against
        // a warm response cache clears this by orders of magnitude.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let floor = (150 * cores.min(8)) as f64;
        assert!(
            rate >= floor,
            "smoke throughput {rate:.0} req/s below machine floor {floor:.0}"
        );
        println!("smoke floor {floor:.0} req/s on {cores} cores — ok");
    }
    println!(
        "E15 complete: {total} requests, 0 errors, {:.0} req/s, p99 {}",
        rate,
        human_ns(percentile(&latencies_ns, 99))
    );
    println!(
        "\nReading: all endpoints are pre-rendered or index-backed, so a\n\
         request is a cache probe plus one write — throughput is bounded\n\
         by loopback syscalls, not by analysis. The zero-error assert is\n\
         the point: framing, keep-alive and the connection queue hold up\n\
         under a saturating concurrent fleet."
    );
}

/// Per-client result: one latency sample per successful request.
struct ClientOutcome {
    latencies_ns: Vec<u64>,
    errors: usize,
}

/// Runs one keep-alive connection for `count` requests, rotating
/// through [`ENDPOINTS`] with a per-client phase so the instantaneous
/// mix differs across connections.
fn client_run(addr: &str, client: usize, count: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_ns: Vec::with_capacity(count),
        errors: 0,
    };
    let mut conn = match TcpStream::connect(addr) {
        Ok(conn) => conn,
        Err(_) => {
            outcome.errors = count;
            return outcome;
        }
    };
    conn.set_nodelay(true).ok();
    for i in 0..count {
        let path = ENDPOINTS[(client + i) % ENDPOINTS.len()];
        let start = Instant::now();
        match fetch(&mut conn, path) {
            Ok(200) => outcome.latencies_ns.push(start.elapsed().as_nanos() as u64),
            Ok(_) | Err(_) => outcome.errors += 1,
        }
    }
    outcome
}

/// Issues one keep-alive GET and reads the complete framed response.
/// Returns the status code; any framing violation is an error.
fn fetch(conn: &mut TcpStream, path: &str) -> std::io::Result<u16> {
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: keep-alive\r\n\r\n")
            .as_bytes(),
    )?;
    // Head: byte-at-a-time until the blank line (heads are tiny and the
    // client is not what's being measured for CPU).
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > 16 * 1024 {
            return Err(std::io::Error::other("oversized response head"));
        }
        conn.read_exact(&mut byte)?;
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| std::io::Error::other("missing content-length"))?;
    let mut body = vec![0u8; length];
    conn.read_exact(&mut body)?;
    if status == 200 && body.is_empty() {
        return Err(std::io::Error::other("empty 200 body"));
    }
    Ok(status)
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}
