//! Exposition gate for the `obs` smoke leg: validates metrics files the
//! CLI binaries wrote and asserts expected metric families are present.
//!
//! ```text
//! cargo run --release -p bench --bin obs_check -- \
//!     [--require PREFIX]... FILE...
//! ```
//!
//! Files ending in `.json` are checked as JSON documents; everything else
//! is checked as Prometheus text exposition (parse, unique series, finite
//! values, non-negative counters, monotone cumulative histogram buckets —
//! see [`obs::check`]). Each `--require PREFIX` must match at least one
//! metric name across the *union* of all files, so one invocation can
//! gate "the run covered all four layers".
//!
//! Exits non-zero with a diagnostic on the first violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut requires: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => requires.push(
                it.next()
                    .ok_or_else(|| "--require needs a value".to_owned())?
                    .clone(),
            ),
            "--help" | "-h" => {
                return Ok("usage: obs_check [--require PREFIX]... FILE...".to_owned())
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => files.push(other.to_owned()),
        }
    }
    if files.is_empty() {
        return Err("no files given (usage: obs_check [--require PREFIX]... FILE...)".to_owned());
    }

    let mut lines = Vec::new();
    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut json_bodies = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
        if file.ends_with(".json") {
            obs::check::validate_json(&text).map_err(|e| format!("{file}: {e}"))?;
            lines.push(format!("{file}: valid JSON ({} bytes)", text.len()));
            json_bodies.push(text);
        } else {
            let summary =
                obs::check::validate_prometheus(&text).map_err(|e| format!("{file}: {e}"))?;
            lines.push(format!(
                "{file}: valid Prometheus exposition ({} samples, {} metric names)",
                summary.samples,
                summary.names.len()
            ));
            names.extend(summary.names);
        }
    }

    for prefix in &requires {
        let in_prom = names.iter().any(|n| n.starts_with(prefix.as_str()));
        // The JSON document quotes metric names; a prefix is present iff
        // some quoted name starts with it.
        let needle = format!("\"name\": \"{prefix}");
        let in_json = json_bodies.iter().any(|t| t.contains(&needle));
        if !in_prom && !in_json {
            return Err(format!(
                "required metric family {prefix:?} missing from {}",
                files.join(", ")
            ));
        }
    }
    lines.push(format!(
        "{} file(s) valid, {} required famil{} present",
        files.len(),
        requires.len(),
        if requires.len() == 1 { "y" } else { "ies" }
    ));
    Ok(lines.join("\n"))
}
