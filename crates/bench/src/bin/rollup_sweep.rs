//! E18 rollup cube sweep: calendar-aware rollup construction cost and
//! query throughput as the store shard count scales.
//!
//! One campaign is simulated and frozen once; then, for each shard
//! count in {1, 2, 4, 8}, a fresh sharded store is built (including all
//! 12 pre-aggregated cube sets: 3 timezones × 4 bucket grains) and the
//! full canonical query surface — every metric × bucket × timezone —
//! is rendered through `rollup_csv`. Every rendered byte must match the
//! 1-shard baseline exactly: the k-way cube merge is byte-identical or
//! the sweep fails. A second pass measures in-process render throughput
//! per metric, and a final pass serves `/rollup` over HTTP to a
//! keep-alive fleet, which after the first round exercises the
//! snapshot-scoped response cache.
//!
//! ```text
//! cargo run --release -p bench --bin rollup_sweep [--smoke] [SCALE] [SEED]
//! ```
//!
//! Every HTTP response must be a complete `200` body — one error fails
//! the run. CI asserts the conservative machine-scaled floor (the same
//! `150 × min(cores, 8)` gate E15/E17 use) on the served pass, so the
//! sweep stays an honest regression tripwire on small containers.

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use servd::testutil::{connect, get_on};
use servd::{RollupMetric, RollupQuery, ServerConfig, StoreHandle, StudyStore};
use simtime::{Bucket, Tz};
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const METRICS: [(&str, RollupMetric); 4] = [
    ("errors", RollupMetric::Errors),
    ("mtbe", RollupMetric::Mtbe),
    ("impact", RollupMetric::Impact),
    ("availability", RollupMetric::Availability),
];

/// The served request mix: every metric at several grains and
/// timezones, plus the filtered variants (`host=`, `xid=`, `[from,to)`
/// window) that bypass or slice the pre-built cubes.
const ENDPOINTS: &[&str] = &[
    "/rollup?metric=errors",
    "/rollup?metric=errors&bucket=hour",
    "/rollup?metric=errors&bucket=week&tz=America/Chicago",
    "/rollup?metric=errors&bucket=month&tz=Europe/Berlin",
    "/rollup?metric=errors&host=gpub001",
    "/rollup?metric=errors&xid=74&bucket=week",
    "/rollup?metric=errors&bucket=day&from=1664582400&to=1672531200",
    "/rollup?metric=mtbe&bucket=month",
    "/rollup?metric=mtbe&bucket=week&tz=America/Chicago",
    "/rollup?metric=impact&bucket=week",
    "/rollup?metric=impact&bucket=month&tz=Europe/Berlin",
    "/rollup?metric=availability&bucket=week",
    "/rollup?metric=availability&bucket=month&tz=America/Chicago",
];

fn main() {
    let (smoke, options) = parse_args();
    banner("rollup cube sweep (E18)", options);

    let study = run_study(options, false);
    println!(
        "study: {} coalesced errors, {} GPU jobs, {} outages",
        study.report.errors.len(),
        study.report.impact.gpu_failed_jobs(),
        study.report.availability.outage_count()
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = (150 * cores.min(8)) as f64;
    let queries = canonical_queries();

    // -- pass 1: build cost + byte-identity across shard counts --
    println!(
        "\n-- cube build + canonical sweep ({} queries per store) --",
        queries.len()
    );
    println!("shards  build_s    cells    bytes  vs 1-shard");
    let mut baseline: Option<Vec<String>> = None;
    for shards in SHARD_COUNTS {
        let start = Instant::now();
        let store = StudyStore::build_sharded(study.report.clone(), None, shards);
        let build_s = start.elapsed().as_secs_f64();
        let rendered: Vec<String> = queries
            .iter()
            .map(|q| {
                store
                    .rollup_csv(q)
                    .unwrap_or_else(|e| panic!("shards={shards}: canonical query failed: {e}"))
            })
            .collect();
        let cells: usize = rendered
            .iter()
            .map(|csv| csv.lines().count().saturating_sub(1))
            .sum();
        let bytes: usize = rendered.iter().map(String::len).sum();
        let verdict = match &baseline {
            None => {
                baseline = Some(rendered);
                "baseline"
            }
            Some(base) => {
                assert_eq!(
                    base, &rendered,
                    "shards={shards}: rollup output diverged from the 1-shard baseline"
                );
                "identical"
            }
        };
        println!("{shards:>6}  {build_s:>7.3}  {cells:>7}  {bytes:>7}  {verdict}");
    }

    // -- pass 2: in-process render throughput (no response cache) --
    let width = cores.clamp(1, 8);
    let store = StudyStore::build_sharded(study.report.clone(), None, width);
    let rounds = if smoke { 5 } else { 50 };
    println!("\n-- in-process render throughput at {width} shards, {rounds} rounds --");
    println!("metric        queries/s     cells/s");
    for (name, metric) in METRICS {
        let subset: Vec<&RollupQuery> = queries.iter().filter(|q| q.metric == metric).collect();
        for q in &subset {
            std::hint::black_box(store.rollup_csv(q)).ok();
        }
        let mut cells = 0usize;
        let start = Instant::now();
        for _ in 0..rounds {
            for q in &subset {
                let csv = store
                    .rollup_csv(q)
                    .unwrap_or_else(|e| panic!("{name}: render failed: {e}"));
                cells += csv.lines().count().saturating_sub(1);
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-12);
        println!(
            "{name:<12}  {:>9.0}  {:>10.0}",
            (rounds * subset.len()) as f64 / secs,
            cells as f64 / secs
        );
    }

    // -- pass 3: served fleet (the cache-warm path users actually hit) --
    let (conns, per_conn) = if smoke { (40, 25) } else { (80, 200) };
    println!(
        "\n-- served /rollup fleet at {width} shards, {conns} connections x {per_conn} requests --"
    );
    println!(" req/s      p50        p90        p99        max      errors");
    let m = run_fleet(&study.report, width, conns, per_conn);
    println!(
        "{:>6.0}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}",
        m.rate,
        human_ns(m.p50),
        human_ns(m.p90),
        human_ns(m.p99),
        human_ns(m.max),
        m.errors
    );
    assert_eq!(m.errors, 0, "{} failed /rollup requests", m.errors);
    assert!(
        m.rate >= floor,
        "E18 floor violated — {:.0} req/s below machine floor {floor:.0}",
        m.rate
    );
    println!("\nfloor {floor:.0} req/s on {cores} cores — ok");
    println!(
        "\nReading: cube construction is a one-time snapshot cost (pass 1)\n\
         and must stay byte-identical however the store is sharded — the\n\
         sweep re-renders the full metric x bucket x timezone surface per\n\
         shard count and diffs it against the 1-shard baseline. Pass 2 is\n\
         the uncached render cost per metric; pass 3 is what clients see,\n\
         where the snapshot-scoped response cache collapses repeat\n\
         queries to a memcpy after the first round."
    );
}

/// Every metric × bucket × built-in timezone: the full unfiltered
/// `/rollup` surface, 48 queries.
fn canonical_queries() -> Vec<RollupQuery> {
    let mut queries = Vec::new();
    for (_, metric) in METRICS {
        for bucket in Bucket::ALL {
            for tz in Tz::BUILTIN {
                queries.push(RollupQuery {
                    bucket,
                    tz: tz.to_owned(),
                    ..RollupQuery::for_metric(metric)
                });
            }
        }
    }
    queries
}

struct FleetMetrics {
    rate: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    errors: usize,
}

/// Serves a freshly sharded store and drives `conns` keep-alive
/// clients of `per_conn` requests each; returns aggregate metrics.
fn run_fleet(
    report: &resilience::StudyReport,
    shards: usize,
    conns: usize,
    per_conn: usize,
) -> FleetMetrics {
    let store = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report.clone(),
        None,
        shards,
    )));
    let server = servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_queue: conns + 16,
            ..ServerConfig::default()
        },
        Arc::clone(&store),
    )
    .unwrap_or_else(|e| panic!("failed to start server: {e}"));
    let addr = server.addr().to_string();

    let wall = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_run(&addr, c, per_conn))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok((lat, errs)) => {
                latencies_ns.extend(lat);
                errors += errs;
            }
            Err(_) => errors += per_conn,
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    server.shutdown();

    latencies_ns.sort_unstable();
    FleetMetrics {
        rate: latencies_ns.len() as f64 / wall_secs.max(1e-12),
        p50: percentile(&latencies_ns, 50),
        p90: percentile(&latencies_ns, 90),
        p99: percentile(&latencies_ns, 99),
        max: latencies_ns.last().copied().unwrap_or(0),
        errors,
    }
}

/// One keep-alive connection issuing `count` requests, phased per
/// client so the fleet covers the endpoint mix from request one.
fn client_run(addr: &str, client: usize, count: usize) -> (Vec<u64>, usize) {
    let mut latencies = Vec::with_capacity(count);
    let mut errors = 0usize;
    let mut conn = connect(addr);
    for i in 0..count {
        let path = ENDPOINTS[(client + i) % ENDPOINTS.len()];
        let start = Instant::now();
        let resp = get_on(&mut conn, path);
        if resp.status == 200 && !resp.body.is_empty() {
            latencies.push(start.elapsed().as_nanos() as u64);
        } else {
            errors += 1;
        }
    }
    (latencies, errors)
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}
