//! Evaluates the paper's headline findings (i)-(vii) against a seeded
//! synthetic campaign (experiment E5 in DESIGN.md).
//!
//! ```text
//! cargo run --release -p bench --bin findings [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};
use resilience::findings::Findings;

fn main() {
    let options = RunOptions::from_args();
    banner("Findings (i)-(vii)", options);
    let study = run_study(options, true);
    println!("{}", Findings::evaluate(&study.report));
    std::process::exit(0);
}
