//! E8: multi-seed confidence intervals for the headline metrics.
//!
//! Single seeded runs answer "does the pipeline reproduce the paper?"; this
//! binary answers "how much of the remaining gap is sampling noise?" by
//! running N independent campaigns in parallel and reporting mean ± 95% CI
//! for every headline metric next to the paper's value.
//!
//! ```text
//! cargo run --release -p bench --bin confidence [SCALE] [SEED] [TRIALS]
//! ```

use bench::DEFAULT_SEED;
use clustersim::Cluster;
use delta_gpu_resilience::bridge;
use faultsim::{Campaign, FaultConfig};
use resilience::Pipeline;
use simtime::Phase;
use slurmsim::{Simulation, WorkloadConfig};
use xid::ErrorKind;

/// Extracts one metric from a trial.
type MetricFn = Box<dyn Fn(&Metrics) -> f64>;

/// One trial's headline metrics.
#[derive(Debug, Clone, Copy)]
struct Metrics {
    mtbe_pre: f64,
    mtbe_op: f64,
    memory_ratio: f64,
    gsp_ratio: f64,
    p_fail_mmu: f64,
    p_fail_nvlink: f64,
    availability: f64,
}

fn trial(scale: f64, seed: u64) -> Metrics {
    let mut config = FaultConfig::delta_scaled(scale);
    config.seed = seed;
    config.emit_logs = false;
    let campaign = Campaign::new(config).run();
    let cluster = Cluster::new(campaign.config.spec);
    let outcome = Simulation::new(&cluster, WorkloadConfig::delta_scaled(scale), seed)
        .run(&campaign.ground_truth, &campaign.holds);
    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let events = campaign
        .ground_truth
        .iter()
        .map(|e| {
            hpclog::XidEvent::new(
                e.time,
                e.gpu.node.hostname(),
                hpclog::PciAddr::for_gpu_index(e.gpu.index),
                e.kind.primary_code(),
                "",
            )
        })
        .collect();
    let report = pipeline.run_events(
        events,
        None,
        &bridge::jobs(&outcome.jobs),
        &[],
        &bridge::outages(campaign.ledger.outages()),
    );
    Metrics {
        mtbe_pre: report
            .stats
            .overall_mtbe_per_node(Phase::PreOp)
            .unwrap_or(f64::NAN),
        mtbe_op: report
            .stats
            .overall_mtbe_per_node(Phase::Op)
            .unwrap_or(f64::NAN),
        memory_ratio: report
            .stats
            .memory_vs_hardware_ratio(Phase::Op)
            .unwrap_or(f64::NAN),
        gsp_ratio: report.stats.gsp_degradation_ratio().unwrap_or(f64::NAN),
        p_fail_mmu: report
            .impact
            .kind(ErrorKind::MmuError)
            .failure_probability()
            .unwrap_or(f64::NAN),
        p_fail_nvlink: report
            .impact
            .kind(ErrorKind::NvlinkError)
            .failure_probability()
            .unwrap_or(f64::NAN),
        availability: report.availability_estimate().unwrap_or(f64::NAN),
    }
}

/// Mean and 95% CI half-width over finite samples.
fn ci(values: &[f64]) -> (f64, f64, usize) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = finite.len();
    if n == 0 {
        return (f64::NAN, f64::NAN, 0);
    }
    let mean = finite.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, f64::NAN, 1);
    }
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, 1.96 * (var / n as f64).sqrt(), n)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.1);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    println!("=== Confidence (E8): {trials} trials at scale {scale}, base seed {seed:#x} ===");

    // Independent trials in parallel (each is single-threaded and
    // deterministic in its own seed).
    let metrics: Vec<Metrics> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..trials)
            .map(|i| scope.spawn(move || trial(scale, seed.wrapping_add(i as u64))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial panicked"))
            .collect()
    });

    let rows: [(&str, f64, MetricFn); 7] = [
        ("per-node MTBE pre-op (h)", 199.0, Box::new(|m| m.mtbe_pre)),
        ("per-node MTBE op (h)", 154.0, Box::new(|m| m.mtbe_op)),
        ("memory/hardware ratio", 160.0, Box::new(|m| m.memory_ratio)),
        ("GSP degradation ratio", 5.6, Box::new(|m| m.gsp_ratio)),
        ("P(fail | MMU)", 0.9048, Box::new(|m| m.p_fail_mmu)),
        ("P(fail | NVLink)", 0.5375, Box::new(|m| m.p_fail_nvlink)),
        ("availability", 0.995, Box::new(|m| m.availability)),
    ];
    println!(
        "{:<26} {:>10} {:>12} {:>9} {:>3}",
        "metric", "paper", "mean", "±95% CI", "n"
    );
    for (name, paper, get) in rows {
        let values: Vec<f64> = metrics.iter().map(get).collect();
        let (mean, half, n) = ci(&values);
        println!("{name:<26} {paper:>10.3} {mean:>12.3} {half:>9.3} {n:>3}");
    }
}
