//! E16 live-ingest load generator: sustained `POST /ingest/*` throughput
//! with concurrent query load, plus the backpressure contract under
//! deliberate overload.
//!
//! One campaign is simulated and its rendered syslog is POSTed chunk by
//! chunk (with `?seq=` exactly-once bookkeeping) to a live-ingest servd
//! instance while reader threads hammer `/tables/1`. Three phases:
//!
//! 1. **Idle baseline** — read latency with no ingest running.
//! 2. **Sustained ingest** — writer feeds the whole corpus; readers run
//!    concurrently. Gates: the final surfaces are byte-identical to the
//!    batch-analysis study, and read p99 stays within 2× the idle p99
//!    (with a small absolute floor for timer noise).
//! 3. **Shed probe** — a queue of capacity 2 with no worker: every offer
//!    past the queue must come back `429` *immediately* (load shedding,
//!    not blocking) while reads keep flowing.
//!
//! ```text
//! cargo run --release -p bench --bin ingest_loadgen [--smoke] [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use delta_gpu_resilience::bridge;
use resilience::csvio;
use servd::testutil;
use servd::{IngestConfig, ServerConfig, StoreHandle, StudyStore};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let (smoke, options) = parse_args();
    banner("live ingest load generator (E16)", options);

    let study = run_study(options, true);
    let mut log = Vec::new();
    for line in study.campaign.archive.iter() {
        log.extend_from_slice(line.to_string().as_bytes());
        log.push(b'\n');
    }
    let gpu_csv = csvio::render_jobs(&bridge::jobs(&study.outcome.jobs));
    let cpu_csv = csvio::render_jobs(&bridge::jobs(&study.outcome.cpu_jobs));
    let out_csv = csvio::render_outages(&bridge::outages(study.campaign.ledger.outages()));
    println!(
        "corpus: {} log bytes, {} GPU jobs, {} outages",
        log.len(),
        study.report.impact.gpu_failed_jobs(),
        study.report.availability.outage_count()
    );

    let dir = scratch("e16");
    let mut ingest_config = IngestConfig::new(&dir);
    ingest_config.queue_capacity = 256;
    ingest_config.publish_every_events = 20_000;
    ingest_config.publish_every = Duration::from_secs(1);
    let mut pipeline = resilience::Pipeline::delta();
    pipeline.periods = study.campaign.config.periods;
    let recovered = servd::ingest::recover(ingest_config, pipeline, 2022)
        .unwrap_or_else(|e| panic!("recover failed: {e}"));
    let (report, quarantine) = recovered.engine.materialize_full();
    let store = Arc::new(StoreHandle::new(StudyStore::build(
        report,
        Some(&quarantine),
    )));
    let worker = servd::ingest::spawn_worker(
        recovered.engine,
        Arc::clone(&recovered.handle),
        Arc::clone(&store),
    );
    let server = servd::start_with_ingest(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 8,
            max_queue: 16,
            ..ServerConfig::default()
        },
        Arc::clone(&store),
        Some(Arc::clone(&recovered.handle)),
    )
    .unwrap_or_else(|e| panic!("failed to start server: {e}"));
    let addr = server.addr().to_string();

    // Phase 1 — idle read baseline.
    let idle_reads = if smoke { 400 } else { 2000 };
    let idle = read_phase(&addr, idle_reads);
    println!(
        "idle reads: {} requests, p50 {}  p99 {}",
        idle.len(),
        human_ns(percentile(&idle, 50)),
        human_ns(percentile(&idle, 99)),
    );
    let idle_p99 = percentile(&idle, 99);

    // Phase 2 — sustained ingest with concurrent readers.
    let chunk = if smoke { 16 * 1024 } else { 4 * 1024 };
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut conn = connect(&addr);
                let mut latencies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let (status, _, _) = request_on(&mut conn, "GET", "/tables/1", &[]);
                    assert_eq!(status, 200, "read failed during ingest");
                    latencies.push(started.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();

    let ingest_started = Instant::now();
    let mut writer = connect(&addr);
    let mut shed_429 = 0u64;
    let mut posted = 0u64;
    for (i, piece) in log.chunks(chunk).enumerate() {
        shed_429 += post_chunk(&mut writer, "logs", i as u64, piece);
        posted += 1;
    }
    for (stream, csv) in [
        ("jobs", &gpu_csv),
        ("cpu-jobs", &cpu_csv),
        ("outages", &out_csv),
    ] {
        for (i, piece) in csv.as_bytes().chunks(chunk).enumerate() {
            shed_429 += post_chunk(&mut writer, stream, i as u64, piece);
            posted += 1;
        }
    }
    let (status, _, flush_body) = request_on(&mut writer, "POST", "/ingest/flush", &[]);
    assert_eq!(status, 200, "flush failed: {flush_body}");
    let ingest_secs = ingest_started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let mut under_ingest: Vec<u64> = Vec::new();
    for reader in readers {
        under_ingest.extend(reader.join().unwrap_or_else(|_| {
            panic!("reader thread panicked");
        }));
    }
    under_ingest.sort_unstable();
    let ingest_p99 = percentile(&under_ingest, 99);
    let applied_chunks = recovered.handle.applied().iter().sum::<u64>();
    println!(
        "sustained ingest: {} chunks ({} bytes) in {:.2} s — {:.0} chunks/s, {:.1} MiB/s, {} shed (429)",
        posted,
        log.len() + gpu_csv.len() + cpu_csv.len() + out_csv.len(),
        ingest_secs,
        posted as f64 / ingest_secs.max(1e-12),
        (log.len() + gpu_csv.len() + cpu_csv.len() + out_csv.len()) as f64
            / 1048576.0
            / ingest_secs.max(1e-12),
        shed_429,
    );
    println!(
        "reads under ingest: {} requests, p50 {}  p99 {}  (idle p99 {})",
        under_ingest.len(),
        human_ns(percentile(&under_ingest, 50)),
        human_ns(ingest_p99),
        human_ns(idle_p99),
    );
    assert_eq!(
        applied_chunks, posted,
        "applied chunk count drifted from posted"
    );

    // Convergence gate: the live-ingested study serves the identical
    // bytes the batch analysis produced (the archive-vs-rendered-bytes
    // equality behind this is asserted by E11's cross-check).
    let mut conn = connect(&addr);
    for (path, expected) in [
        ("/tables/1", resilience::report::table1(&study.report)),
        ("/tables/2", resilience::report::table2(&study.report)),
        ("/tables/3", resilience::report::table3(&study.report)),
        ("/fig2", resilience::report::figure2(&study.report)),
    ] {
        let (status, _, body) = request_on(&mut conn, "GET", path, &[]);
        assert_eq!(status, 200, "{path}");
        assert_eq!(body, expected, "{path} diverged from the batch study");
    }
    println!("convergence: /tables/1-3 and /fig2 byte-identical to the batch study");

    // Tail-latency gate: ingest must not stall readers. The floor
    // absorbs timer noise on very fast idle baselines.
    let floor_ns = 25_000_000u64; // 25 ms
    let budget = (2 * idle_p99).max(floor_ns);
    assert!(
        ingest_p99 <= budget,
        "read p99 under ingest {} exceeds budget {} (2x idle p99 {}, floor {})",
        human_ns(ingest_p99),
        human_ns(budget),
        human_ns(idle_p99),
        human_ns(floor_ns),
    );
    println!(
        "tail gate: p99 under ingest {} <= budget {} — ok",
        human_ns(ingest_p99),
        human_ns(budget)
    );
    server.shutdown();
    worker.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3 — shed probe: a tiny queue with no worker must shed
    // instantly with 429 + Retry-After while reads keep flowing.
    let dir = scratch("e16-shed");
    let mut shed_config = IngestConfig::new(&dir);
    shed_config.queue_capacity = 2;
    let recovered = servd::ingest::recover(shed_config, resilience::Pipeline::delta(), 2022)
        .unwrap_or_else(|e| panic!("shed recover failed: {e}"));
    let (report, quarantine) = recovered.engine.materialize_full();
    let store = Arc::new(StoreHandle::new(StudyStore::build(
        report,
        Some(&quarantine),
    )));
    let server = servd::start_with_ingest(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        },
        store,
        Some(Arc::clone(&recovered.handle)),
    )
    .unwrap_or_else(|e| panic!("failed to start shed server: {e}"));
    let addr = server.addr().to_string();
    let mut writer = connect(&addr);
    let mut reader = connect(&addr);
    for seq in 0..2u64 {
        let (status, _, _) = request_on(
            &mut writer,
            "POST",
            &format!("/ingest/logs?seq={seq}"),
            b"x\n",
        );
        assert_eq!(status, 200, "within-capacity offer rejected");
    }
    let probes = if smoke { 50 } else { 200 };
    let mut worst_shed = 0u64;
    let mut worst_read = 0u64;
    for _ in 0..probes {
        let started = Instant::now();
        let (status, headers, _) = request_on(&mut writer, "POST", "/ingest/logs?seq=2", b"x\n");
        let shed_ns = started.elapsed().as_nanos() as u64;
        assert_eq!(status, 429, "over-capacity offer must shed");
        assert!(
            header(&headers, "Retry-After").is_some(),
            "429 without Retry-After"
        );
        worst_shed = worst_shed.max(shed_ns);

        let started = Instant::now();
        let (status, _, _) = request_on(&mut reader, "GET", "/tables/1", &[]);
        assert_eq!(status, 200, "read failed during shedding");
        worst_read = worst_read.max(started.elapsed().as_nanos() as u64);
    }
    assert!(
        worst_shed < 1_000_000_000,
        "shedding blocked for {} — not load shedding",
        human_ns(worst_shed)
    );
    println!(
        "shed probe: {probes} over-capacity offers all 429 (worst {}), reads alive (worst {})",
        human_ns(worst_shed),
        human_ns(worst_read)
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\nE16 complete: {posted} chunks ingested, {shed_429} shed during sustain, read p99 {} (idle {})",
        human_ns(ingest_p99),
        human_ns(idle_p99)
    );
    println!(
        "\nReading: admission is a queue push behind a WAL append, so the\n\
         write path costs the server a memcpy and a buffered write per\n\
         chunk; materialization happens on the worker's cadence, off the\n\
         request path. That is why reader tail latency holds within its\n\
         budget while the full corpus streams in, and why overload turns\n\
         into immediate 429s instead of queueing delay."
    );
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ingest-loadgen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("scratch dir: {e}"));
    dir
}

fn connect(addr: &str) -> TcpStream {
    testutil::connect(addr)
}

/// Measures `count` sequential idle GETs of `/tables/1`; returns sorted
/// per-request latencies in nanoseconds.
fn read_phase(addr: &str, count: usize) -> Vec<u64> {
    let mut conn = connect(addr);
    let mut latencies = Vec::with_capacity(count);
    for _ in 0..count {
        let started = Instant::now();
        let (status, _, _) = request_on(&mut conn, "GET", "/tables/1", &[]);
        assert_eq!(status, 200, "idle read failed");
        latencies.push(started.elapsed().as_nanos() as u64);
    }
    latencies.sort_unstable();
    latencies
}

/// POSTs one chunk with retry-through-429; returns how many 429s were
/// absorbed along the way.
fn post_chunk(conn: &mut TcpStream, stream: &str, seq: u64, payload: &[u8]) -> u64 {
    let mut shed = 0u64;
    loop {
        let (status, _, body) = request_on(
            conn,
            "POST",
            &format!("/ingest/{stream}?seq={seq}"),
            payload,
        );
        match status {
            200 => return shed,
            429 => {
                shed += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            other => panic!("POST /ingest/{stream}?seq={seq} -> {other}: {body}"),
        }
        if shed > 100_000 {
            panic!("chunk {stream}/{seq} never accepted");
        }
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// One keep-alive request with a framed response (status, headers,
/// body) — the shared `servd::testutil` one-write client, reshaped to
/// the tuple the call sites below destructure.
fn request_on(
    conn: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let resp = testutil::request_on(conn, method, path, body);
    let text = resp.text();
    (resp.status, resp.headers, text)
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}
