//! E9 data ablation: how the coalescing window Δt shapes Table I, and how
//! the attribution window shapes Table II.
//!
//! The paper's §III-B motivates coalescing but leaves Δt implicit; this
//! sweep makes the sensitivity explicit. Too small a Δt double-counts
//! duplicate lines; too large a Δt swallows genuinely distinct errors
//! (flapping-episode cycles, the storm). The attribution window trades
//! missed attributions against false ones the same way.
//!
//! ```text
//! cargo run --release -p bench --bin window_sweep [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};
use resilience::coalesce::coalesce;
use resilience::impact::JobImpact;
use simtime::{Duration, Phase};
use xid::ErrorKind;

fn main() {
    let mut options = RunOptions::from_args();
    if options.scale >= 1.0 {
        options.scale = 0.1;
    }
    banner("Window sweep (E9)", options);
    let study = run_study(options, true);

    // Re-extract once; re-coalesce per window.
    let mut extractor = hpclog::extract::XidExtractor::studied_only(2022);
    let events: Vec<_> = study
        .campaign
        .archive
        .iter()
        .filter_map(|l| extractor.extract(l))
        .collect();

    println!(
        "\ncoalescing window sweep (raw XID lines: {}):",
        events.len()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "Δt (s)", "errors", "GSP", "MMU", "storm-GPU"
    );
    for secs in [0u64, 1, 5, 20, 60, 300, 1800] {
        let merged = coalesce(events.clone(), Duration::from_secs(secs));
        let count = |kind: ErrorKind| merged.iter().filter(|e| e.kind == kind).count();
        let storm_gpu = merged
            .iter()
            .filter(|e| e.kind == ErrorKind::UncontainedMemoryError && e.host == "gpub038")
            .count();
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            secs,
            merged.len(),
            count(ErrorKind::GspError),
            count(ErrorKind::MmuError),
            storm_gpu
        );
    }

    // Attribution window sweep over the fixed Δt=20 s error set.
    let errors = coalesce(events, Duration::from_secs(20));
    let op_errors: Vec<_> = errors
        .iter()
        .filter(|e| study.report.config.periods.period_of(e.time) == Some(Phase::Op))
        .cloned()
        .collect();
    let jobs = delta_gpu_resilience::bridge::jobs(&study.outcome.jobs);
    println!(
        "\nattribution window sweep (op-period errors: {}):",
        op_errors.len()
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "window (s)", "GPU-failed", "P(fail|MMU)%", "P(fail|GSP)%"
    );
    for secs in [1u64, 5, 20, 60, 300, 3600] {
        let impact = JobImpact::compute(&jobs, &op_errors, Duration::from_secs(secs));
        let p = |kind: ErrorKind| {
            impact
                .kind(kind)
                .failure_probability()
                .map_or("-".to_owned(), |p| format!("{:.2}", p * 100.0))
        };
        println!(
            "{:>10} {:>12} {:>14} {:>12}",
            secs,
            impact.gpu_failed_jobs(),
            p(ErrorKind::MmuError),
            p(ErrorKind::GspError)
        );
    }
    println!(
        "\nReading: error counts are stable for Δt between the duplicate window\n\
         (~10 s) and the episode cycle spacing (~30 min) — the paper's counts\n\
         are well-defined in that plateau. Attribution saturates by ~20 s,\n\
         supporting the paper's choice; very wide windows only add chance\n\
         co-occurrences."
    );
}
