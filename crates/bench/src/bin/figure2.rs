//! Regenerates Figure 2: the unavailability-time distribution, plus the
//! §V-C headline numbers (MTTR, node-hours lost, availability).
//!
//! ```text
//! cargo run --release -p bench --bin figure2 [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    banner("Figure 2 — unavailability time distribution", options);
    let study = run_study(options, false);
    println!("{}", resilience::report::figure2(&study.report));
    println!(
        "--- CSV ---\n{}",
        resilience::report::figure2_csv(&study.report)
    );
}
