//! E11 chaos sweep: how much log corruption the lenient ingestion path
//! tolerates before the paper's headline results move.
//!
//! One campaign is rendered once; its byte stream is then corrupted at
//! increasing per-line rates (0 → 10%) with [`hpclog::chaos`] and re-analysed
//! through [`Pipeline::run_lenient`]. At every rate the quarantine ledger
//! must account for exactly the injected corruption (nothing lost silently);
//! at operationally plausible rates (≤ 2%) the Table I error-kind ordering,
//! the availability headline and the Table II ordering must survive.
//!
//! ```text
//! cargo run --release -p bench --bin chaos_sweep [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};
use delta_gpu_resilience::bridge;
use hpclog::chaos::{ChaosConfig, ChaosInjector};
use resilience::pipeline::QuarantineReport;
use resilience::{csvio, Pipeline, StudyReport};
use simtime::Phase;
use xid::ErrorKind;

/// Per-line corruption rates swept, low to high.
const RATES: [f64; 6] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.10];

/// Rates at or below this are "operationally plausible" and must leave the
/// headline results intact.
const PLAUSIBLE_RATE: f64 = 0.02;

/// Availability may move by at most this many percentage points at
/// plausible rates.
const AVAILABILITY_TOLERANCE_PP: f64 = 0.2;

/// Coalesced error counts may move by at most this relative fraction at
/// plausible rates (coalescing means an error survives unless *every* line
/// of its episode is corrupted, so losses run well below the line rate).
const ERROR_COUNT_TOLERANCE: f64 = 0.05;

/// Table II failure-probability gaps narrower than this are treated as
/// ties when checking that the ordering survives.
const TABLE2_GAP: f64 = 0.05;

/// The scaled calendar starts Jan 1 2022; at scale ≤ 0.25 it ends before
/// New Year, so one fixed year resolves every year-less syslog stamp.
const LOG_YEAR: i32 = 2022;

/// The error kinds Table I tabulates.
const KINDS: [ErrorKind; 10] = [
    ErrorKind::MmuError,
    ErrorKind::DoubleBitError,
    ErrorKind::RowRemapEvent,
    ErrorKind::RowRemapFailure,
    ErrorKind::NvlinkError,
    ErrorKind::FallenOffBus,
    ErrorKind::ContainedMemoryError,
    ErrorKind::UncontainedMemoryError,
    ErrorKind::GspError,
    ErrorKind::PmuSpiError,
];

fn main() {
    let mut options = RunOptions::from_args();
    if options.scale > 0.25 {
        options.scale = 0.05;
    }
    banner("Chaos sweep (E11)", options);
    let study = run_study(options, true);

    let gpu_csv = csvio::render_jobs(&bridge::jobs(&study.outcome.jobs));
    let cpu_csv = csvio::render_jobs(&bridge::jobs(&study.outcome.cpu_jobs));
    let outages_csv = csvio::render_outages(&bridge::outages(study.campaign.ledger.outages()));

    let mut pipeline = Pipeline::delta();
    pipeline.periods = study.campaign.config.periods;

    println!(
        "\narchive: {} lines; corrupting at rates {:?}",
        study.campaign.archive.line_count(),
        RATES
    );
    println!(
        "{:>7} {:>9} {:>9} {:>8} {:>6} {:>6} {:>9} {:>8}  caveats",
        "rate %", "lines", "quarant.", "errors", "GSP", "MMU", "avail %", "GPUfail"
    );

    let mut baseline: Option<StudyReport> = None;
    for rate in RATES {
        let mut chaos = ChaosInjector::new(ChaosConfig::uniform(rate, options.seed ^ 0xE11));
        let bytes = chaos.corrupt_archive(&study.campaign.archive);
        let stats = chaos.stats();
        let (report, quarantine) =
            pipeline.run_lenient(bytes.as_slice(), LOG_YEAR, &gpu_csv, &cpu_csv, &outages_csv);

        // The accounting identity: every injected defect is in the ledger.
        assert_eq!(
            quarantine.ledger.total(),
            stats.quarantinable(),
            "rate {rate}: ledger does not account for the injected corruption\n\
             ledger: {:?}\nchaos:  {stats:?}",
            quarantine.ledger.counts()
        );

        print_row(rate, stats.lines_out, &report, &quarantine);

        match &baseline {
            None => {
                assert!(quarantine.is_clean(), "clean input raised caveats");
                baseline = Some(report);
            }
            Some(base) if rate <= PLAUSIBLE_RATE => check_tolerances(rate, base, &report),
            Some(_) => {}
        }
    }

    let base = baseline.expect("RATES starts at 0.0");
    println!(
        "\narchive-path cross-check: {} errors direct vs {} via rendered bytes",
        study.report.coalesce_summary.errors, base.coalesce_summary.errors
    );
    println!(
        "Reading: at ≤{:.0}% corruption the Table I kind ordering, the\n\
         availability headline and the Table II ordering all survive (asserted\n\
         above); the quarantine ledger accounts for every injected defect at\n\
         every rate. Heavier corruption degrades counts but never panics.",
        PLAUSIBLE_RATE * 100.0
    );
}

fn print_row(rate: f64, lines: u64, report: &StudyReport, quarantine: &QuarantineReport) {
    let caveats: Vec<String> = quarantine.caveats.iter().map(|c| c.to_string()).collect();
    println!(
        "{:>7.2} {:>9} {:>9} {:>8} {:>6} {:>6} {:>9.3} {:>8}  {}",
        rate * 100.0,
        lines,
        quarantine.ledger.total(),
        report.coalesce_summary.errors,
        report.stats.count(ErrorKind::GspError, Phase::Op),
        report.stats.count(ErrorKind::MmuError, Phase::Op),
        report.availability.availability_empirical() * 100.0,
        report.impact.gpu_failed_jobs(),
        if caveats.is_empty() {
            "-".to_owned()
        } else {
            caveats.join("; ")
        },
    );
}

/// Asserts that a corrupted run at a plausible rate preserves the headline
/// structure of the clean baseline.
fn check_tolerances(rate: f64, base: &StudyReport, got: &StudyReport) {
    // Table I: the relative ordering of op-phase error counts survives.
    // Pairwise with ties allowed: where the baseline separates two kinds,
    // the corrupted run must not invert them.
    for a in KINDS {
        for b in KINDS {
            let (base_a, base_b) = (
                base.stats.count(a, Phase::Op),
                base.stats.count(b, Phase::Op),
            );
            if base_a > base_b {
                let (got_a, got_b) = (got.stats.count(a, Phase::Op), got.stats.count(b, Phase::Op));
                assert!(
                    got_a >= got_b,
                    "rate {rate}: Table I ordering inverted: {a:?} ({base_a}->{got_a}) \
                     vs {b:?} ({base_b}->{got_b})"
                );
            }
        }
    }

    // Coalesced error volume stays within tolerance of the baseline.
    let (base_n, got_n) = (
        base.coalesce_summary.errors as f64,
        got.coalesce_summary.errors as f64,
    );
    assert!(
        (got_n - base_n).abs() <= base_n * ERROR_COUNT_TOLERANCE,
        "rate {rate}: error count moved {base_n} -> {got_n} \
         (tolerance {ERROR_COUNT_TOLERANCE})"
    );

    // Availability: outage records are a separate input, so the headline
    // must not move beyond rounding.
    let drift = (got.availability.availability_empirical()
        - base.availability.availability_empirical())
    .abs()
        * 100.0;
    assert!(
        drift <= AVAILABILITY_TOLERANCE_PP,
        "rate {rate}: availability drifted {drift:.3} pp"
    );

    // Table II: where the baseline separates two kinds' conditional failure
    // probabilities by a clear gap, the corrupted run keeps them ordered.
    for a in KINDS {
        for b in KINDS {
            let (Some(pa), Some(pb)) = (
                base.impact.kind(a).failure_probability(),
                base.impact.kind(b).failure_probability(),
            ) else {
                continue;
            };
            if pa > pb + TABLE2_GAP {
                let (Some(ga), Some(gb)) = (
                    got.impact.kind(a).failure_probability(),
                    got.impact.kind(b).failure_probability(),
                ) else {
                    continue;
                };
                assert!(
                    ga >= gb,
                    "rate {rate}: Table II ordering inverted: {a:?} ({pa:.3}->{ga:.3}) \
                     vs {b:?} ({pb:.3}->{gb:.3})"
                );
            }
        }
    }
}
