//! Regenerates Table II: job failure probability per GPU error kind.
//!
//! ```text
//! cargo run --release -p bench --bin table2 [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    banner("Table II — GPU-error impact on jobs", options);
    let study = run_study(options, false);
    println!("{}", resilience::report::table2(&study.report));
    println!(
        "--- CSV ---\n{}",
        resilience::report::table2_csv(&study.report)
    );
}
