//! E6 ablation: does the utilization hypothesis explain the MTBE
//! degradation? Sweeps counterfactual operational utilization levels,
//! scaling the utilization-sensitive error rates (GSP/PMU/MMU) by the
//! power law inferred from the paper's own numbers, and reports the
//! resulting overall per-node MTBE.
//!
//! ```text
//! cargo run --release -p bench --bin utilization [SCALE] [SEED]
//! ```

use bench::{banner, RunOptions};
use faultsim::utilization::{scale_sensitive_rates, sensitivity_from_rates, UtilizationProfile};
use faultsim::{Campaign, FaultConfig, Phase};
use xid::ErrorKind;

fn main() {
    let mut options = RunOptions::from_args();
    if options.scale >= 1.0 {
        // The ablation repeats the campaign 6x; default to a fifth scale.
        options.scale = 0.2;
    }
    banner("Utilization ablation (E6)", options);

    let profile = UtilizationProfile::delta();
    // Invert the paper's GSP numbers for the sensitivity exponent.
    let sensitivity = sensitivity_from_rates(3_347.0 / 590.0, profile.op_over_pre());
    println!(
        "inferred sensitivity: rate ∝ utilization^{sensitivity:.2} (from the paper's GSP MTBE jump)\n"
    );

    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>14}",
        "utilization", "GSP op", "PMU op", "MMU op", "per-node MTBE"
    );
    for u in [0.35, 0.45, 0.55, 0.65, 0.75, 0.85] {
        let mut config = FaultConfig::delta_scaled(options.scale);
        config.seed = options.seed;
        config.emit_logs = false;
        config.storm = None; // isolate the utilization effect
        scale_sensitive_rates(&mut config.rates, &profile, u, sensitivity);
        let out = Campaign::new(config).run();
        let hours = out.config.periods.op.hours();
        let total = out.stats.total(Phase::Op);
        let mtbe = if total == 0 {
            f64::NAN
        } else {
            hours / total as f64 * 106.0
        };
        println!(
            "{:>12.2} {:>10} {:>10} {:>10} {:>14.0}",
            u,
            out.stats.count(ErrorKind::GspError, Phase::Op),
            out.stats.count(ErrorKind::PmuSpiError, Phase::Op),
            out.stats.count(ErrorKind::MmuError, Phase::Op),
            mtbe
        );
    }
    println!(
        "\nReading: holding everything else fixed, raising utilization from the\n\
         bring-up level (0.35) to the production level (0.75) costs ~3.5x in\n\
         overall per-node MTBE through the GSP/PMU/MMU channel alone. The\n\
         paper's modest *net* degradation (199 h -> 154 h) is this load effect\n\
         partially offset by the operational-period improvements in NVLink and\n\
         memory error rates (early GPU replacement, health checks) — exactly\n\
         the decomposition its findings (i)-(iv) describe."
    );
}
