//! E20 what-if scenario service sweep: campaign throughput as the
//! worker pool and per-request rep counts scale, cache-hit vs cold
//! compute latency, and the overload contract under a saturated
//! campaign queue.
//!
//! Three phases against live servd instances (the counterfactual
//! service is snapshot-independent, so the store can stay tiny):
//!
//! 1. **Cold vs cached** — one spec computed cold, then hammered as a
//!    cache hit: the hit must skip simulation entirely, so its latency
//!    sits orders of magnitude under the cold compute.
//! 2. **Throughput sweep** — distinct specs (seed-varied) across
//!    worker pools {1, 2, 4} × reps {1, 4}: arm-reps per second as the
//!    pool widens, all through the `202` + poll surface.
//! 3. **Shed probe** — a one-worker, capacity-2 queue pinned down by
//!    long campaigns: further distinct specs must come back `429` with
//!    `Retry-After` immediately, identical pending specs must *join*
//!    (202, no new slot), and concurrent read p99 must hold within a
//!    machine-scaled budget of the unloaded baseline.
//!
//! ```text
//! cargo run --release -p bench --bin whatif_sweep [--smoke]
//! ```

use servd::testutil::{self, TestResponse};
use servd::{ServerConfig, StoreHandle, StudyStore, WhatifConfig};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    println!(
        "what-if scenario service sweep (E20){}",
        if smoke { " [smoke]" } else { "" }
    );

    cold_vs_cached(smoke);
    throughput_sweep(smoke);
    shed_probe(smoke);

    println!(
        "\nReading: a cache hit is a map lookup on the canonical spec\n\
         key, so hot counterfactuals answer at read-endpoint speed while\n\
         cold ones pay the full paired campaign. Throughput scales with\n\
         the worker pool until campaigns outnumber cores; past the queue\n\
         the service sheds instantly instead of building a backlog, and\n\
         the read path stays flat because campaigns run on their own\n\
         pool, never on the event loops."
    );
}

fn empty_store() -> Arc<StoreHandle> {
    let report = resilience::Pipeline::delta().run_events(Vec::new(), None, &[], &[], &[]);
    Arc::new(StoreHandle::new(StudyStore::build(report, None)))
}

fn serve(whatif: WhatifConfig) -> servd::RunningServer {
    servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            whatif,
            ..ServerConfig::default()
        },
        empty_store(),
    )
    .unwrap_or_else(|e| panic!("failed to start server: {e}"))
}

// ------------------------------------------------- phase 1: cold vs hit

fn cold_vs_cached(smoke: bool) {
    let server = serve(WhatifConfig {
        workers: 2,
        ..WhatifConfig::default()
    });
    let addr = server.addr().to_string();
    let mut conn = connect(&addr);
    let path = "/whatif?seed=100&reps=2&mttr_scale=0.5";

    let started = Instant::now();
    let cold = testutil::request_on(&mut conn, "GET", path, b"");
    let cold_ns = started.elapsed().as_nanos() as u64;
    expect(&cold, 200, path);
    assert_eq!(cold.header("X-Cache"), Some("miss"), "first compute");

    let hits = if smoke { 200 } else { 2000 };
    let mut latencies = Vec::with_capacity(hits);
    for _ in 0..hits {
        let started = Instant::now();
        let hit = testutil::request_on(&mut conn, "GET", path, b"");
        latencies.push(started.elapsed().as_nanos() as u64);
        expect(&hit, 200, path);
        assert_eq!(hit.header("X-Cache"), Some("hit"), "cached recompute");
        assert_eq!(hit.body, cold.body, "cache served different bytes");
    }
    latencies.sort_unstable();
    let hit_p99 = percentile(&latencies, 99);
    println!(
        "\ncold vs cached ({path}):\n  cold compute {}   cache hit p50 {}  p99 {}  ({hits} hits, byte-identical)",
        human_ns(cold_ns),
        human_ns(percentile(&latencies, 50)),
        human_ns(hit_p99),
    );
    assert!(
        hit_p99 * 10 < cold_ns,
        "cache hit p99 {} is not well under the cold compute {}",
        human_ns(hit_p99),
        human_ns(cold_ns)
    );
    server.shutdown();
}

// ------------------------------------------- phase 2: throughput sweep

fn throughput_sweep(smoke: bool) {
    println!("\ncampaign throughput (distinct specs via 202 + poll):");
    println!("  workers  reps  campaigns  arm-reps  wall      arm-reps/s");
    let campaigns = if smoke { 4 } else { 8 };
    let mut seed = 9000u64;
    for workers in [1usize, 2, 4] {
        for reps in [1u32, 4] {
            let server = serve(WhatifConfig {
                workers,
                queue_capacity: campaigns + 1,
                ..WhatifConfig::default()
            });
            let addr = server.addr().to_string();
            // Distinct seeds force distinct cache keys: every request
            // is a real campaign. reps over the sync threshold would
            // serialize the submitting connections, so submit through
            // the async surface regardless of rep count by spreading
            // submissions across connections first, then polling.
            let started = Instant::now();
            let polls: Vec<String> = (0..campaigns)
                .map(|_| {
                    seed += 1;
                    format!("/whatif?seed={seed}&reps={reps}&xid_rate=79:2")
                })
                .collect();
            let bodies: Vec<TestResponse> = std::thread::scope(|scope| {
                let handles: Vec<_> = polls
                    .iter()
                    .map(|path| {
                        let addr = addr.clone();
                        scope.spawn(move || testutil::whatif_to_completion(&*addr, path, 3000))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| panic!("submitter panicked")))
                    .collect()
            });
            let wall = started.elapsed().as_secs_f64();
            for (resp, path) in bodies.iter().zip(&polls) {
                expect(resp, 200, path);
            }
            // Each campaign runs `reps` paired arm-reps (baseline +
            // scenario share the fork, counted as 2 arms).
            let arm_reps = campaigns as u32 * reps * 2;
            println!(
                "  {workers:>7}  {reps:>4}  {campaigns:>9}  {arm_reps:>8}  {wall:>7.2}s  {:>10.1}",
                f64::from(arm_reps) / wall.max(1e-12),
            );
            server.shutdown();
        }
    }
}

// ------------------------------------------------- phase 3: shed probe

fn shed_probe(smoke: bool) {
    // One worker, a two-slot queue: long campaigns pin the worker so
    // the queue stays full for the probe window.
    let server = serve(WhatifConfig {
        workers: 1,
        queue_capacity: 2,
        ..WhatifConfig::default()
    });
    let addr = server.addr().to_string();

    // Idle read baseline before any campaign runs.
    let idle_reads = if smoke { 300 } else { 1500 };
    let idle = read_phase(&addr, idle_reads);
    let idle_p99 = percentile(&idle, 99);
    println!(
        "\nshed probe: idle reads p50 {}  p99 {}",
        human_ns(percentile(&idle, 50)),
        human_ns(idle_p99)
    );

    // Fill the worker + queue with long-running distinct campaigns.
    let mut filler = connect(&addr);
    let reps = if smoke { 6 } else { 16 };
    let mut pending = Vec::new();
    for seed in 7000..7003u64 {
        let path = format!("/whatif?seed={seed}&reps={reps}");
        let resp = testutil::request_on(&mut filler, "GET", &path, b"");
        expect(&resp, 202, &path);
        pending.push(path);
    }

    // Concurrent reads while the probe hammers the full queue.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut conn = connect(&addr);
            let mut latencies = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                let resp = testutil::request_on(&mut conn, "GET", "/tables/1", b"");
                assert_eq!(resp.status, 200, "read failed during shedding");
                latencies.push(started.elapsed().as_nanos() as u64);
            }
            latencies
        })
    };

    let probes = if smoke { 50 } else { 200 };
    let mut shed = 0u64;
    let mut joined = 0u64;
    let mut worst_shed = 0u64;
    let mut probe_seed = 8000u64;
    for i in 0..probes {
        // A *distinct* spec needs a queue slot: with the queue full it
        // must shed immediately.
        probe_seed += 1;
        let path = format!("/whatif?seed={probe_seed}&reps={reps}");
        let started = Instant::now();
        let resp = testutil::request_on(&mut filler, "GET", &path, b"");
        let shed_ns = started.elapsed().as_nanos() as u64;
        if resp.status == 429 {
            shed += 1;
            worst_shed = worst_shed.max(shed_ns);
            assert!(
                resp.header("Retry-After").is_some(),
                "429 without Retry-After"
            );
        } else {
            // The worker drained a slot between probes; that request
            // legitimately queued. Tolerated, but must be a 202.
            expect(&resp, 202, &path);
            pending.push(path);
        }
        // An *identical* pending spec joins the in-flight job without
        // consuming a slot — never a 429.
        if i % 10 == 0 {
            if let Some(path) = pending.last() {
                let resp = testutil::request_on(&mut filler, "GET", path, b"");
                expect(&resp, 202, path);
                joined += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let mut under_load = reader
        .join()
        .unwrap_or_else(|_| panic!("reader thread panicked"));
    under_load.sort_unstable();
    let load_p99 = percentile(&under_load, 99);
    assert!(shed > 0, "queue never saturated: no 429 observed");
    assert!(
        worst_shed < 1_000_000_000,
        "shedding blocked for {} — not load shedding",
        human_ns(worst_shed)
    );
    println!(
        "  {probes} distinct probes against a full queue: {shed} shed (429, worst {}), {joined} identical joins (202)",
        human_ns(worst_shed)
    );
    println!(
        "  reads under shed load: {} requests, p50 {}  p99 {}  (idle p99 {})",
        under_load.len(),
        human_ns(percentile(&under_load, 50)),
        human_ns(load_p99),
        human_ns(idle_p99)
    );

    // Machine-scaled tail gate, same shape as E16: campaigns and
    // shedding must not stall the read path. The absolute floor
    // absorbs timer noise on very fast idle baselines.
    let floor_ns = 25_000_000u64; // 25 ms
    let budget = (2 * idle_p99).max(floor_ns);
    assert!(
        load_p99 <= budget,
        "read p99 under shed load {} exceeds budget {} (2x idle p99 {}, floor {})",
        human_ns(load_p99),
        human_ns(budget),
        human_ns(idle_p99),
        human_ns(floor_ns)
    );
    println!(
        "  tail gate: p99 under load {} <= budget {} — ok",
        human_ns(load_p99),
        human_ns(budget)
    );
    server.shutdown();
}

// --------------------------------------------------------------- helpers

fn connect(addr: &str) -> TcpStream {
    testutil::connect(addr)
}

fn expect(resp: &TestResponse, status: u16, context: &str) {
    assert_eq!(
        resp.status,
        status,
        "{context}: expected {status}, got {} ({})",
        resp.status,
        resp.text()
    );
}

/// Measures `count` sequential idle GETs of `/tables/1`; returns sorted
/// per-request latencies in nanoseconds.
fn read_phase(addr: &str, count: usize) -> Vec<u64> {
    let mut conn = connect(addr);
    let mut latencies = Vec::with_capacity(count);
    for _ in 0..count {
        let started = Instant::now();
        let resp = testutil::request_on(&mut conn, "GET", "/tables/1", b"");
        assert_eq!(resp.status, 200, "idle read failed");
        latencies.push(started.elapsed().as_nanos() as u64);
    }
    latencies.sort_unstable();
    latencies
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}
