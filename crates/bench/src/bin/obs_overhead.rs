//! E14 observability overhead: the cost of running the study with the
//! `obs` registry and tracer enabled, against the uninstrumented run.
//!
//! One campaign is rendered to log bytes + CSV exports once. The batch
//! lenient pipeline and the streaming pipeline each run with `obs`
//! disabled (the default — one relaxed atomic load per would-be record)
//! and enabled (full counter/histogram/span recording), median of N.
//! Before timing, both configurations are run to completion and their
//! rendered surfaces compared byte-for-byte: instrumentation that changed
//! a single output byte would fail here before any number is printed.
//!
//! ```text
//! cargo run --release -p bench --bin obs_overhead [-- --smoke] [SCALE] [SEED]
//! ```
//!
//! `--smoke` runs a reduced iteration count and **asserts** the enabled /
//! disabled ratio stays under the CI budget (1.10× — generous against
//! timer noise on shared runners; the recorded full-run numbers in
//! `results/obs_overhead.txt` are the honest figure and sit well under
//! the paper-repro target of 1.03×).

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use delta_gpu_resilience::bridge;
use hpclog::archive::Archive;
use resilience::incremental::StreamingPipeline;
use resilience::{report, Pipeline};
use std::time::Instant;

/// See E12: the scaled calendar stays inside one year at scale ≤ 0.25.
const LOG_YEAR: i32 = 2022;
/// The CI gate on enabled/disabled wall-time ratio in `--smoke` mode.
const SMOKE_BUDGET: f64 = 1.10;
/// Streaming feed granularity (the E13 default cell).
const CHUNK: usize = 1 << 20;

fn main() {
    let (smoke, options) = parse_args();
    banner("Observability overhead (E14)", options);
    let study = run_study(options, true);
    let archive = &study.campaign.archive;
    let log = render_log(archive);
    let gpu_csv = resilience::csvio::render_jobs(&bridge::jobs(&study.outcome.jobs));
    let cpu_csv = resilience::csvio::render_jobs(&bridge::jobs(&study.outcome.cpu_jobs));
    let out_csv =
        resilience::csvio::render_outages(&bridge::outages(study.campaign.ledger.outages()));
    let mut pipeline = Pipeline::delta();
    pipeline.periods = study.campaign.config.periods;
    let lines = archive.line_count() as u64;
    println!(
        "workload: {} lines, {:.1} MiB of log",
        lines,
        log.len() as f64 / (1024.0 * 1024.0)
    );

    // Perturbation gate first: enabled and disabled runs must render the
    // same bytes, batch and streaming.
    obs::set_enabled(false);
    let (plain, _) = batch(&pipeline, &log, &gpu_csv, &cpu_csv, &out_csv);
    let plain_render = render_all(&plain);
    obs::set_enabled(true);
    let (instr, _) = batch(&pipeline, &log, &gpu_csv, &cpu_csv, &out_csv);
    assert_eq!(
        render_all(&instr),
        plain_render,
        "instrumentation perturbed the batch report"
    );
    let (instr_s, _) = stream(&pipeline, &log, &gpu_csv, &cpu_csv, &out_csv).finalize();
    assert_eq!(
        render_all(&instr_s),
        plain_render,
        "instrumentation perturbed the streaming report"
    );
    obs::set_enabled(false);
    println!("perturbation gate: instrumented output byte-identical (batch + streaming)");

    let iters = if smoke { 7 } else { 11 };
    println!(
        "\nmedian of {iters} interleaved iters:\n{:>10} {:>14} {:>14} {:>8}",
        "leg", "disabled ms", "enabled ms", "ratio"
    );
    let mut worst: f64 = 0.0;
    for (leg, f) in legs(&pipeline, &log, &gpu_csv, &cpu_csv, &out_csv) {
        let (off, on) = paired_medians(iters, &f);
        let ratio = on / off.max(1e-12);
        worst = worst.max(ratio);
        println!(
            "{leg:>10} {:>14.2} {:>14.2} {:>7.3}x",
            off * 1e3,
            on * 1e3,
            ratio
        );
    }

    let snapshot = obs::global().registry().snapshot();
    println!(
        "\nregistry after the sweep: {} series; span ring capacity {}, dropped {}",
        snapshot.len(),
        obs::global().tracer().capacity(),
        obs::global().tracer().dropped()
    );
    println!("worst leg ratio: {worst:.3}x");
    if smoke {
        assert!(
            worst <= SMOKE_BUDGET,
            "obs overhead {worst:.3}x exceeds the {SMOKE_BUDGET}x smoke budget"
        );
        println!("smoke gate passed ({worst:.3}x <= {SMOKE_BUDGET}x)");
    }
}

type Leg<'a> = (&'static str, Box<dyn Fn() + 'a>);

/// The timed workloads. Each closure runs a full analysis pass; whether
/// it records anything is decided by the global `obs` switch at call
/// time, so the same closure serves both sides of the comparison.
fn legs<'a>(
    pipeline: &'a Pipeline,
    log: &'a [u8],
    gpu_csv: &'a str,
    cpu_csv: &'a str,
    out_csv: &'a str,
) -> Vec<Leg<'a>> {
    vec![
        (
            "batch",
            Box::new(move || {
                std::hint::black_box(batch(pipeline, log, gpu_csv, cpu_csv, out_csv));
            }),
        ),
        (
            "streaming",
            Box::new(move || {
                std::hint::black_box(stream(pipeline, log, gpu_csv, cpu_csv, out_csv));
            }),
        ),
    ]
}

fn batch(
    pipeline: &Pipeline,
    log: &[u8],
    gpu_csv: &str,
    cpu_csv: &str,
    out_csv: &str,
) -> (resilience::StudyReport, resilience::QuarantineReport) {
    pipeline.run_lenient(log, LOG_YEAR, gpu_csv, cpu_csv, out_csv)
}

fn stream(
    pipeline: &Pipeline,
    log: &[u8],
    gpu_csv: &str,
    cpu_csv: &str,
    out_csv: &str,
) -> StreamingPipeline {
    let mut engine = StreamingPipeline::new(*pipeline, LOG_YEAR);
    for piece in log.chunks(CHUNK.min(log.len().max(1))) {
        engine.push_log(piece);
    }
    engine.finish_log();
    engine.push_gpu_jobs_csv(gpu_csv);
    engine.push_cpu_jobs_csv(cpu_csv);
    engine.push_outages_csv(out_csv);
    engine
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(
        scale > 0.0 && scale <= 1.0,
        "SCALE must be in (0, 1], got {scale}"
    );
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}

/// Times the closure with the registry disabled and enabled in strict
/// alternation, so slow drift on a shared machine (thermal, cache, noisy
/// neighbours) hits both sides equally instead of masquerading as
/// instrumentation cost. Returns (disabled, enabled) medians.
fn paired_medians(iters: u32, f: &dyn Fn()) -> (f64, f64) {
    let timed = |on: bool| {
        obs::set_enabled(on);
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    // Warm both configurations before sampling.
    timed(false);
    timed(true);
    let mut off = Vec::with_capacity(iters as usize);
    let mut on = Vec::with_capacity(iters as usize);
    for _ in 0..iters.max(1) {
        off.push(timed(false));
        on.push(timed(true));
    }
    obs::set_enabled(false);
    (median(off), median(on))
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn render_all(r: &resilience::StudyReport) -> String {
    format!(
        "{}\n{}\n{:?}",
        report::full(r),
        report::figure2(r),
        r.availability_estimate()
    )
}

fn render_log(archive: &Archive) -> Vec<u8> {
    let mut out = Vec::new();
    for line in archive.iter() {
        out.extend_from_slice(line.to_string().as_bytes());
        out.push(b'\n');
    }
    out
}
