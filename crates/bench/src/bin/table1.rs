//! Regenerates Table I: per-XID error counts and MTBE per study phase.
//!
//! ```text
//! cargo run --release -p bench --bin table1 [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    banner("Table I — GPU resilience statistics", options);
    let study = run_study(options, true);
    println!(
        "raw lines {} -> coalesced errors {} (ratio {:.1})",
        study.report.coalesce_summary.raw_lines,
        study.report.coalesce_summary.errors,
        study.report.coalesce_summary.ratio()
    );
    println!("{}", resilience::report::table1(&study.report));
    println!(
        "--- CSV ---\n{}",
        resilience::report::table1_csv(&study.report)
    );
}
