//! E13 streaming pipeline sweep: incremental ingest throughput across a
//! chunk-size grid, with batch equivalence and checkpoint/restore cuts
//! asserted at every cell, and the resident state size tracked.
//!
//! One campaign is rendered to log bytes + CSV exports once. The batch
//! lenient pipeline ([`Pipeline::run_lenient`]) is the oracle; for every
//! chunk size the [`StreamingPipeline`] is fed the same bytes in pieces
//! and its materialized report, ledger counts *and* reservoir exemplars
//! must match the oracle byte-for-byte. Checkpoint legs cut the stream at
//! 25/50/75%, serialize, restore from bytes and continue — again to
//! byte-identical output. Peak serialized state size is sampled along the
//! way: the engine's memory is bounded by the analysis state, not the
//! stream length.
//!
//! ```text
//! cargo run --release -p bench --bin stream_sweep [--smoke] [SCALE] [SEED]
//! ```
//!
//! `--smoke` runs a reduced grid and asserts a machine-scaled throughput
//! floor relative to the batch scan on the same machine.

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use delta_gpu_resilience::bridge;
use hpclog::archive::Archive;
use resilience::checkpoint::Checkpoint;
use resilience::incremental::StreamingPipeline;
use resilience::{markdown, report, Pipeline};
use std::time::Instant;

/// See E12: the scaled calendar stays inside one year at scale ≤ 0.25.
const LOG_YEAR: i32 = 2022;

fn main() {
    let (smoke, options) = parse_args();
    banner("Streaming pipeline sweep (E13)", options);
    let study = run_study(options, true);
    let archive = &study.campaign.archive;
    let log = render_log(archive);
    let gpu_jobs = bridge::jobs(&study.outcome.jobs);
    let cpu_jobs = bridge::jobs(&study.outcome.cpu_jobs);
    let outages = bridge::outages(study.campaign.ledger.outages());
    let gpu_csv = resilience::csvio::render_jobs(&gpu_jobs);
    let cpu_csv = resilience::csvio::render_jobs(&cpu_jobs);
    let out_csv = resilience::csvio::render_outages(&outages);
    let mut pipeline = Pipeline::delta();
    pipeline.periods = study.campaign.config.periods;

    let lines = archive.line_count() as u64;
    println!(
        "stream: {} lines, {:.1} MiB of log, {} GPU jobs, {} outages",
        lines,
        log.len() as f64 / (1024.0 * 1024.0),
        gpu_jobs.len(),
        outages.len()
    );

    // Batch oracle + its throughput on this machine.
    let iters = if smoke { 3 } else { 5 };
    let (oracle, oracle_q) =
        pipeline.run_lenient(log.as_slice(), LOG_YEAR, &gpu_csv, &cpu_csv, &out_csv);
    let oracle_render = render_all(&oracle);
    let batch_secs = median_secs(iters, || {
        pipeline.run_lenient(log.as_slice(), LOG_YEAR, &gpu_csv, &cpu_csv, &out_csv)
    });
    let batch_rate = lines as f64 / batch_secs.max(1e-12);
    println!(
        "batch lenient oracle: {:.2} ms ({:.0} lines/s), median of {iters}",
        batch_secs * 1e3,
        batch_rate
    );

    // Chunk-size sweep: equivalence + steady-state throughput per cell.
    let chunks: &[usize] = if smoke {
        &[4096, 1 << 20, usize::MAX]
    } else {
        &[512, 4096, 65536, 1 << 20, usize::MAX]
    };
    let mut whole_rate = 0.0;
    println!(
        "\nstreaming ingest, median of {iters} iters:\n{:>12} {:>12} {:>14} {:>10} {:>16}",
        "chunk", "median ms", "lines/s", "vs batch", "peak state B"
    );
    for &chunk in chunks {
        let engine = stream_once(&pipeline, &log, chunk, &gpu_csv, &cpu_csv, &out_csv);
        let (report_s, quarantine_s) = engine.finalize();
        assert_eq!(
            render_all(&report_s),
            oracle_render,
            "chunk={chunk}: render differs from batch"
        );
        assert_eq!(
            quarantine_s.ledger.counts(),
            oracle_q.ledger.counts(),
            "chunk={chunk}: ledger counts"
        );
        assert_eq!(
            quarantine_s.ledger.exemplars(),
            oracle_q.ledger.exemplars(),
            "chunk={chunk}: reservoir exemplars"
        );
        assert_eq!(quarantine_s.caveats, oracle_q.caveats, "chunk={chunk}");

        // Timed leg: log feed only (the steady-state path), no snapshots.
        let secs = median_secs(iters, || {
            let mut engine = StreamingPipeline::new(pipeline, LOG_YEAR);
            for piece in log.chunks(chunk.min(log.len().max(1))) {
                engine.push_log(piece);
            }
            engine.finish_log();
            engine
        });
        let rate = lines as f64 / secs.max(1e-12);
        if chunk == usize::MAX {
            whole_rate = rate;
        }

        // Untimed leg: sample serialized state size along the stream.
        let peak = peak_state_bytes(&pipeline, &log, chunk);
        println!(
            "{:>12} {:>12.2} {:>14.0} {:>9.2}x {:>16}",
            chunk_label(chunk),
            secs * 1e3,
            rate,
            rate / batch_rate,
            peak
        );
        assert!(
            peak < log.len().max(4096),
            "chunk={chunk}: serialized state ({peak} B) outgrew the log itself"
        );
    }

    // Checkpoint legs: cut at 25/50/75% of the log bytes, serialize,
    // restore from raw bytes, continue, compare everything.
    println!();
    for quarter in [1, 2, 3] {
        let cut = log.len() * quarter / 4;
        let mut first = StreamingPipeline::new(pipeline, LOG_YEAR);
        first.push_log(&log[..cut]);
        let snapshot = first.checkpoint();
        let size = snapshot.as_bytes().len();
        let restored = Checkpoint::from_bytes(snapshot.into_bytes()).expect("self-read snapshot");
        let mut resumed = StreamingPipeline::restore(&restored).expect("restore own snapshot");
        resumed.push_log(&log[cut..]);
        resumed.finish_log();
        resumed.push_gpu_jobs_csv(&gpu_csv);
        resumed.push_cpu_jobs_csv(&cpu_csv);
        resumed.push_outages_csv(&out_csv);
        let (r, q) = resumed.finalize();
        assert_eq!(
            render_all(&r),
            oracle_render,
            "checkpoint at {quarter}/4: render differs"
        );
        assert_eq!(
            q.ledger.exemplars(),
            oracle_q.ledger.exemplars(),
            "checkpoint at {quarter}/4: reservoir diverged"
        );
        println!(
            "checkpoint at {quarter}/4 ({cut} B in): state {size} B, resumed run byte-identical"
        );
    }

    if smoke {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // One streaming pass does strictly more bookkeeping than the batch
        // scan (tie buffer, live counters); the floor only guards against
        // pathological regressions and relaxes on starved machines.
        let floor = if cores >= 2 { 0.2 } else { 0.1 };
        let ratio = whole_rate / batch_rate;
        assert!(
            ratio >= floor,
            "smoke: whole-feed streaming ran {ratio:.2}x the batch scan, \
             below the {floor:.1}x floor for {cores} cores"
        );
        println!(
            "\nsmoke: streaming {ratio:.2}x batch throughput (floor {floor:.1}x, {cores} cores) — ok"
        );
    }
    println!("\nE13 complete: every chunk size and checkpoint cut byte-identical to batch.");
}

/// One full streaming run at `chunk` granularity, CSVs fed in canonical
/// order after the log.
fn stream_once(
    pipeline: &Pipeline,
    log: &[u8],
    chunk: usize,
    gpu_csv: &str,
    cpu_csv: &str,
    out_csv: &str,
) -> StreamingPipeline {
    let mut engine = StreamingPipeline::new(*pipeline, LOG_YEAR);
    for piece in log.chunks(chunk.min(log.len().max(1))) {
        engine.push_log(piece);
    }
    engine.finish_log();
    for piece in gpu_csv.as_bytes().chunks(chunk.min(gpu_csv.len().max(1))) {
        engine.push_gpu_jobs_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    for piece in cpu_csv.as_bytes().chunks(chunk.min(cpu_csv.len().max(1))) {
        engine.push_cpu_jobs_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    for piece in out_csv.as_bytes().chunks(chunk.min(out_csv.len().max(1))) {
        engine.push_outages_csv(std::str::from_utf8(piece).expect("ASCII CSV"));
    }
    engine
}

/// Feeds the log once more, sampling the serialized state size at ~32
/// points along the stream; returns the peak.
fn peak_state_bytes(pipeline: &Pipeline, log: &[u8], chunk: usize) -> usize {
    let mut engine = StreamingPipeline::new(*pipeline, LOG_YEAR);
    let pieces: Vec<&[u8]> = log.chunks(chunk.min(log.len().max(1))).collect();
    let stride = (pieces.len() / 32).max(1);
    let mut peak = 0;
    for (i, piece) in pieces.iter().enumerate() {
        engine.push_log(piece);
        if i % stride == 0 {
            peak = peak.max(engine.state_size_bytes());
        }
    }
    engine.finish_log();
    peak.max(engine.state_size_bytes())
}

fn chunk_label(chunk: usize) -> String {
    if chunk == usize::MAX {
        "whole".to_owned()
    } else {
        chunk.to_string()
    }
}

/// Parses `[--smoke] [SCALE] [SEED]`. Defaults: scale 0.05 full, 0.02
/// smoke (the E12 convention).
fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}

fn median_secs<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Every deterministic render surface (the E12 convention).
fn render_all(r: &resilience::StudyReport) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{:?}",
        report::full(r),
        markdown::table1_md(r),
        markdown::table2_md(r),
        markdown::table3_md(r),
        report::figure2(r),
        r.availability_estimate()
    )
}

fn render_log(archive: &Archive) -> Vec<u8> {
    let mut out = Vec::new();
    for line in archive.iter() {
        out.extend_from_slice(line.to_string().as_bytes());
        out.push(b'\n');
    }
    out
}
