//! E19 tracing overhead: what request-scoped tracing, the flight
//! recorder, and the self-scrape thread cost the E17 serving fleet.
//!
//! Two parts. First a functional pass against a fully instrumented
//! server (4 shards, 512-trace recorder, 1 s scrape cadence) proves the
//! observability surface end to end: every response carries an
//! `X-Trace-Id` that resolves via `/debug/traces?id=`, an uncached
//! `/errors` trace shows one `shard_scan` span per store shard, a
//! `/rollup` trace resolves too (it shows *no* scatter spans — rollups
//! serve pre-merged cubes), `/readyz` answers, `/metrics/history`
//! serves scraped points, and `/metrics` still validates under
//! [`obs::check`]. Then the E17 160-connection fleet runs back-to-back
//! against a traced and an untraced server (5 rounds, arm order
//! alternating ABBA so warm-up and thermal drift cancel; 1 round under
//! `--smoke`) and the median per-round paired ratio is gated: tracing
//! may cost at most 5% of throughput and 5% of p99 at full scale on a
//! machine with ≥4 cores. Like the throughput floor, the ratio gates
//! scale with the machine: on a 1–2 core container the 160 client
//! threads share the core(s) with the event loop, so the client's own
//! per-request costs (parsing the extra `X-Trace-Id` line) and
//! scheduler tail noise land in the ratio too — there the gates are
//! 12% throughput / 15% p99. Smoke runs on tiny fleets are noisier
//! still and gate at 23%/30% — a tripwire, not a measurement.
//!
//! Two env ablations split the measured cost for the E19 writeup:
//! `SERVD_ABLATE_HEADER=1` suppresses the response header (isolating
//! wire + client parse), `SERVD_ABLATE_SEAL=1` drops traces instead of
//! sealing them (isolating retention). Both skip the functional pass.
//!
//! ```text
//! cargo run --release -p bench --bin trace_overhead [--smoke] [SCALE] [SEED]
//! ```
//!
//! The machine-scaled floor (`150 × min(cores, 8)` req/s, as in
//! E15/E17) must also hold *with tracing on* — observability that
//! tanks the server below the floor is a regression even if the ratio
//! looks fine.

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use servd::testutil::{connect, get_on};
use servd::{ServerConfig, StoreHandle, StudyStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The E15/E17 request mix, unchanged: comparable numbers across
/// reports.
const ENDPOINTS: &[&str] = &[
    "/tables/1",
    "/tables/2",
    "/tables/3",
    "/fig2",
    "/errors",
    "/errors?host=gpub001",
    "/errors?xid=74",
    "/mtbe",
    "/mtbe?xid=119",
    "/jobs/impact",
    "/availability",
    "/snapshot",
    "/healthz",
];

const FUNCTIONAL_SHARDS: usize = 4;

fn main() {
    let (smoke, options) = parse_args();
    banner("servd tracing overhead (E19)", options);

    let study = run_study(options, false);
    println!(
        "store: {} coalesced errors, {} GPU jobs, {} outages",
        study.report.errors.len(),
        study.report.impact.gpu_failed_jobs(),
        study.report.availability.outage_count()
    );

    // The functional pass asserts the full surface (header included),
    // which the ablation switches deliberately break.
    if std::env::var("SERVD_ABLATE_HEADER").is_err() && std::env::var("SERVD_ABLATE_SEAL").is_err()
    {
        functional_pass(&study.report);
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = (150 * cores.min(8)) as f64;
    let shards = cores.clamp(1, 8);
    let (conns, per_conn, rounds) = if smoke { (80, 25, 1) } else { (160, 250, 5) };
    // Smoke fleets finish in milliseconds; scheduler jitter dominates,
    // so the smoke gate is only a tripwire. Full-scale gates scale with
    // the machine (see the module docs): on 1–2 cores the client fleet
    // shares the core budget, so its side of the instrumentation cost
    // (~1 µs/request of X-Trace-Id parsing, measured by the
    // SERVD_ABLATE_HEADER ablation) gates against the shared ~20 µs
    // round trip rather than a server-only budget.
    let (max_p99_ratio, min_rate_ratio) = if smoke {
        (1.30, 0.77)
    } else if cores >= 4 {
        (1.05, 0.95)
    } else {
        (1.15, 0.88)
    };

    println!(
        "\n-- paired fleets: {conns} connections x {per_conn} requests, \
         {shards} shards, {rounds} round(s) --"
    );
    println!("round  mode      req/s      p50        p90        p99        max      errors");
    let mut traced_rates = Vec::new();
    let mut traced_p99s = Vec::new();
    let mut plain_rates = Vec::new();
    let mut plain_p99s = Vec::new();
    for round in 0..rounds {
        // Pair A/B within every round, alternating the order (ABBA):
        // on small machines the second fleet of a round reliably runs
        // a few percent warmer, and a fixed order would book all of
        // that drift against one arm.
        let order = if round % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for &traced in &order {
            let m = run_fleet(&study.report, shards, conns, per_conn, traced);
            println!(
                "{round:>5}  {:<8}  {:>9.0}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}",
                if traced { "traced" } else { "plain" },
                m.rate,
                human_ns(m.p50),
                human_ns(m.p90),
                human_ns(m.p99),
                human_ns(m.max),
                m.errors
            );
            let mode = if traced { "traced" } else { "plain" };
            assert_eq!(
                m.errors, 0,
                "{mode} round {round}: {} failed requests",
                m.errors
            );
            if traced {
                traced_rates.push(m.rate);
                traced_p99s.push(m.p99);
            } else {
                plain_rates.push(m.rate);
                plain_p99s.push(m.p99);
            }
        }
    }

    // Gate on the median of the per-round *paired* ratios: the arms of
    // one round share whatever state the machine was in, so the pair
    // cancels drift that the ratio-of-medians (which mixes rounds)
    // would book as tracing overhead.
    let mut rate_ratios: Vec<f64> = traced_rates
        .iter()
        .zip(&plain_rates)
        .map(|(t, p)| t / p.max(1e-12))
        .collect();
    let mut p99_ratios: Vec<f64> = traced_p99s
        .iter()
        .zip(&plain_p99s)
        .map(|(t, p)| *t as f64 / (*p as f64).max(1e-12))
        .collect();
    let rate_ratio = median_f64(&mut rate_ratios);
    let p99_ratio = median_f64(&mut p99_ratios);
    let traced_rate = median_f64(&mut traced_rates);
    let plain_rate = median_f64(&mut plain_rates);
    let traced_p99 = median_u64(&mut traced_p99s);
    let plain_p99 = median_u64(&mut plain_p99s);
    println!(
        "\nmedians: plain {plain_rate:.0} req/s p99 {}, traced {traced_rate:.0} req/s p99 {}",
        human_ns(plain_p99),
        human_ns(traced_p99)
    );
    println!(
        "paired ratios (median per-round traced/plain): throughput {rate_ratio:.3} \
         (gate >= {min_rate_ratio}), p99 {p99_ratio:.3} (gate <= {max_p99_ratio})"
    );

    assert!(
        rate_ratio >= min_rate_ratio,
        "E19 throughput gate violated: traced/plain {rate_ratio:.3} < {min_rate_ratio}"
    );
    assert!(
        p99_ratio <= max_p99_ratio,
        "E19 p99 gate violated: traced/plain {p99_ratio:.3} > {max_p99_ratio}"
    );
    assert!(
        traced_rate >= floor,
        "E19 floor violated: traced {traced_rate:.0} req/s below machine floor {floor:.0}"
    );
    println!("floor {floor:.0} req/s on {cores} cores — ok (traced)");
    println!(
        "\nReading: the trace path costs ~2 us/request all-in — roughly\n\
         1 us for the X-Trace-Id wire bytes and the client's parse of\n\
         them, ~0.9 us sealing into slowest-N retention, ~0.7 us span\n\
         recording (split by the SERVD_ABLATE_* ablations). On a\n\
         multi-core box the client fleet runs beside the event loop and\n\
         that cost sits inside the 5% gate; on this {cores}-core machine\n\
         client and server share the core budget, so the gate scales\n\
         like the floor does. The functional pass above is the real\n\
         payload: every number the fleet produces stays explainable —\n\
         pick any X-Trace-Id off a slow response and /debug/traces shows\n\
         where the time went, stage by stage, shard by shard."
    );
}

/// Proves the full observability surface against one instrumented
/// server before any timing runs.
fn functional_pass(report: &resilience::StudyReport) {
    println!("\n-- functional pass: {FUNCTIONAL_SHARDS} shards, tracing + 1s scrape --");
    let store = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report.clone(),
        None,
        FUNCTIONAL_SHARDS,
    )));
    let server = servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            trace_capacity: 512,
            scrape_secs: 1,
            ..ServerConfig::default()
        },
        Arc::clone(&store),
    )
    .unwrap_or_else(|e| panic!("failed to start server: {e}"));
    let addr = server.addr().to_string();
    let mut conn = connect(&addr);

    // Uncached /errors scatters over every shard; its trace must show
    // one shard_scan span per shard once the recorder seals it.
    let errors = get_on(&mut conn, "/errors");
    assert_eq!(errors.status, 200, "/errors status");
    let errors_id = errors
        .header("X-Trace-Id")
        .unwrap_or_else(|| panic!("/errors response missing X-Trace-Id"))
        .to_owned();
    let doc = resolve_trace(&mut conn, &errors_id);
    for stage in ["parse", "route", "cache_lookup", "render", "merge", "write"] {
        assert!(
            doc.contains(&format!("\"name\": \"{stage}\"")),
            "/errors trace missing {stage} span: {doc}"
        );
    }
    let scans = doc.matches("\"name\": \"shard_scan\"").count();
    assert_eq!(
        scans, FUNCTIONAL_SHARDS,
        "/errors trace: {scans} shard_scan spans, want one per shard: {doc}"
    );
    println!("   /errors trace {errors_id}: {scans} shard_scan spans + merge — ok");

    // Rollups serve pre-merged cubes — the trace resolves but carries
    // no scatter spans (documented in EXPERIMENTS.md E19).
    let rollup = get_on(&mut conn, "/rollup?metric=errors&bucket=day");
    assert_eq!(rollup.status, 200, "/rollup status: {}", rollup.text());
    let rollup_id = rollup
        .header("X-Trace-Id")
        .unwrap_or_else(|| panic!("/rollup response missing X-Trace-Id"))
        .to_owned();
    let doc = resolve_trace(&mut conn, &rollup_id);
    assert_eq!(
        doc.matches("\"name\": \"shard_scan\"").count(),
        0,
        "/rollup serves pre-merged cubes; trace should show no scatter: {doc}"
    );
    println!("   /rollup trace {rollup_id}: resolved, zero scatter spans — ok");

    let readyz = get_on(&mut conn, "/readyz");
    assert_eq!(readyz.status, 200, "/readyz: {}", readyz.text());
    assert!(
        readyz.text().contains("\"snapshot\""),
        "/readyz body: {}",
        readyz.text()
    );

    // The startup scrape runs before we could connect, so the history
    // store answers immediately; poll briefly anyway in case the
    // scraper thread is still warming up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let history = loop {
        let h = get_on(&mut conn, "/metrics/history?name=obs_spans_dropped_total");
        if h.status == 200 && h.text().contains("\"points\": [[") {
            break h;
        }
        assert!(
            Instant::now() < deadline,
            "/metrics/history never served points: {} {}",
            h.status,
            h.text()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    println!(
        "   /readyz + /metrics/history serving ({} bytes of history) — ok",
        history.body.len()
    );

    let metrics = get_on(&mut conn, "/metrics");
    assert_eq!(metrics.status, 200, "/metrics status");
    let summary = obs::check::validate_prometheus(&metrics.text())
        .unwrap_or_else(|e| panic!("/metrics failed obs::check with tracing on: {e}"));
    assert!(
        summary.has_prefix("servd_"),
        "/metrics exposition lost the servd_ families"
    );
    println!("   /metrics validates under obs::check — ok");
    server.shutdown();
}

/// Polls `/debug/traces?id=` until the recorder has sealed and admitted
/// the trace (sealing happens on the event-loop cycle after the
/// response drains, so immediately-after reads can race it).
fn resolve_trace(conn: &mut std::net::TcpStream, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = get_on(conn, &format!("/debug/traces?id={id}"));
        if resp.status == 200 {
            let body = resp.text();
            assert!(
                body.contains(&format!("\"id\": \"{id}\"")),
                "trace {id} resolved to a different record: {body}"
            );
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "trace {id} never appeared in /debug/traces (last status {})",
            resp.status
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct FleetMetrics {
    rate: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    errors: usize,
}

/// Serves a freshly sharded store — traced (512-trace recorder, 1 s
/// scrape, the delta_serve defaults rounded up) or plain — and drives
/// `conns` keep-alive clients of `per_conn` requests each.
fn run_fleet(
    report: &resilience::StudyReport,
    shards: usize,
    conns: usize,
    per_conn: usize,
    traced: bool,
) -> FleetMetrics {
    let store = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report.clone(),
        None,
        shards,
    )));
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_queue: conns + 16,
        trace_capacity: if traced { 512 } else { 0 },
        scrape_secs: if traced { 1 } else { 0 },
        ..ServerConfig::default()
    };
    let server = servd::start(config, Arc::clone(&store))
        .unwrap_or_else(|e| panic!("failed to start server: {e}"));
    let addr = server.addr().to_string();

    let wall = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_run(&addr, c, per_conn, traced))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok((lat, errs)) => {
                latencies_ns.extend(lat);
                errors += errs;
            }
            Err(_) => errors += per_conn,
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    server.shutdown();

    latencies_ns.sort_unstable();
    FleetMetrics {
        rate: latencies_ns.len() as f64 / wall_secs.max(1e-12),
        p50: percentile(&latencies_ns, 50),
        p90: percentile(&latencies_ns, 90),
        p99: percentile(&latencies_ns, 99),
        max: latencies_ns.last().copied().unwrap_or(0),
        errors,
    }
}

/// One keep-alive connection issuing `count` requests, phased per
/// client like E15/E17. On the traced arm every response must carry an
/// `X-Trace-Id` — a silent instrumentation dropout would make the
/// ratio meaningless.
fn client_run(addr: &str, client: usize, count: usize, traced: bool) -> (Vec<u64>, usize) {
    let mut latencies = Vec::with_capacity(count);
    let mut errors = 0usize;
    let mut conn = connect(addr);
    for i in 0..count {
        let path = ENDPOINTS[(client + i) % ENDPOINTS.len()];
        let start = Instant::now();
        let resp = get_on(&mut conn, path);
        // Under the header ablation the traced arm legitimately answers
        // without X-Trace-Id; everywhere else a dropout is an error.
        static ABLATE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let instrumented = resp.header("X-Trace-Id").is_some() == traced
            || *ABLATE.get_or_init(|| std::env::var("SERVD_ABLATE_HEADER").is_ok());
        if resp.status == 200 && !resp.body.is_empty() && instrumented {
            latencies.push(start.elapsed().as_nanos() as u64);
        } else {
            errors += 1;
        }
    }
    (latencies, errors)
}

fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn median_u64(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    values[values.len() / 2]
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}
