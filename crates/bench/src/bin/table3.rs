//! Regenerates Table III: the workload mix (GPU-count buckets, elapsed
//! time statistics, ML vs non-ML GPU-hours) and the §V-A success rates.
//!
//! ```text
//! cargo run --release -p bench --bin table3 [SCALE] [SEED]
//! ```

use bench::{banner, run_study, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    banner("Table III — job distribution and GPU hours", options);
    let study = run_study(options, false);
    println!("{}", resilience::report::table3(&study.report));
    println!(
        "--- CSV ---\n{}",
        resilience::report::table3_csv(&study.report)
    );
}
