//! E17 epoll/scatter sweep: throughput and tail latency of the
//! event-loop servd core as the store shard count and the concurrent
//! connection fleet scale.
//!
//! One campaign is simulated and frozen once; then, for each shard
//! count in {1, 2, 4, 8}, a fresh sharded store is served by the epoll
//! core and hammered by a keep-alive fleet at 10× the E15 connection
//! count, round-robining the full endpoint surface (the scatter-heavy
//! `/errors` and `/mtbe` paths included). A second pass holds the
//! shard count at the machine's scatter width and scales the fleet,
//! showing how the fixed event-loop threads multiplex a growing
//! connection count without thread-per-connection cost.
//!
//! ```text
//! cargo run --release -p bench --bin epoll_sweep [--smoke] [SCALE] [SEED]
//! ```
//!
//! Every response must be a complete `200` body — one error fails the
//! run. The paper-grade target is ≥100k req/s with p99 < 5 ms on
//! server-class hardware; CI asserts the conservative machine-scaled
//! floor (the same `150 × min(cores, 8)` gate E15 uses) so the sweep
//! stays an honest regression tripwire on small containers.

use bench::{banner, run_study, RunOptions, DEFAULT_SEED};
use servd::testutil::{connect, get_on};
use servd::{ServerConfig, StoreHandle, StudyStore};
use std::sync::Arc;
use std::time::Instant;

/// The E15 request mix, unchanged: comparable numbers across reports.
const ENDPOINTS: &[&str] = &[
    "/tables/1",
    "/tables/2",
    "/tables/3",
    "/fig2",
    "/errors",
    "/errors?host=gpub001",
    "/errors?xid=74",
    "/mtbe",
    "/mtbe?xid=119",
    "/jobs/impact",
    "/availability",
    "/snapshot",
    "/healthz",
];

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let (smoke, options) = parse_args();
    banner("servd epoll/scatter sweep (E17)", options);

    let study = run_study(options, false);
    println!(
        "store: {} coalesced errors, {} GPU jobs, {} outages",
        study.report.errors.len(),
        study.report.impact.gpu_failed_jobs(),
        study.report.availability.outage_count()
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = (150 * cores.min(8)) as f64;

    // 10× the E15 fleet; the epoll core multiplexes every connection
    // over a few event-loop threads, so unlike the old thread-pool
    // core the worker count no longer tracks the fleet size.
    let (conns, per_conn) = if smoke { (80, 25) } else { (160, 250) };
    let fleet_scaling: &[usize] = if smoke { &[8, 16, 80] } else { &[16, 40, 160] };

    println!("\n-- shard sweep at {conns} connections x {per_conn} requests --");
    println!("shards  req/s      p50        p90        p99        max      errors");
    let mut worst_floor_miss: Option<String> = None;
    for shards in SHARD_COUNTS {
        let m = run_fleet(&study.report, shards, conns, per_conn);
        println!(
            "{shards:>6}  {:>9.0}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}",
            m.rate,
            human_ns(m.p50),
            human_ns(m.p90),
            human_ns(m.p99),
            human_ns(m.max),
            m.errors
        );
        assert_eq!(m.errors, 0, "shard={shards}: {} failed requests", m.errors);
        if m.rate < floor {
            worst_floor_miss = Some(format!(
                "shards={shards}: {:.0} req/s below machine floor {floor:.0}",
                m.rate
            ));
        }
    }

    let width = cores.clamp(1, 8);
    println!("\n-- connection scaling at {width} shards, {per_conn} requests each --");
    println!(" conns  req/s      p50        p90        p99        max      errors");
    for &fleet in fleet_scaling {
        let m = run_fleet(&study.report, width, fleet, per_conn);
        println!(
            "{fleet:>6}  {:>9.0}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}",
            m.rate,
            human_ns(m.p50),
            human_ns(m.p90),
            human_ns(m.p99),
            human_ns(m.max),
            m.errors
        );
        assert_eq!(m.errors, 0, "conns={fleet}: {} failed requests", m.errors);
        if m.rate >= 100_000.0 && m.p99 < 5_000_000 {
            println!("        ^ paper-grade target met (>=100k req/s, p99 < 5 ms)");
        }
    }

    if let Some(miss) = worst_floor_miss {
        panic!("E17 floor violated — {miss}");
    }
    println!("\nfloor {floor:.0} req/s on {cores} cores — ok");
    println!(
        "\nReading: shard count changes *where* a scan runs, not what it\n\
         returns — rates across the shard sweep should be flat-ish on a\n\
         small machine (scatter pays above one core) while staying\n\
         byte-identical (tests/shard_equivalence.rs). The connection\n\
         scaling pass is the epoll dividend: the fleet grows 10x but the\n\
         event-loop thread count stays fixed, so req/s holds instead of\n\
         collapsing under thread-per-connection scheduling."
    );
}

struct FleetMetrics {
    rate: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    errors: usize,
}

/// Serves a freshly sharded store and drives `conns` keep-alive
/// clients of `per_conn` requests each; returns aggregate metrics.
fn run_fleet(
    report: &resilience::StudyReport,
    shards: usize,
    conns: usize,
    per_conn: usize,
) -> FleetMetrics {
    let store = Arc::new(StoreHandle::new(StudyStore::build_sharded(
        report.clone(),
        None,
        shards,
    )));
    let server = servd::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_queue: conns + 16,
            ..ServerConfig::default()
        },
        Arc::clone(&store),
    )
    .unwrap_or_else(|e| panic!("failed to start server: {e}"));
    let addr = server.addr().to_string();

    let wall = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_run(&addr, c, per_conn))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut errors = 0usize;
    for handle in handles {
        match handle.join() {
            Ok((lat, errs)) => {
                latencies_ns.extend(lat);
                errors += errs;
            }
            Err(_) => errors += per_conn,
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    server.shutdown();

    latencies_ns.sort_unstable();
    FleetMetrics {
        rate: latencies_ns.len() as f64 / wall_secs.max(1e-12),
        p50: percentile(&latencies_ns, 50),
        p90: percentile(&latencies_ns, 90),
        p99: percentile(&latencies_ns, 99),
        max: latencies_ns.last().copied().unwrap_or(0),
        errors,
    }
}

/// One keep-alive connection issuing `count` requests through the
/// shared `servd::testutil` client, phased per client like E15.
fn client_run(addr: &str, client: usize, count: usize) -> (Vec<u64>, usize) {
    let mut latencies = Vec::with_capacity(count);
    let mut errors = 0usize;
    let mut conn = connect(addr);
    for i in 0..count {
        let path = ENDPOINTS[(client + i) % ENDPOINTS.len()];
        let start = Instant::now();
        let resp = get_on(&mut conn, path);
        if resp.status == 200 && !resp.body.is_empty() {
            latencies.push(start.elapsed().as_nanos() as u64);
        } else {
            errors += 1;
        }
    }
    (latencies, errors)
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() * pct).div_ceil(100);
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

fn human_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

fn parse_args() -> (bool, RunOptions) {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .map(|a| {
            a.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
        })
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    assert!(scale > 0.0 && scale <= 0.25, "SCALE must be in (0, 0.25]");
    let seed = positional
        .get(1)
        .map(|a| {
            a.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
        })
        .unwrap_or(DEFAULT_SEED);
    (smoke, RunOptions { scale, seed })
}
