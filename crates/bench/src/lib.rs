//! Shared harness code for the benchmark suite and the table/figure
//! regeneration binaries.
//!
//! Every regeneration binary accepts the same two optional arguments:
//!
//! ```text
//! <binary> [SCALE] [SEED]
//! ```
//!
//! `SCALE` (default 1.0) multiplies the simulated calendar; `SEED`
//! (default 0xDE17A) seeds every random stream. `EXPERIMENTS.md` records
//! the full-scale (`SCALE = 1.0`) outputs.

use clustersim::Cluster;
use delta_gpu_resilience::bridge;
use faultsim::{Campaign, CampaignOutput, FaultConfig};
use resilience::{Pipeline, StudyReport};
use slurmsim::{Simulation, SimulationOutcome, WorkloadConfig};

/// The default campaign seed used across EXPERIMENTS.md.
pub const DEFAULT_SEED: u64 = 0xDE17A;

/// Parsed command-line options for a regeneration binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Calendar scale in `(0, 1]`.
    pub scale: f64,
    /// Root seed.
    pub seed: u64,
}

impl RunOptions {
    /// Parses `[SCALE] [SEED]` from `std::env::args`, with defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut args = std::env::args().skip(1);
        let scale = args
            .next()
            .map(|a| {
                a.parse::<f64>()
                    .unwrap_or_else(|_| panic!("bad SCALE {a:?}"))
            })
            .unwrap_or(1.0);
        assert!(
            scale > 0.0 && scale <= 1.0,
            "SCALE must be in (0, 1], got {scale}"
        );
        let seed = args
            .next()
            .map(|a| {
                a.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad SEED {a:?}"))
            })
            .unwrap_or(DEFAULT_SEED);
        RunOptions { scale, seed }
    }
}

/// A fully executed study: campaign + schedule + analysis.
pub struct Study {
    /// The fault-injection output.
    pub campaign: CampaignOutput,
    /// The scheduler outcome.
    pub outcome: SimulationOutcome,
    /// The analysis report.
    pub report: StudyReport,
}

/// Runs the complete study at the given options.
///
/// `emit_logs` controls whether the campaign renders raw log text (the
/// Table I path needs it; job-only experiments can skip it for speed).
pub fn run_study(options: RunOptions, emit_logs: bool) -> Study {
    let mut config = if options.scale >= 1.0 {
        FaultConfig::delta()
    } else {
        FaultConfig::delta_scaled(options.scale)
    };
    config.seed = options.seed;
    config.emit_logs = emit_logs;
    let campaign = Campaign::new(config).run();

    let cluster = Cluster::new(campaign.config.spec);
    let workload = if options.scale >= 1.0 {
        WorkloadConfig::delta()
    } else {
        WorkloadConfig::delta_scaled(options.scale)
    };
    let outcome = Simulation::new(&cluster, workload, options.seed)
        .run(&campaign.ground_truth, &campaign.holds);

    let mut pipeline = Pipeline::delta();
    pipeline.periods = campaign.config.periods;
    let report = if emit_logs {
        pipeline.run(
            &campaign.archive,
            &bridge::jobs(&outcome.jobs),
            &bridge::jobs(&outcome.cpu_jobs),
            &bridge::outages(campaign.ledger.outages()),
        )
    } else {
        // Statistics-only path: feed ground truth straight into the
        // coalescer without rendering/parsing log text.
        let events = campaign
            .ground_truth
            .iter()
            .map(|e| {
                hpclog::XidEvent::new(
                    e.time,
                    e.gpu.node.hostname(),
                    hpclog::PciAddr::for_gpu_index(e.gpu.index),
                    e.kind.primary_code(),
                    "",
                )
            })
            .collect();
        pipeline.run_events(
            events,
            None,
            &bridge::jobs(&outcome.jobs),
            &bridge::jobs(&outcome.cpu_jobs),
            &bridge::outages(campaign.ledger.outages()),
        )
    };
    Study {
        campaign,
        outcome,
        report,
    }
}

/// A minimal wall-clock micro-benchmark harness.
///
/// The Criterion dependency was dropped so the workspace builds offline
/// (DESIGN.md §4); these benches need only medians and throughput, which
/// ~40 lines of `std::time::Instant` provide. Timings are indicative, not
/// statistically rigorous — EXPERIMENTS.md records them as such.
pub mod stopwatch {
    use std::time::Instant;

    /// Runs `f` once as warm-up and then `iters` timed times, printing
    /// `name: median per-iter time` plus per-element throughput when
    /// `elements` is non-zero.
    pub fn bench<T>(name: &str, elements: u64, iters: u32, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let mut samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        if elements > 0 && median > 0.0 {
            println!(
                "{name:<40} {:>12} /iter  {:>14.0} elem/s",
                human_time(median),
                elements as f64 / median,
            );
        } else {
            println!("{name:<40} {:>12} /iter", human_time(median));
        }
    }

    fn human_time(secs: f64) -> String {
        if secs >= 1.0 {
            format!("{secs:.2} s")
        } else if secs >= 1e-3 {
            format!("{:.2} ms", secs * 1e3)
        } else {
            format!("{:.2} us", secs * 1e6)
        }
    }
}

/// Prints the standard experiment header.
pub fn banner(name: &str, options: RunOptions) {
    println!(
        "=== {name} (scale {}, seed {:#x}) ===",
        options.scale, options.seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_study_smoke() {
        let study = run_study(
            RunOptions {
                scale: 0.01,
                seed: 1,
            },
            true,
        );
        assert!(!study.campaign.ground_truth.is_empty());
        assert!(!study.outcome.jobs.is_empty());
        assert!(study.report.coalesce_summary.errors > 0);
    }

    #[test]
    fn statistics_only_path_works() {
        let study = run_study(
            RunOptions {
                scale: 0.01,
                seed: 2,
            },
            false,
        );
        assert_eq!(study.campaign.archive.line_count(), 0);
        assert!(study.report.coalesce_summary.errors > 0);
    }
}
