//! A minimal, deterministic property-testing harness built on [`simrng`].
//!
//! The workspace's property tests originally used an external
//! property-testing crate; that conflicts with two project constraints
//! (DESIGN.md §4): the build must work **offline** (no registry access) and
//! every random stream must be **auditable and bit-exact** from a seed.
//! `propcheck` replaces the external dependency with ~200 lines: a case
//! runner that forks one independent [`simrng::Rng`] stream per case, plus
//! a [`Gen`] façade with the handful of value generators the tests need.
//!
//! # Usage
//!
//! ```
//! use propcheck::run;
//!
//! #[derive(Debug)]
//! struct Never;
//!
//! run("addition commutes", 64, |g| {
//!     let (a, b) = (g.u64_below(1 << 30), g.u64_below(1 << 30));
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Failures panic with the case index and root seed so a single case can be
//! replayed with [`run_case`]. The root seed defaults to a fixed constant
//! (reproducible CI); set `PROPCHECK_SEED` to explore other streams and
//! `PROPCHECK_CASES` to scale the case count (a multiplier ×100, so `200`
//! doubles every test's cases).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simrng::Rng;

/// The default root seed: every run of the suite explores the same cases.
pub const DEFAULT_SEED: u64 = 0x9E2A_C0FF_EE15_600D;

/// Value generators for one property-test case.
///
/// A thin façade over a forked [`Rng`] stream: each case owns an
/// independent stream, so generators consumed by one case never perturb
/// another (adding a case or a draw shifts nothing else).
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Creates a generator over a dedicated RNG stream.
    pub fn new(rng: Rng) -> Self {
        Gen { rng }
    }

    /// Direct access to the underlying stream (for seeding substrate RNGs).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `u64` in `[0, bound)`. `bound` must be positive.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.range_u64(bound)
    }

    /// A uniform `u64` in `[lo, hi)`. Requires `lo < hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range(lo, hi)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range(lo as u64, hi as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.range(lo as u64, hi as u64) as u32
    }

    /// A uniform `u16` in `[lo, hi)`.
    pub fn u16_in(&mut self, lo: u16, hi: u16) -> u16 {
        self.rng.range(lo as u64, hi as u64) as u16
    }

    /// A uniform `u8` in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.rng.range(lo as u64, hi as u64) as u8
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.bool_with(0.5)
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.bool_with(p)
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty — an empty choice set is a bug in the
    /// test, not a property failure.
    pub fn choose<T: Copy>(&mut self, items: &[T]) -> T {
        assert!(!items.is_empty(), "propcheck: choose() on empty slice");
        items[self.rng.range_u64(items.len() as u64) as usize]
    }

    /// A vector of `len` values in `[lo, hi)` where `len` is itself drawn
    /// from `len_lo..len_hi`.
    pub fn vec_u64(&mut self, len_lo: usize, len_hi: usize, lo: u64, hi: u64) -> Vec<u64> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| self.u64_in(lo, hi)).collect()
    }

    /// A vector built by calling `f` between `len_lo` and `len_hi - 1`
    /// times.
    pub fn vec_with<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// An ASCII string of length in `[len_lo, len_hi)` over `alphabet`.
    pub fn string_of(&mut self, alphabet: &[u8], len_lo: usize, len_hi: usize) -> String {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| self.choose(alphabet) as char).collect()
    }
}

/// The root seed for this process (env override or [`DEFAULT_SEED`]).
pub fn root_seed() -> u64 {
    match std::env::var("PROPCHECK_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PROPCHECK_SEED must be a u64, got {v:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

fn case_multiplier() -> u32 {
    match std::env::var("PROPCHECK_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PROPCHECK_CASES must be a u32 percentage, got {v:?}")),
        Err(_) => 100,
    }
}

/// Runs `property` for `cases` independent cases (scaled by
/// `PROPCHECK_CASES` %). Each case gets its own forked stream derived from
/// the root seed, the property name and the case index, so cases are
/// reproducible individually and insensitive to reordering.
///
/// # Panics
///
/// Re-raises any assertion failure inside `property`, prefixed with the
/// case index and root seed needed to replay it via [`run_case`].
pub fn run(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    let seed = root_seed();
    let scaled = ((cases as u64 * case_multiplier() as u64) / 100).max(1);
    for case in 0..scaled {
        let mut gen = Gen::new(case_stream(seed, name, case));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property {name:?} failed at case {case}/{scaled} \
                 (replay: propcheck::run_case({name:?}, {case}, ...) with \
                 PROPCHECK_SEED={seed}): {msg}"
            );
        }
    }
}

/// How many failing shrink candidates [`run_shrinking`] will evaluate
/// before reporting the smallest counterexample found so far.
pub const MAX_SHRINK_STEPS: usize = 1000;

/// Runs a property over explicit generated values, and on failure
/// greedily shrinks the counterexample before reporting it.
///
/// Unlike [`run`], the case value is reified: `generate` draws a `T` from
/// the case's stream, `property` judges it, and `shrink` proposes smaller
/// variants of a failing value (return an empty vector when the value is
/// minimal). Shrinking is QuickCheck-style greedy descent: the first
/// still-failing candidate at each step becomes the new counterexample,
/// until no candidate fails or [`MAX_SHRINK_STEPS`] candidates have been
/// tried. Determinism is preserved — generation draws from the same
/// per-case forked streams as [`run`], and shrinking is a pure function
/// of the failing value.
///
/// # Panics
///
/// Panics with the *shrunk* counterexample (plus the case index and seed
/// needed to replay the original) when any case fails.
pub fn run_shrinking<T: std::fmt::Debug>(
    name: &str,
    cases: u32,
    mut generate: impl FnMut(&mut Gen) -> T,
    mut shrink: impl FnMut(&T) -> Vec<T>,
    mut property: impl FnMut(&T) -> Result<(), String>,
) {
    let seed = root_seed();
    let scaled = ((cases as u64 * case_multiplier() as u64) / 100).max(1);
    for case in 0..scaled {
        let mut gen = Gen::new(case_stream(seed, name, case));
        let value = generate(&mut gen);
        let Err(first_failure) = property(&value) else {
            continue;
        };
        let mut smallest = value;
        let mut failure = first_failure;
        let mut steps = 0usize;
        'descend: while steps < MAX_SHRINK_STEPS {
            for candidate in shrink(&smallest) {
                steps += 1;
                if let Err(msg) = property(&candidate) {
                    smallest = candidate;
                    failure = msg;
                    continue 'descend;
                }
                if steps >= MAX_SHRINK_STEPS {
                    break;
                }
            }
            break; // every candidate passed: `smallest` is locally minimal
        }
        panic!(
            "property {name:?} failed at case {case}/{scaled} \
             (replay: propcheck::run_case({name:?}, {case}, ...) with \
             PROPCHECK_SEED={seed}): {failure}\n\
             shrunk counterexample ({steps} candidates tried): {smallest:#?}"
        );
    }
}

/// Standard shrink candidates for a sequence: drop the first/second half,
/// then drop each element individually. Greedy descent over these reaches
/// a locally 1-minimal subsequence quickly (halves first gives the
/// logarithmic descent, single removals polish the result).
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    let mid = v.len() / 2;
    if mid > 0 {
        out.push(v[mid..].to_vec());
        out.push(v[..mid].to_vec());
    }
    for i in 0..v.len() {
        let mut shorter = Vec::with_capacity(v.len() - 1);
        shorter.extend_from_slice(&v[..i]);
        shorter.extend_from_slice(&v[i + 1..]);
        out.push(shorter);
    }
    out
}

/// Replays exactly one case of a property (used to debug a failure
/// reported by [`run`]).
pub fn run_case(name: &str, case: u64, mut property: impl FnMut(&mut Gen)) {
    let mut gen = Gen::new(case_stream(root_seed(), name, case));
    property(&mut gen);
}

/// Derives the per-case RNG stream: root seed → per-property fork (keyed by
/// a stable hash of the name) → per-case fork.
fn case_stream(seed: u64, name: &str, case: u64) -> Rng {
    // FNV-1a over the property name: stable across platforms and runs,
    // which `std`'s `DefaultHasher` does not guarantee.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Rng::seed_from(seed).fork(h).fork(case)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run("det", 8, |g| first.push(g.u64()));
        let mut second = Vec::new();
        run("det", 8, |g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let mut a = Vec::new();
        run("stream-a", 4, |g| a.push(g.u64()));
        let mut b = Vec::new();
        run("stream-b", 4, |g| b.push(g.u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn run_case_replays_the_same_values() {
        let mut seen = Vec::new();
        run("replay", 5, |g| seen.push(g.u64()));
        let mut third = 0;
        run_case("replay", 3, |g| third = g.u64());
        assert_eq!(third, seen[3]);
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            run("boom", 10, |g| {
                let x = g.u64_below(100);
                assert!(x % 97 != 3 || x == u64::MAX, "x was {x}");
            });
        });
        // Whether or not a case hits the assertion depends on the stream;
        // all this checks is that *if* it fails, the message is actionable.
        if let Err(payload) = result {
            let msg = payload.downcast_ref::<String>().expect("formatted message");
            assert!(msg.contains("boom"), "{msg}");
            assert!(msg.contains("replay"), "{msg}");
        }
    }

    #[test]
    fn generators_respect_bounds() {
        run("bounds", 32, |g| {
            assert!(g.u64_below(7) < 7);
            let x = g.u64_in(10, 20);
            assert!((10..20).contains(&x));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = g.string_of(b"abc", 1, 5);
            assert!(!s.is_empty() && s.len() < 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
            let v = g.vec_u64(0, 4, 5, 9);
            assert!(v.len() < 4);
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
        });
    }

    #[test]
    fn shrinking_finds_a_minimal_counterexample() {
        // Property: no vector contains a value >= 1000. The generator
        // plants violations; the shrinker should strip everything else.
        let result = std::panic::catch_unwind(|| {
            run_shrinking(
                "shrink-to-one",
                20,
                |g| {
                    let mut v = g.vec_u64(0, 10, 0, 500);
                    if g.bool_with(0.7) {
                        v.push(g.u64_in(1000, 2000));
                    }
                    v
                },
                |v| shrink_vec(v),
                |v| {
                    if v.iter().any(|&x| x >= 1000) {
                        Err(format!("contains a big value: {v:?}"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let payload = result.expect_err("generator plants failures");
        let msg = payload.downcast_ref::<String>().expect("formatted message");
        // The shrunk vector should be exactly one offending element.
        assert!(msg.contains("shrunk counterexample"), "{msg}");
        let tail = msg.split("shrunk counterexample").nth(1).unwrap();
        let ones = tail.matches("1").count();
        assert!(ones >= 1, "{msg}");
        assert!(
            tail.lines().filter(|l| l.trim().ends_with(',')).count() <= 1,
            "shrunk vector should have at most one element: {msg}"
        );
    }

    #[test]
    fn shrinking_passes_clean_properties() {
        run_shrinking(
            "shrink-clean",
            16,
            |g| g.vec_u64(0, 8, 0, 100),
            |v| shrink_vec(v),
            |v| {
                if v.iter().all(|&x| x < 100) {
                    Ok(())
                } else {
                    Err("out of range".to_owned())
                }
            },
        );
    }

    #[test]
    fn shrink_vec_proposes_halves_and_removals() {
        let v = vec![1, 2, 3, 4];
        let candidates = shrink_vec(&v);
        assert!(candidates.contains(&vec![3, 4]));
        assert!(candidates.contains(&vec![1, 2]));
        assert!(candidates.contains(&vec![2, 3, 4]));
        assert!(candidates.contains(&vec![1, 2, 3]));
        assert!(candidates.iter().all(|c| c.len() < v.len()));
        assert!(shrink_vec(&Vec::<u8>::new()).is_empty());
        // A singleton can still shrink to empty.
        assert_eq!(shrink_vec(&[7]), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn choose_picks_members() {
        run("choose", 16, |g| {
            let item = g.choose(&[1u8, 2, 3]);
            assert!([1, 2, 3].contains(&item));
        });
    }
}
