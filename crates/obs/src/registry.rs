//! Lock-free metrics: atomic counters, gauges and fixed-bucket
//! histograms behind an interning registry.
//!
//! Registration takes a short-lived mutex to intern the
//! `(name, label-set)` key; the handles it returns are `Arc`-shared
//! atomics, so every record operation on the hot path is one relaxed
//! load (the enable flag) plus one relaxed read-modify-write. Handles
//! are cheap to clone and safe to share across the worker pool.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bucket upper bounds (µs) for stage/IO latencies: 50µs .. 4s.
pub const DURATION_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    4_000_000,
];

/// Bucket upper bounds (bytes) for payload sizes: 256B .. 16MiB.
pub const SIZE_BYTES_BUCKETS: &[u64] = &[
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// An interned label set: keys are static, values owned, sorted by key.
pub type LabelSet = Vec<(&'static str, String)>;

fn intern_labels(labels: &[(&'static str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels.iter().map(|&(k, v)| (k, v.to_owned())).collect();
    set.sort_by_key(|&(k, _)| k);
    set.dedup_by_key(|&mut (k, _)| k);
    set
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn detached(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (exposition/tests only — pipeline code never reads).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether two handles update the same underlying cell (interning).
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A gauge: an instantaneous value, settable or raised to a maximum.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn detached(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if it is higher (high-water marks).
    pub fn set_max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (exposition/tests only).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending inclusive upper bounds; the implicit last bucket is +Inf.
    bounds: &'static [u64],
    /// `bounds.len() + 1` cells, the last one the +Inf overflow bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (µs, bytes, ...).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn detached(enabled: Arc<AtomicBool>, bounds: &'static [u64]) -> Self {
        let counts: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            enabled,
            core: Arc::new(HistogramCore {
                bounds,
                counts: counts.into_boxed_slice(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. A value equal to a bound lands in that
    /// bound's bucket (`v <= bound`, Prometheus `le` semantics).
    pub fn observe(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        if let Some(cell) = self.core.counts.get(idx) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// The configured bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.core.bounds
    }

    /// Snapshot of the per-bucket counts (exposition/tests only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds,
            counts: self
                .core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.core.sum.load(Ordering::Relaxed),
            count: self.core.count.load(Ordering::Relaxed),
        }
    }

    /// Whether two handles update the same underlying cells (interning).
    pub fn same_cell(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

/// Point-in-time histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds (the +Inf bucket is implicit).
    pub bounds: &'static [u64],
    /// Per-bucket (non-cumulative) counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A metric's identity and current value, as captured by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Sorted label set.
    pub labels: LabelSet,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// The interning registry. Cheap to share behind an `Arc`; handles it
/// hands out stay valid for the life of the process.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    inner: Mutex<BTreeMap<(&'static str, LabelSet), Metric>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Registry {
            enabled,
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(&'static str, LabelSet), Metric>> {
        // A poisoned mutex only means another thread panicked mid-insert;
        // the map itself is still structurally sound, so keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or finds) the counter `name{labels}`. If the key is
    /// already registered as a different metric type the call returns a
    /// detached handle that records nowhere visible — never a panic.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let key = (name, intern_labels(labels));
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::detached(Arc::clone(&self.enabled))))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(Arc::clone(&self.enabled)),
        }
    }

    /// Registers (or finds) the gauge `name{labels}`; type conflicts
    /// yield a detached handle, as with [`Registry::counter`].
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let key = (name, intern_labels(labels));
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::detached(Arc::clone(&self.enabled))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(Arc::clone(&self.enabled)),
        }
    }

    /// Registers (or finds) the histogram `name{labels}` with the given
    /// bucket bounds. A key registered with different bounds (or as a
    /// different type) yields a detached handle.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &'static [u64],
    ) -> Histogram {
        let key = (name, intern_labels(labels));
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram::detached(Arc::clone(&self.enabled), bounds))
        }) {
            Metric::Histogram(h) if h.bounds() == bounds => h.clone(),
            _ => Histogram::detached(Arc::clone(&self.enabled), bounds),
        }
    }

    /// Captures every registered metric, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.lock();
        map.iter()
            .map(|((name, labels), metric)| MetricSnapshot {
                name,
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

/// Sums every counter named `name` across its label sets in `snapshot`.
/// The helper tests and benches use to diff registry snapshots.
pub fn counter_total(snapshot: &[MetricSnapshot], name: &str) -> u64 {
    snapshot
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            MetricValue::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new(Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn counters_accumulate_and_intern() {
        let r = registry();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        assert!(a.same_cell(&b), "same (name, labels) must intern");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter("x_total", &[("k", "w")]);
        assert!(!a.same_cell(&other), "different labels are distinct");
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = registry();
        let a = r.counter("y_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter("y_total", &[("a", "1"), ("b", "2")]);
        assert!(a.same_cell(&b), "label sets are sorted before interning");
    }

    #[test]
    fn type_conflicts_detach_instead_of_panicking() {
        let r = registry();
        let c = r.counter("z", &[]);
        let g = r.gauge("z", &[]);
        g.set(7);
        c.inc();
        assert_eq!(c.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let r = registry();
        static BOUNDS: &[u64] = &[10, 100, 1000];
        let h = r.histogram("lat_us", &[], BOUNDS);
        // Exactly on a bound goes into that bound's bucket.
        h.observe(10);
        h.observe(11);
        h.observe(100);
        h.observe(1000);
        h.observe(1001);
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1, 1]); // [<=10, <=100, <=1000, +Inf]
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn histogram_bound_mismatch_detaches() {
        let r = registry();
        static A: &[u64] = &[1, 2];
        static B: &[u64] = &[3, 4];
        let h1 = r.histogram("h", &[], A);
        let h2 = r.histogram("h", &[], B);
        assert!(!h1.same_cell(&h2));
        h2.observe(1); // goes nowhere visible
        assert_eq!(h1.snapshot().count, 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let enabled = Arc::new(AtomicBool::new(false));
        let r = Registry::new(Arc::clone(&enabled));
        let c = r.counter("c_total", &[]);
        let g = r.gauge("g", &[]);
        let h = r.histogram("h_us", &[], DURATION_US_BUCKETS);
        c.add(5);
        g.set_max(9);
        h.observe(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        enabled.store(true, Ordering::Relaxed);
        c.add(5);
        assert_eq!(c.get(), 5, "handles work again once re-enabled");
    }

    #[test]
    fn snapshot_is_sorted_and_counter_total_sums_labels() {
        let r = registry();
        r.counter("b_total", &[("t", "1")]).add(1);
        r.counter("b_total", &[("t", "2")]).add(2);
        r.counter("a_total", &[]).add(4);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["a_total", "b_total", "b_total"]);
        assert_eq!(counter_total(&snap, "b_total"), 3);
        assert_eq!(counter_total(&snap, "a_total"), 4);
        assert_eq!(counter_total(&snap, "missing"), 0);
    }

    #[test]
    fn handles_share_across_threads() {
        let r = Arc::new(registry());
        let c = r.counter("threads_total", &[]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
