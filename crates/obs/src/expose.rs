//! Exposition: snapshotting an [`Obs`](crate::Obs) into an
//! [`ObsReport`] and rendering it as Prometheus text format or JSON.
//!
//! Both renderings are deterministic for a given snapshot: metrics sort
//! by `(name, labels)`, span aggregates keep pipeline stage order.

use crate::registry::{LabelSet, MetricSnapshot, MetricValue};
use crate::span::SpanAggregate;
use crate::Obs;
use std::fmt::Write as _;

/// A point-in-time snapshot of everything the process recorded.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Registry contents, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
    /// Per-stage span aggregates, in first-seen (stage) order.
    pub spans: Vec<SpanAggregate>,
    /// Spans evicted from the ring before this snapshot.
    pub spans_dropped: u64,
    /// The post-run timeline rendering ([`crate::Tracer::timeline`]).
    pub timeline: String,
}

impl ObsReport {
    /// Snapshots `obs` now.
    pub fn gather(obs: &Obs) -> Self {
        let records = obs.tracer().records();
        ObsReport {
            metrics: obs.registry().snapshot(),
            spans: SpanAggregate::collect(&records),
            spans_dropped: obs.tracer().dropped(),
            timeline: obs.tracer().timeline(),
        }
    }

    /// Renders Prometheus text exposition format (`# TYPE` comments,
    /// one sample per line, histograms as cumulative `le` buckets).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for m in &self.metrics {
            if m.name != last_name {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", m.name);
                last_name = m.name;
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, prom_labels(&m.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, count) in h.counts.iter().enumerate() {
                        cumulative += count;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_owned(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            m.name,
                            prom_labels(&m.labels, Some(&le))
                        );
                    }
                    let labels = prom_labels(&m.labels, None);
                    let _ = writeln!(out, "{}_sum{labels} {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count{labels} {}", m.name, h.count);
                }
            }
        }
        // Tracer-derived series. Gauges, not counters: the ring is
        // bounded, so per-stage totals can shrink as old spans drop.
        // (obs_spans_dropped_total is a real registry counter now, so
        // it already rendered in the loop above.)
        if !self.spans.is_empty() {
            let mut spans = self.spans.clone();
            spans.sort_by_key(|a| a.name);
            for (metric, pick) in [
                (
                    "obs_span_count",
                    (|a: &SpanAggregate| a.count) as fn(&SpanAggregate) -> u64,
                ),
                ("obs_span_items", |a| a.items),
                ("obs_span_total_us", |a| a.total_ns / 1_000),
                ("obs_span_max_us", |a| a.max_ns / 1_000),
            ] {
                let _ = writeln!(out, "# TYPE {metric} gauge");
                for a in &spans {
                    let _ = writeln!(out, "{metric}{{span=\"{}\"}} {}", escape(a.name), pick(a));
                }
            }
        }
        out
    }

    /// Renders the same snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": \"{}\", ", escape(m.name));
            out.push_str("\"labels\": {");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
            }
            out.push_str("}, ");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}");
                }
                MetricValue::Histogram(h) => {
                    out.push_str("\"type\": \"histogram\", \"buckets\": [");
                    let mut cumulative = 0u64;
                    for (k, count) in h.counts.iter().enumerate() {
                        cumulative += count;
                        if k > 0 {
                            out.push_str(", ");
                        }
                        match h.bounds.get(k) {
                            Some(b) => {
                                let _ = write!(out, "{{\"le\": {b}, \"count\": {cumulative}}}");
                            }
                            None => {
                                let _ =
                                    write!(out, "{{\"le\": \"+Inf\", \"count\": {cumulative}}}");
                            }
                        }
                    }
                    let _ = write!(out, "], \"sum\": {}, \"count\": {}", h.sum, h.count);
                }
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"spans\": {\n    \"dropped\": ");
        let _ = write!(out, "{}", self.spans_dropped);
        out.push_str(",\n    \"aggregates\": [");
        for (i, a) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"name\": \"{}\", \"count\": {}, \"items\": {}, \"total_us\": {}, \"max_us\": {}}}",
                escape(a.name),
                a.count,
                a.items,
                a.total_ns / 1_000,
                a.max_ns / 1_000
            );
        }
        out.push_str("\n    ]\n  }\n}\n");
        out
    }
}

fn prom_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a string for a Prometheus label value or a JSON string:
/// backslash, double quote and newline per the text-format spec, any
/// other control character as `\u00XX` (a superset JSON also accepts).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::registry::DURATION_US_BUCKETS;

    fn sample_obs() -> Obs {
        let obs = Obs::with_span_capacity(8);
        obs.registry()
            .counter("hpclog_lines_scanned_total", &[])
            .add(120);
        obs.registry()
            .counter("faultsim_events_total", &[("kind", "mmu")])
            .add(3);
        obs.registry()
            .gauge("core_tie_buffer_high_water", &[])
            .set(5);
        let h = obs
            .registry()
            .histogram("core_checkpoint_encode_us", &[], DURATION_US_BUCKETS);
        h.observe(75);
        h.observe(300_000);
        {
            let mut s = obs.tracer().span("stage_scan");
            s.add_items(120);
        }
        obs
    }

    #[test]
    fn prometheus_rendering_has_types_buckets_and_spans() {
        let text = sample_obs().report().to_prometheus();
        assert!(text.contains("# TYPE hpclog_lines_scanned_total counter"));
        assert!(text.contains("hpclog_lines_scanned_total 120"));
        assert!(text.contains("faultsim_events_total{kind=\"mmu\"} 3"));
        assert!(text.contains("# TYPE core_checkpoint_encode_us histogram"));
        assert!(text.contains("core_checkpoint_encode_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("core_checkpoint_encode_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("core_checkpoint_encode_us_count 2"));
        assert!(text.contains("obs_span_items{span=\"stage_scan\"} 120"));
        assert!(text.contains("obs_spans_dropped_total 0"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample_obs().report().to_prometheus();
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("core_checkpoint_encode_us_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "buckets must be monotone: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let json = sample_obs().report().to_json();
        crate::check::validate_json(&json).unwrap();
        assert!(json.contains("\"name\": \"hpclog_lines_scanned_total\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"le\": \"+Inf\""));
        assert!(json.contains("\"aggregates\""));
    }

    #[test]
    fn label_values_are_escaped() {
        let obs = Obs::new();
        obs.registry()
            .counter("weird_total", &[("k", "a\"b\\c\nd")])
            .inc();
        let text = obs.report().to_prometheus();
        assert!(text.contains("weird_total{k=\"a\\\"b\\\\c\\nd\"} 1"));
        crate::check::validate_json(&obs.report().to_json()).unwrap();
    }

    #[test]
    fn renderings_validate_with_the_self_check() {
        let report = sample_obs().report();
        crate::check::validate_prometheus(&report.to_prometheus()).unwrap();
        crate::check::validate_json(&report.to_json()).unwrap();
    }

    /// Reverses [`escape`] per the Prometheus text-format spec: `\\`,
    /// `\"`, `\n`, plus the `\u00XX` control-char form the writer emits.
    fn unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).unwrap();
                    out.push(char::from_u32(code).unwrap());
                }
                other => panic!("unknown escape \\{other:?}"),
            }
        }
        out
    }

    /// Pulls the quoted value of label `key` out of one sample line,
    /// escapes intact (closing quote found by skipping escape pairs).
    fn label_value_on_line<'a>(line: &'a str, key: &str) -> &'a str {
        let needle = format!("{key}=\"");
        let start = line.find(&needle).unwrap() + needle.len();
        let rest = &line[start..];
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return &rest[..i];
            }
        }
        panic!("unterminated label value in {line}");
    }

    #[test]
    fn adversarial_label_values_round_trip_through_the_text_format() {
        // Every shape the spec calls out: lone and paired backslashes,
        // embedded quotes, newlines, and the escapes themselves as
        // literal text — plus tabs/CRs, which the writer hex-escapes.
        let cases: &[(&'static str, &str)] = &[
            ("bs", "a\\b"),
            ("bs2", "trailing\\"),
            ("bs3", "\\\\double\\\\"),
            ("quote", "say \"hi\""),
            ("nl", "line1\nline2\n"),
            ("mixed", "q=\"\\\n\"; rest"),
            ("literal", "literal \\n not a newline"),
            ("ctrl", "tab\tcr\rbell\u{7}"),
            ("unicode", "µs — naïve ✓"),
        ];
        let obs = Obs::new();
        for (i, (_, value)) in cases.iter().enumerate() {
            obs.registry()
                .counter("adv_total", &[("case", &i.to_string()), ("v", value)])
                .inc();
        }
        let text = obs.report().to_prometheus();
        // The whole exposition still validates (unique keys, parseable
        // label blocks, finite values) despite the hostile labels.
        crate::check::validate_prometheus(&text).unwrap();
        for (i, (name, value)) in cases.iter().enumerate() {
            let line = text
                .lines()
                .find(|l| l.contains(&format!("case=\"{i}\"")))
                .unwrap_or_else(|| panic!("case {name}: no sample line"));
            assert!(
                !line.contains('\r'),
                "case {name}: escapes must keep the sample on one line"
            );
            assert_eq!(
                unescape(label_value_on_line(line, "v")),
                **value,
                "case {name}: label value must round-trip"
            );
        }
        // The JSON rendering of the same registry also stays valid.
        crate::check::validate_json(&obs.report().to_json()).unwrap();
    }

    #[test]
    fn adversarial_span_names_round_trip_in_span_series() {
        let obs = Obs::new();
        {
            // Span names are 'static, but nothing stops a hostile one.
            let _s = obs.tracer().span("scan \"phase\\1\"\nend");
        }
        let text = obs.report().to_prometheus();
        crate::check::validate_prometheus(&text).unwrap();
        let line = text
            .lines()
            .find(|l| l.starts_with("obs_span_count"))
            .unwrap();
        assert_eq!(
            unescape(label_value_on_line(line, "span")),
            "scan \"phase\\1\"\nend"
        );
    }
}
