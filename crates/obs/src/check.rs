//! Self-checks for the exposition formats, used by the `obs_check`
//! smoke gate and the crate's own tests.
//!
//! [`validate_prometheus`] enforces what the smoke leg promises: every
//! line parses, `(name, labels)` sample keys are unique, no value is
//! NaN or infinite, counters are non-negative, and histogram buckets
//! are cumulative (monotone in `le`, `+Inf` equal to `_count`).
//! [`validate_json`] is a small recursive-descent JSON syntax checker.

use std::collections::{BTreeMap, BTreeSet};

/// What a successfully validated Prometheus file contained.
#[derive(Debug, Clone, Default)]
pub struct PromSummary {
    /// Number of sample lines.
    pub samples: usize,
    /// Distinct metric names seen (base names; `_bucket`/`_sum`/`_count`
    /// suffixes are kept as written).
    pub names: BTreeSet<String>,
}

impl PromSummary {
    /// Whether any metric name starts with `prefix`.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{labels} value` into parts, validating label syntax.
/// Returns `(name, sorted-label-string, le-label, value)`.
fn parse_sample(line: &str) -> Result<(String, String, Option<String>, f64), String> {
    let (ident, value_str) = match line.find('}') {
        Some(close) => {
            let rest = line
                .get(close + 1..)
                .ok_or_else(|| format!("truncated sample: {line}"))?;
            (line.get(..close + 1).unwrap_or(""), rest.trim())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            (name, it.next().unwrap_or("").trim())
        }
    };
    let (name, label_block) = match ident.find('{') {
        Some(open) => {
            let inner = ident
                .get(open + 1..ident.len().saturating_sub(1))
                .ok_or_else(|| format!("bad label block: {line}"))?;
            (ident.get(..open).unwrap_or(""), Some(inner))
        }
        None => (ident, None),
    };
    if !is_name(name) {
        return Err(format!("bad metric name {name:?} in: {line}"));
    }
    let mut labels: Vec<(String, String)> = Vec::new();
    if let Some(block) = label_block {
        let mut rest = block.trim();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| format!("label without '=' in: {line}"))?;
            let key = rest.get(..eq).unwrap_or("").trim().to_owned();
            if !is_name(&key) {
                return Err(format!("bad label name {key:?} in: {line}"));
            }
            let after = rest.get(eq + 1..).unwrap_or("").trim_start();
            if !after.starts_with('"') {
                return Err(format!("unquoted label value in: {line}"));
            }
            // Scan the quoted value, honouring backslash escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in after.char_indices().skip(1) {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| format!("unterminated label value in: {line}"))?;
            let value = after.get(1..end).unwrap_or("").to_owned();
            labels.push((key, value));
            rest = after.get(end + 1..).unwrap_or("").trim_start();
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        }
    }
    labels.sort();
    let le = labels
        .iter()
        .find(|(k, _)| k == "le")
        .map(|(_, v)| v.clone());
    let label_key = labels
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect::<Vec<_>>()
        .join(",");
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("bad sample value {value_str:?} in: {line}"))?;
    Ok((name.to_owned(), label_key, le, value))
}

/// Validates a Prometheus text-format exposition. See module docs for
/// the exact guarantees.
pub fn validate_prometheus(text: &str) -> Result<PromSummary, String> {
    let mut summary = PromSummary::default();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    // (base name, labels-minus-le) -> cumulative bucket trail
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut it = comment.split_whitespace();
            if it.next() == Some("TYPE") {
                let name = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
                let kind = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("unknown metric type {kind:?} in: {line}"));
                }
                if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return Err(format!("duplicate TYPE for {name}"));
                }
            }
            continue;
        }
        let (name, label_key, le, value) = parse_sample(line)?;
        if !value.is_finite() {
            return Err(format!("non-finite sample value in: {line}"));
        }
        if !seen.insert((name.clone(), label_key.clone())) {
            return Err(format!("duplicate sample {name}{{{label_key}}}"));
        }
        summary.samples += 1;
        summary.names.insert(name.clone());

        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(&name)
            .to_owned();
        let declared = types.get(&name).or_else(|| types.get(&base));
        let is_counter = declared.map(String::as_str) == Some("counter")
            || (declared.is_none() && name.ends_with("_total"));
        if is_counter && value < 0.0 {
            return Err(format!("negative counter in: {line}"));
        }
        if types.get(&base).map(String::as_str) == Some("histogram") {
            if let Some(le) = le {
                let le_value = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .map_err(|_| format!("bad le value {le:?} in: {line}"))?
                };
                let key_no_le = label_key
                    .split(',')
                    .filter(|part| !part.starts_with("le="))
                    .collect::<Vec<_>>()
                    .join(",");
                buckets
                    .entry((base, key_no_le))
                    .or_default()
                    .push((le_value, value));
            } else if name.ends_with("_count") {
                let key = label_key.clone();
                counts.insert((base, key), value);
            }
        }
    }

    for ((base, labels), mut trail) in buckets {
        trail.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut last = -1.0f64;
        for (le, cumulative) in &trail {
            if *cumulative < last {
                return Err(format!(
                    "histogram {base}{{{labels}}} bucket le={le} not monotone"
                ));
            }
            last = *cumulative;
        }
        match trail.last() {
            Some((le, top)) if le.is_infinite() => {
                if let Some(count) = counts.get(&(base.clone(), labels.clone())) {
                    if count != top {
                        return Err(format!(
                            "histogram {base}{{{labels}}}: +Inf bucket {top} != _count {count}"
                        ));
                    }
                }
            }
            _ => return Err(format!("histogram {base}{{{labels}}} missing +Inf bucket")),
        }
    }
    if summary.samples == 0 {
        return Err("no samples in exposition".to_owned());
    }
    Ok(summary)
}

/// Validates JSON syntax (objects, arrays, strings with escapes,
/// numbers, literals); rejects trailing garbage.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.pos += 1,
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                c if c < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.pos))
                }
                _ => {}
            }
        }
        Err("unterminated string".to_owned())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# TYPE a_total counter
a_total 3
a_total{kind=\"mmu\"} 1
# TYPE h histogram
h_bucket{le=\"10\"} 1
h_bucket{le=\"+Inf\"} 2
h_sum 12
h_count 2
# TYPE g gauge
g 5
";
        let summary = validate_prometheus(text).unwrap();
        assert_eq!(summary.samples, 7);
        assert!(summary.has_prefix("a_"));
        assert!(!summary.has_prefix("zzz"));
    }

    #[test]
    fn rejects_duplicates_nan_negative_counters_and_broken_buckets() {
        assert!(validate_prometheus("a_total 1\na_total 2\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(validate_prometheus("a_total NaN\n")
            .unwrap_err()
            .contains("non-finite"));
        assert!(validate_prometheus("a_total -1\n")
            .unwrap_err()
            .contains("negative counter"));
        let shrinking = "\
# TYPE h histogram
h_bucket{le=\"10\"} 5
h_bucket{le=\"+Inf\"} 3
h_count 3
";
        assert!(validate_prometheus(shrinking)
            .unwrap_err()
            .contains("not monotone"));
        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"10\"} 1
h_count 1
";
        assert!(validate_prometheus(no_inf)
            .unwrap_err()
            .contains("missing +Inf"));
        let inconsistent = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 2
h_count 3
";
        assert!(validate_prometheus(inconsistent)
            .unwrap_err()
            .contains("!= _count"));
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e2, \"x\\n\", true, null], \"b\": {}}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{\"a\": 1,}").is_err());
        assert!(validate_json("{'a': 1}").is_err());
        assert!(validate_json("{\"a\": 01e}").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{\"bad\\q\": 1}").is_err());
    }
}
