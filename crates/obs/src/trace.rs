//! Request-scoped tracing: per-request trace ids, child stage spans,
//! and a bounded flight recorder.
//!
//! The process-global [`crate::span`] ring answers "where does this
//! *process* spend its time"; this module answers "where did *that
//! request* go". A [`FlightRecorder`] mints one [`Trace`] per accepted
//! request; pipeline stages append [`StageRecord`]s (either through the
//! RAII [`StageGuard`] or with explicit instants via
//! [`Trace::record_span`]); when the response has fully drained the
//! server seals the trace into a [`TraceRecord`] and admits it back
//! into the recorder.
//!
//! # Retention policy
//!
//! The recorder is bounded three ways, so a hot server cannot grow it:
//!
//! * **Slowest-N per rolling window** — completed traces are bucketed
//!   by `started_unix_ms / window_ms`; the recorder keeps the current
//!   and the previous window, each truncated to the `capacity` slowest
//!   traces. Retention is a pure function of the record timestamps, so
//!   tests can drive it with an injected clock.
//! * **All error traces** — any trace sealed with status >= 400 also
//!   lands in a dedicated FIFO ring of `capacity` records, regardless
//!   of how fast it was.
//! * **Stage cap per trace** — a single trace holds at most
//!   [`Trace::MAX_STAGES`] stages; extra stages are counted in
//!   [`TraceRecord::stages_dropped`] instead of allocated.
//!
//! Everything here is `std`-only and panic-free: lock poisoning is
//! absorbed, ids are plain `u64`s rendered as 16 hex digits.

use crate::expose::escape;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Milliseconds since the unix epoch, for stamping trace starts. The
/// recorder itself never calls this — callers inject timestamps so
/// retention stays deterministic under test.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Parses a 16-hex-digit (or shorter) trace id as rendered by
/// [`Trace::id_hex`]. Returns `None` on empty, overlong or non-hex
/// input — never panics.
pub fn parse_hex_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// One completed stage inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name (static, interned by the call site).
    pub name: &'static str,
    /// Free-form low-cardinality detail (`shard=3`, `kind=79`); empty
    /// when the stage needs none.
    pub detail: String,
    /// Start offset from the trace's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
    /// Items processed inside the stage (caller-reported).
    pub items: u64,
}

#[derive(Debug, Default)]
struct StageLog {
    stages: Vec<StageRecord>,
    dropped: u64,
}

/// An in-flight request trace: an id, an epoch instant, and the stages
/// recorded so far. Shared as `Arc<Trace>` so scatter jobs on the scan
/// pool can record stages from worker threads.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    epoch: Instant,
    started_unix_ms: u64,
    stages: Mutex<StageLog>,
}

impl Trace {
    /// Hard cap on stages per trace; beyond it stages are counted, not
    /// stored, so one pathological request cannot balloon the recorder.
    pub const MAX_STAGES: usize = 128;

    fn new(id: u64, epoch: Instant, started_unix_ms: u64) -> Self {
        Trace {
            id,
            epoch,
            started_unix_ms,
            // Pre-sized for the full pipeline (queue wait, parse, route,
            // cache lookup, scatter scans, merge, render, write) so the
            // per-request path allocates once, not on every push.
            stages: Mutex::new(StageLog {
                stages: Vec::with_capacity(12),
                dropped: 0,
            }),
        }
    }

    /// The trace id minted by the recorder.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id as 16 lowercase hex digits — the `X-Trace-Id` wire form.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// The instant all stage offsets are measured from (the moment the
    /// request's first byte arrived).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Wall-clock start, milliseconds since the unix epoch.
    pub fn started_unix_ms(&self) -> u64 {
        self.started_unix_ms
    }

    fn lock(&self) -> MutexGuard<'_, StageLog> {
        self.stages.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, record: StageRecord) {
        let mut log = self.lock();
        if log.stages.len() < Self::MAX_STAGES {
            log.stages.push(record);
        } else {
            log.dropped += 1;
        }
    }

    /// Opens an RAII stage guard; dropping it records the stage. The
    /// guard owns an `Arc` clone, so it can outlive the caller's borrow
    /// (scatter closures on the scan pool need exactly that).
    pub fn stage(self: &Arc<Self>, name: &'static str) -> StageGuard {
        StageGuard {
            trace: Arc::clone(self),
            name,
            detail: String::new(),
            start: Instant::now(),
            items: 0,
        }
    }

    /// Records a stage from explicit instants — for stages whose
    /// boundaries the caller already timed (parse, queue wait, write).
    pub fn record_span(
        &self,
        name: &'static str,
        detail: &str,
        start: Instant,
        end: Instant,
        items: u64,
    ) {
        let start_ns = saturating_ns(start.saturating_duration_since(self.epoch).as_nanos());
        let duration_ns = saturating_ns(end.saturating_duration_since(start).as_nanos());
        self.push(StageRecord {
            name,
            detail: detail.to_owned(),
            start_ns,
            duration_ns,
            items,
        });
    }

    /// Seals the trace into an immutable record. The stages recorded so
    /// far are moved out (a trace seals once; this runs per request on
    /// the event loop, so it must not clone every stage) and sorted by
    /// start offset — scatter stages land in completion order otherwise.
    pub fn seal(&self, endpoint: impl Into<String>, status: u16, total_ns: u64) -> TraceRecord {
        let mut log = self.lock();
        let mut stages = std::mem::take(&mut log.stages);
        let dropped = log.dropped;
        drop(log);
        stages.sort_by_key(|s| (s.start_ns, s.duration_ns));
        TraceRecord {
            id: self.id,
            endpoint: endpoint.into(),
            status,
            started_unix_ms: self.started_unix_ms,
            total_ns,
            stages,
            stages_dropped: dropped,
        }
    }
}

/// RAII guard for an in-flight stage; records into its trace on drop.
#[derive(Debug)]
pub struct StageGuard {
    trace: Arc<Trace>,
    name: &'static str,
    detail: String,
    start: Instant,
    items: u64,
}

impl StageGuard {
    /// Sets the stage's detail string (`shard=3`, `kind=79`).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// Adds to the stage's item count.
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        self.trace.record_span(
            self.name,
            &self.detail,
            self.start,
            Instant::now(),
            self.items,
        );
    }
}

/// A completed, sealed trace as retained by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The minted trace id.
    pub id: u64,
    /// `METHOD /path` of the traced request.
    pub endpoint: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock start, milliseconds since the unix epoch.
    pub started_unix_ms: u64,
    /// First byte in to last byte flushed, in nanoseconds.
    pub total_ns: u64,
    /// Stages sorted by start offset.
    pub stages: Vec<StageRecord>,
    /// Stages discarded because the trace hit [`Trace::MAX_STAGES`].
    pub stages_dropped: u64,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    /// Window index (`started_unix_ms / window_ms`) of `current`.
    window: u64,
    /// Slowest-N of the current window, sorted by `total_ns` descending.
    current: Vec<TraceRecord>,
    /// Slowest-N of the previous window.
    previous: Vec<TraceRecord>,
    /// FIFO of error traces (status >= 400), newest at the back.
    errors: VecDeque<TraceRecord>,
    admitted: u64,
    evicted: u64,
}

/// Bounded retention for sealed traces; see the module docs for the
/// policy. Also the mint for trace ids.
#[derive(Debug)]
pub struct FlightRecorder {
    next_id: AtomicU64,
    window_ms: u64,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Default rolling-window width: one minute.
    pub const DEFAULT_WINDOW_MS: u64 = 60_000;

    /// A recorder keeping the `capacity` slowest traces per rolling
    /// one-minute window (plus up to `capacity` error traces).
    pub fn new(capacity: usize) -> Self {
        Self::with_window_ms(capacity, Self::DEFAULT_WINDOW_MS)
    }

    /// As [`FlightRecorder::new`] with an explicit window width.
    pub fn with_window_ms(capacity: usize, window_ms: u64) -> Self {
        FlightRecorder {
            next_id: AtomicU64::new(1),
            window_ms: window_ms.max(1),
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                window: 0,
                current: Vec::new(),
                previous: Vec::new(),
                errors: VecDeque::new(),
                admitted: 0,
                evicted: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mints a fresh trace. `epoch` is the instant stage offsets are
    /// measured from; `started_unix_ms` stamps the wall clock (callers
    /// inject it — see [`unix_ms_now`]).
    pub fn begin(&self, epoch: Instant, started_unix_ms: u64) -> Arc<Trace> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Arc::new(Trace::new(id, epoch, started_unix_ms))
    }

    /// Admits a sealed trace, applying the retention policy. Pure in
    /// the record's own timestamps: no clock is read here.
    pub fn admit(&self, record: TraceRecord) {
        let idx = record.started_unix_ms / self.window_ms;
        let mut g = self.lock();
        g.admitted += 1;
        if idx > g.window {
            let expired = if idx == g.window + 1 {
                let rotated = std::mem::take(&mut g.current);
                std::mem::replace(&mut g.previous, rotated)
            } else {
                g.current.clear();
                std::mem::take(&mut g.previous)
            };
            g.evicted += expired.len() as u64;
            g.window = idx;
        }
        if record.status >= 400 {
            if g.errors.len() >= g.capacity {
                g.errors.pop_front();
                g.evicted += 1;
            }
            g.errors.push_back(record.clone());
        }
        // Slowest-N insert. This runs once per request on the event
        // loop, so the common case — a full window and a record faster
        // than everything kept — must not pay the sorted insert's
        // memmove; it is rejected on a single comparison instead.
        if g.current.len() >= g.capacity
            && g.current
                .last()
                .is_none_or(|slowest| record.total_ns <= slowest.total_ns)
        {
            g.evicted += 1;
            return;
        }
        let pos = g.current.partition_point(|r| r.total_ns >= record.total_ns);
        g.current.insert(pos, record);
        if g.current.len() > g.capacity {
            g.current.pop();
            g.evicted += 1;
        }
    }

    /// Finds a retained trace by id.
    pub fn find(&self, id: u64) -> Option<TraceRecord> {
        let g = self.lock();
        g.current
            .iter()
            .chain(g.previous.iter())
            .chain(g.errors.iter())
            .find(|r| r.id == id)
            .cloned()
    }

    /// Every retained trace, deduplicated by id (a slow error trace
    /// lives in both pools), sorted slowest first, id as tiebreak.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let g = self.lock();
        let mut out: Vec<TraceRecord> = Vec::new();
        for r in g
            .current
            .iter()
            .chain(g.previous.iter())
            .chain(g.errors.iter())
        {
            if !out.iter().any(|have| have.id == r.id) {
                out.push(r.clone());
            }
        }
        drop(g);
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
        out
    }

    /// Traces admitted over the recorder's lifetime.
    pub fn admitted(&self) -> u64 {
        self.lock().admitted
    }

    /// Traces discarded by the retention policy (window expiry or
    /// capacity truncation).
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }
}

/// Renders trace records as the `/debug/traces` JSON document. Times
/// are microseconds; ids are the 16-hex-digit wire form.
pub fn render_traces_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    let _ = write!(out, "{}", records.len());
    out.push_str(",\n  \"traces\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{:016x}\", \"endpoint\": \"{}\", \"status\": {}, \
             \"started_unix_ms\": {}, \"total_us\": {}, \"stages_dropped\": {}, \"stages\": [",
            r.id,
            escape(&r.endpoint),
            r.status,
            r.started_unix_ms,
            r.total_ns / 1_000,
            r.stages_dropped,
        );
        for (j, s) in r.stages.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\n      {{\"name\": \"{}\", \"detail\": \"{}\", \"start_us\": {}, \
                 \"duration_us\": {}, \"items\": {}}}",
                escape(s.name),
                escape(&s.detail),
                s.start_ns / 1_000,
                s.duration_ns / 1_000,
                s.items,
            );
        }
        if !r.stages.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn saturating_ns(n: u128) -> u64 {
    n.min(u64::MAX as u128) as u64
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn record(id: u64, ms: u64, total_ns: u64, status: u16) -> TraceRecord {
        TraceRecord {
            id,
            endpoint: "GET /errors".to_owned(),
            status,
            started_unix_ms: ms,
            total_ns,
            stages: Vec::new(),
            stages_dropped: 0,
        }
    }

    #[test]
    fn stage_guards_record_ordered_offsets() {
        let rec = FlightRecorder::new(4);
        let t = rec.begin(Instant::now(), 1_000);
        {
            let mut g = t.stage("route");
            g.set_detail("path=/errors");
            g.add_items(3);
        }
        {
            let _g = t.stage("render");
        }
        let sealed = t.seal("GET /errors", 200, 5_000);
        assert_eq!(sealed.stages.len(), 2);
        assert_eq!(sealed.stages[0].name, "route");
        assert_eq!(sealed.stages[0].detail, "path=/errors");
        assert_eq!(sealed.stages[0].items, 3);
        assert_eq!(sealed.stages[1].name, "render");
        assert!(sealed.stages[0].start_ns <= sealed.stages[1].start_ns);
    }

    #[test]
    fn explicit_spans_measure_from_the_epoch() {
        let rec = FlightRecorder::new(4);
        let epoch = Instant::now();
        let t = rec.begin(epoch, 1_000);
        let later = epoch + std::time::Duration::from_millis(2);
        t.record_span("parse", "", epoch, later, 7);
        let sealed = t.seal("GET /x", 200, 0);
        assert_eq!(sealed.stages[0].start_ns, 0);
        assert!(sealed.stages[0].duration_ns >= 2_000_000);
        assert_eq!(sealed.stages[0].items, 7);
    }

    #[test]
    fn ids_are_unique_and_hex_round_trips() {
        let rec = FlightRecorder::new(4);
        let a = rec.begin(Instant::now(), 0);
        let b = rec.begin(Instant::now(), 0);
        assert_ne!(a.id(), b.id());
        assert_eq!(parse_hex_id(&a.id_hex()), Some(a.id()));
        assert_eq!(parse_hex_id(""), None);
        assert_eq!(parse_hex_id("zz"), None);
        assert_eq!(parse_hex_id("00000000000000000"), None, "17 digits");
    }

    #[test]
    fn retains_the_slowest_n_in_a_window() {
        let rec = FlightRecorder::with_window_ms(2, 1_000);
        for (id, total) in [(1u64, 50u64), (2, 400), (3, 100), (4, 300)] {
            rec.admit(record(id, 10, total, 200));
        }
        let snap = rec.snapshot();
        let ids: Vec<u64> = snap.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 4], "slowest two survive, sorted desc");
        assert_eq!(rec.admitted(), 4);
        assert_eq!(rec.evicted(), 2);
        assert!(rec.find(2).is_some());
        assert!(rec.find(1).is_none());
    }

    #[test]
    fn window_rotation_keeps_previous_and_expires_older() {
        let rec = FlightRecorder::with_window_ms(2, 1_000);
        rec.admit(record(1, 500, 100, 200)); // window 0
        rec.admit(record(2, 1_500, 200, 200)); // window 1: previous = {1}
        assert!(rec.find(1).is_some(), "previous window is retained");
        rec.admit(record(3, 2_500, 300, 200)); // window 2: previous = {2}
        assert!(rec.find(1).is_none(), "two windows back has expired");
        assert!(rec.find(2).is_some());
        rec.admit(record(4, 9_500, 400, 200)); // jump: both cleared
        assert!(rec.find(2).is_none());
        assert!(rec.find(3).is_none());
        assert!(rec.find(4).is_some());
    }

    #[test]
    fn error_traces_survive_even_when_fast() {
        let rec = FlightRecorder::with_window_ms(2, 1_000);
        rec.admit(record(1, 10, 900, 200));
        rec.admit(record(2, 10, 800, 200));
        rec.admit(record(3, 10, 1, 404)); // fast error, pushed out of slowest-2
        let snap = rec.snapshot();
        assert!(snap.iter().any(|r| r.id == 3), "error trace retained");
        assert_eq!(rec.find(3).unwrap().status, 404);
        // A slow error is not duplicated in the snapshot.
        rec.admit(record(4, 10, 5_000, 500));
        let snap = rec.snapshot();
        assert_eq!(snap.iter().filter(|r| r.id == 4).count(), 1);
        assert_eq!(snap[0].id, 4, "slowest first");
    }

    #[test]
    fn stage_overflow_is_counted_not_stored() {
        let rec = FlightRecorder::new(1);
        let t = rec.begin(Instant::now(), 0);
        let now = Instant::now();
        for _ in 0..Trace::MAX_STAGES + 5 {
            t.record_span("s", "", now, now, 0);
        }
        let sealed = t.seal("GET /x", 200, 0);
        assert_eq!(sealed.stages.len(), Trace::MAX_STAGES);
        assert_eq!(sealed.stages_dropped, 5);
    }

    #[test]
    fn json_rendering_validates_and_escapes() {
        let rec = FlightRecorder::new(2);
        let t = rec.begin(Instant::now(), 42);
        {
            let mut g = t.stage("route");
            g.set_detail("q=\"a\\b\"");
        }
        rec.admit(t.seal("GET /errors?host=\"x\"", 200, 1_234_000));
        let json = render_traces_json(&rec.snapshot());
        crate::check::validate_json(&json).unwrap();
        assert!(json.contains(&t.id_hex()));
        assert!(json.contains("\"total_us\": 1234"));
        assert!(json.contains("\\\"a\\\\b\\\""));
        let empty = render_traces_json(&[]);
        crate::check::validate_json(&empty).unwrap();
        assert!(empty.contains("\"count\": 0"));
    }
}
