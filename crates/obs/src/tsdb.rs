//! A fixed-capacity ring time-series store over registry snapshots.
//!
//! `/metrics` is a point-in-time exposition; [`Tsdb`] is its memory.
//! [`Tsdb::scrape`] folds a [`Registry snapshot`](crate::Registry::snapshot)
//! into per-series rings — counters and gauges keep their value,
//! histograms explode into `<name>_count` and `<name>_sum` series — at
//! an *injected* timestamp: the store never reads a clock, so scrape
//! cadence is deterministic under test and the serving layer owns the
//! schedule. [`Tsdb::query`] serves `[from, to)` ranges (the same
//! half-open convention as the rollup layer) with optional step-bucket
//! downsampling: each `step`-wide bucket reports its last sample,
//! stamped at the bucket start.
//!
//! Bounds: at most `points_per_series` points per series (oldest
//! evicted first) and at most `max_series` distinct series (new series
//! beyond the cap are counted, then dropped). Scrapes must be strictly
//! monotonic in time; a scrape at or before the previous timestamp is
//! ignored, so restarts of a driving thread cannot corrupt history.

use crate::expose::escape;
use crate::registry::{MetricSnapshot, MetricValue};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

/// A series identity: metric name plus owned, sorted label pairs.
pub type SeriesKey = (String, Vec<(String, String)>);

/// Parameters of one `/metrics/history` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryQuery {
    /// Exact series name (`servd_requests_total`,
    /// `servd_request_duration_us_count`, ...). All label variants of
    /// the name are returned.
    pub name: String,
    /// Inclusive lower time bound, seconds.
    pub from: u64,
    /// Exclusive upper time bound, seconds.
    pub to: u64,
    /// Downsampling bucket width in seconds; `0` returns raw points.
    pub step: u64,
}

/// One series in a query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySeries {
    /// The series' label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// `(timestamp_secs, value)` points, time-ascending.
    pub points: Vec<(u64, u64)>,
}

/// The result of a [`Tsdb::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryResult {
    /// Echo of the queried name.
    pub name: String,
    /// Echo of the query bounds and step.
    pub from: u64,
    /// Exclusive upper bound, echoed.
    pub to: u64,
    /// Bucket width, echoed (`0` = raw).
    pub step: u64,
    /// Total scrapes the store has absorbed (query provenance).
    pub scrapes: u64,
    /// Matching series with at least one point in range, in label order.
    pub series: Vec<HistorySeries>,
}

/// Occupancy and loss counters, for gauges and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TsdbStats {
    /// Distinct series currently stored.
    pub series: usize,
    /// Points currently stored across all series.
    pub points: usize,
    /// Scrapes absorbed (monotonic).
    pub scrapes: u64,
    /// Points evicted from full rings.
    pub points_evicted: u64,
    /// New series dropped because the series cap was hit.
    pub series_dropped: u64,
}

#[derive(Debug)]
struct Inner {
    points_per_series: usize,
    max_series: usize,
    series: BTreeMap<SeriesKey, VecDeque<(u64, u64)>>,
    last_t: Option<u64>,
    scrapes: u64,
    points_evicted: u64,
    series_dropped: u64,
}

/// The ring time-series store. See the module docs for semantics.
#[derive(Debug)]
pub struct Tsdb {
    inner: Mutex<Inner>,
}

impl Tsdb {
    /// Default per-series ring capacity (~17 minutes at 1 s cadence).
    pub const DEFAULT_POINTS_PER_SERIES: usize = 1024;
    /// Default cap on distinct series.
    pub const DEFAULT_MAX_SERIES: usize = 4096;

    /// A store keeping `points_per_series` points per series and the
    /// default series cap.
    pub fn new(points_per_series: usize) -> Self {
        Self::with_limits(points_per_series, Self::DEFAULT_MAX_SERIES)
    }

    /// As [`Tsdb::new`] with an explicit series cap.
    pub fn with_limits(points_per_series: usize, max_series: usize) -> Self {
        Tsdb {
            inner: Mutex::new(Inner {
                points_per_series: points_per_series.max(1),
                max_series: max_series.max(1),
                series: BTreeMap::new(),
                last_t: None,
                scrapes: 0,
                points_evicted: 0,
                series_dropped: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Absorbs one registry snapshot at time `t_secs`. Returns `false`
    /// (and stores nothing) if `t_secs` does not advance past the
    /// previous scrape.
    pub fn scrape(&self, t_secs: u64, snapshot: &[MetricSnapshot]) -> bool {
        let mut g = self.lock();
        if g.last_t.is_some_and(|last| t_secs <= last) {
            return false;
        }
        g.last_t = Some(t_secs);
        g.scrapes += 1;
        for m in snapshot {
            let labels: Vec<(String, String)> = m
                .labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect();
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    push_point(&mut g, (m.name.to_owned(), labels), t_secs, *v);
                }
                MetricValue::Histogram(h) => {
                    push_point(
                        &mut g,
                        (format!("{}_count", m.name), labels.clone()),
                        t_secs,
                        h.count,
                    );
                    push_point(&mut g, (format!("{}_sum", m.name), labels), t_secs, h.sum);
                }
            }
        }
        true
    }

    /// Serves a `[from, to)` range over every series named
    /// `query.name`, downsampled when `query.step > 0`.
    pub fn query(&self, query: &HistoryQuery) -> HistoryResult {
        let g = self.lock();
        let mut series = Vec::new();
        for ((name, labels), ring) in g.series.iter() {
            if name != &query.name {
                continue;
            }
            let raw: Vec<(u64, u64)> = ring
                .iter()
                .copied()
                .filter(|&(t, _)| t >= query.from && t < query.to)
                .collect();
            let points = downsample(&raw, query.from, query.step);
            if !points.is_empty() {
                series.push(HistorySeries {
                    labels: labels.clone(),
                    points,
                });
            }
        }
        HistoryResult {
            name: query.name.clone(),
            from: query.from,
            to: query.to,
            step: query.step,
            scrapes: g.scrapes,
            series,
        }
    }

    /// [`Tsdb::query`] rendered as the `/metrics/history` JSON body.
    pub fn query_json(&self, query: &HistoryQuery) -> String {
        render_history_json(&self.query(query))
    }

    /// Current occupancy and loss counters.
    pub fn stats(&self) -> TsdbStats {
        let g = self.lock();
        TsdbStats {
            series: g.series.len(),
            points: g.series.values().map(VecDeque::len).sum(),
            scrapes: g.scrapes,
            points_evicted: g.points_evicted,
            series_dropped: g.series_dropped,
        }
    }
}

fn push_point(g: &mut Inner, key: SeriesKey, t: u64, v: u64) {
    if !g.series.contains_key(&key) && g.series.len() >= g.max_series {
        g.series_dropped += 1;
        return;
    }
    let cap = g.points_per_series;
    let ring = g.series.entry(key).or_default();
    ring.push_back((t, v));
    if ring.len() > cap {
        ring.pop_front();
        g.points_evicted += 1;
    }
}

/// Step-bucket downsampling: each `step`-wide bucket starting at
/// `from` reports its last sample, stamped at the bucket start. With
/// `step == 0` the raw points pass through.
fn downsample(raw: &[(u64, u64)], from: u64, step: u64) -> Vec<(u64, u64)> {
    if step == 0 {
        return raw.to_vec();
    }
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &(t, v) in raw {
        let bucket = from + ((t - from) / step) * step;
        match out.last_mut() {
            Some(last) if last.0 == bucket => last.1 = v,
            _ => out.push((bucket, v)),
        }
    }
    out
}

/// Renders a [`HistoryResult`] as the `/metrics/history` JSON body.
pub fn render_history_json(result: &HistoryResult) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\n  \"name\": \"{}\", \"from\": {}, \"to\": {}, \"step\": {}, \"scrapes\": {},",
        escape(&result.name),
        result.from,
        result.to,
        result.step,
        result.scrapes,
    );
    out.push_str("\n  \"series\": [");
    for (i, s) in result.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"labels\": {");
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
        }
        out.push_str("}, \"points\": [");
        for (j, (t, v)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{t}, {v}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::registry::DURATION_US_BUCKETS;
    use crate::Obs;

    fn query(name: &str, from: u64, to: u64, step: u64) -> HistoryQuery {
        HistoryQuery {
            name: name.to_owned(),
            from,
            to,
            step,
        }
    }

    #[test]
    fn counters_and_gauges_accumulate_history() {
        let obs = Obs::new();
        let c = obs.registry().counter("req_total", &[("ep", "errors")]);
        let tsdb = Tsdb::new(16);
        for t in 1..=5u64 {
            c.add(10);
            assert!(tsdb.scrape(t, &obs.registry().snapshot()));
        }
        let r = tsdb.query(&query("req_total", 0, u64::MAX, 0));
        assert_eq!(r.series.len(), 1);
        assert_eq!(
            r.series[0].labels,
            vec![("ep".to_owned(), "errors".to_owned())]
        );
        assert_eq!(
            r.series[0].points,
            vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]
        );
        assert_eq!(r.scrapes, 5);
    }

    #[test]
    fn histograms_explode_into_count_and_sum_series() {
        let obs = Obs::new();
        let h = obs.registry().histogram("lat_us", &[], DURATION_US_BUCKETS);
        let tsdb = Tsdb::new(16);
        h.observe(100);
        h.observe(200);
        tsdb.scrape(1, &obs.registry().snapshot());
        assert_eq!(
            tsdb.query(&query("lat_us_count", 0, u64::MAX, 0)).series[0].points,
            vec![(1, 2)]
        );
        assert_eq!(
            tsdb.query(&query("lat_us_sum", 0, u64::MAX, 0)).series[0].points,
            vec![(1, 300)]
        );
        assert!(tsdb
            .query(&query("lat_us", 0, u64::MAX, 0))
            .series
            .is_empty());
    }

    /// A registry without the `obs_spans_dropped_total` counter an
    /// [`Obs`] auto-registers, so capacity expectations stay exact.
    fn bare_registry() -> crate::Registry {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        crate::registry::Registry::new(Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn rings_evict_oldest_and_count_it() {
        let reg = bare_registry();
        let g = reg.gauge("depth", &[]);
        let tsdb = Tsdb::new(3);
        for t in 1..=5u64 {
            g.set(t);
            tsdb.scrape(t, &reg.snapshot());
        }
        let r = tsdb.query(&query("depth", 0, u64::MAX, 0));
        assert_eq!(r.series[0].points, vec![(3, 3), (4, 4), (5, 5)]);
        assert_eq!(tsdb.stats().points_evicted, 2);
    }

    #[test]
    fn non_monotonic_scrapes_are_ignored() {
        let obs = Obs::new();
        obs.registry().counter("c_total", &[]).inc();
        let tsdb = Tsdb::new(8);
        assert!(tsdb.scrape(10, &obs.registry().snapshot()));
        assert!(!tsdb.scrape(10, &obs.registry().snapshot()));
        assert!(!tsdb.scrape(9, &obs.registry().snapshot()));
        assert!(tsdb.scrape(11, &obs.registry().snapshot()));
        assert_eq!(tsdb.stats().scrapes, 2);
        let r = tsdb.query(&query("c_total", 0, u64::MAX, 0));
        assert_eq!(r.series[0].points.len(), 2);
    }

    #[test]
    fn range_is_half_open_and_step_keeps_last_per_bucket() {
        let obs = Obs::new();
        let g = obs.registry().gauge("v", &[]);
        let tsdb = Tsdb::new(64);
        for t in 0..20u64 {
            g.set(t * 100);
            tsdb.scrape(t + 1, &obs.registry().snapshot());
        }
        // [from, to): to=11 excludes t=11.
        let raw = tsdb.query(&query("v", 5, 11, 0));
        assert_eq!(
            raw.series[0].points.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![5, 6, 7, 8, 9, 10]
        );
        // step=5 from=5: buckets [5,10) and [10,15) clipped at to=11;
        // each reports its last sample at the bucket start.
        let ds = tsdb.query(&query("v", 5, 11, 5));
        assert_eq!(ds.series[0].points, vec![(5, 800), (10, 900)]);
    }

    #[test]
    fn series_cap_drops_new_series_and_counts() {
        let reg = bare_registry();
        reg.counter("a_total", &[]).inc();
        reg.counter("b_total", &[]).inc();
        reg.counter("c_total", &[]).inc();
        let tsdb = Tsdb::with_limits(8, 2);
        tsdb.scrape(1, &reg.snapshot());
        assert_eq!(tsdb.stats().series, 2);
        assert_eq!(tsdb.stats().series_dropped, 1);
        // Existing series keep accumulating under the cap.
        tsdb.scrape(2, &reg.snapshot());
        assert_eq!(tsdb.stats().series, 2);
        assert_eq!(tsdb.stats().series_dropped, 2);
    }

    #[test]
    fn json_rendering_validates() {
        let obs = Obs::new();
        obs.registry().counter("j_total", &[("k", "a\"b")]).add(3);
        let tsdb = Tsdb::new(8);
        tsdb.scrape(7, &obs.registry().snapshot());
        let json = tsdb.query_json(&query("j_total", 0, u64::MAX, 0));
        crate::check::validate_json(&json).unwrap();
        assert!(json.contains("\"j_total\""));
        assert!(json.contains("[7, 3]"));
        let empty = tsdb.query_json(&query("missing", 0, u64::MAX, 0));
        crate::check::validate_json(&empty).unwrap();
        assert!(empty.contains("\"series\": [\n  ]"));
    }

    #[test]
    fn query_agrees_with_brute_force_replay() {
        // Drive deterministic scrapes, keep every snapshot, and check
        // the store's answer against a naive recomputation.
        let obs = Obs::new();
        let c = obs.registry().counter("bf_total", &[("shard", "0")]);
        let c2 = obs.registry().counter("bf_total", &[("shard", "1")]);
        let tsdb = Tsdb::new(1024);
        let mut kept: Vec<(u64, Vec<crate::registry::MetricSnapshot>)> = Vec::new();
        let mut x = 0x5AADu64;
        for i in 0..200u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            c.add(x % 17);
            c2.add(x % 5);
            let t = 100 + i * 3; // fixed cadence, injected clock
            let snap = obs.registry().snapshot();
            assert!(tsdb.scrape(t, &snap));
            kept.push((t, snap));
        }
        for (from, to, step) in [
            (0u64, u64::MAX, 0u64),
            (130, 400, 0),
            (100, 700, 30),
            (103, 610, 7),
            (400, 100, 10), // empty range
        ] {
            let got = tsdb.query(&query("bf_total", from, to, step));
            for shard in ["0", "1"] {
                let raw: Vec<(u64, u64)> = kept
                    .iter()
                    .filter(|(t, _)| *t >= from && *t < to)
                    .map(|(t, snap)| {
                        let v = snap
                            .iter()
                            .find(|m| {
                                m.name == "bf_total"
                                    && m.labels == vec![("shard", shard.to_owned())]
                            })
                            .map(|m| match &m.value {
                                crate::registry::MetricValue::Counter(v) => *v,
                                _ => 0,
                            })
                            .unwrap_or(0);
                        (*t, v)
                    })
                    .collect();
                let want = downsample(&raw, from, step);
                let got_series = got
                    .series
                    .iter()
                    .find(|s| s.labels == vec![("shard".to_owned(), shard.to_owned())]);
                match got_series {
                    Some(s) => assert_eq!(s.points, want, "from={from} to={to} step={step}"),
                    None => assert!(want.is_empty(), "from={from} to={to} step={step}"),
                }
            }
        }
    }
}
