//! RAII span tracing into a bounded ring buffer.
//!
//! `obs::span("stage_scan")` opens a guard; dropping it records the
//! stage's wall time, thread ordinal and item count. Records land in a
//! preallocated ring: when full, the oldest record is overwritten, a
//! drop counter is bumped, and the owning registry's
//! `obs_spans_dropped_total` counter is incremented — eviction is never
//! silent, the hot path never reallocates, and nothing panics.
//! [`Tracer::timeline`] renders a post-run per-stage table with
//! proportional bars (a text flamegraph, one frame deep).

use crate::registry::Counter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Small dense per-thread ordinal (stable within a process, unlike the
/// opaque `std::thread::ThreadId`).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|&id| id)
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (static, interned by the call site).
    pub name: &'static str,
    /// Dense ordinal of the recording thread.
    pub thread: u64,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
    /// Items processed inside the span (caller-reported).
    pub items: u64,
}

/// Fixed-capacity ring of span records. All storage is allocated up
/// front; `push` writes by index and wraps.
#[derive(Debug)]
struct Ring {
    slots: Vec<SpanRecord>,
    capacity: usize,
    /// Index of the next write.
    head: usize,
    /// Total records ever pushed (so dropped = pushed - retained).
    pushed: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Pushes a record; returns `true` when an older record was
    /// evicted to make room.
    fn push(&mut self, record: SpanRecord) -> bool {
        let evicted = if self.slots.len() < self.capacity {
            self.slots.push(record); // within preallocated capacity
            false
        } else {
            if let Some(slot) = self.slots.get_mut(self.head) {
                *slot = record; // overwrite the oldest
            }
            true
        };
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
        evicted
    }

    fn dropped(&self) -> u64 {
        self.pushed - self.slots.len() as u64
    }

    /// Records oldest to newest.
    fn ordered(&self) -> Vec<SpanRecord> {
        if self.slots.len() < self.capacity {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.slots.len());
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }
}

/// The span recorder: a ring of [`SpanRecord`]s behind a mutex, shared
/// by every thread in the pool.
#[derive(Debug)]
pub struct Tracer {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    ring: Mutex<Ring>,
    /// Bumped once per record evicted from a full ring — the
    /// `obs_spans_dropped_total` counter on the owning registry.
    evictions: Counter,
}

impl Tracer {
    pub(crate) fn new(capacity: usize, enabled: Arc<AtomicBool>, evictions: Counter) -> Self {
        Tracer {
            enabled,
            epoch: Instant::now(),
            ring: Mutex::new(Ring::new(capacity)),
            evictions,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span; dropping the guard records it.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            start: Instant::now(),
            items: 0,
        }
    }

    fn record(&self, name: &'static str, start: Instant, items: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let record = SpanRecord {
            name,
            thread: thread_ordinal(),
            start_ns: saturating_ns(start.duration_since(self.epoch).as_nanos()),
            duration_ns: saturating_ns(start.elapsed().as_nanos()),
            items,
        };
        if self.lock().push(record) {
            self.evictions.inc();
        }
    }

    /// Retained records, oldest to newest.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().ordered()
    }

    /// How many records were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }

    /// Ring capacity (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Per-stage aggregate table with proportional duration bars —
    /// the post-run timeline rendering.
    pub fn timeline(&self) -> String {
        let records = self.records();
        let aggregates = SpanAggregate::collect(&records);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>7} {:>12} {:>11} {:>10} {:>10}  share\n",
            "span", "count", "items", "total ms", "mean ms", "max ms"
        ));
        let grand_total: u64 = aggregates.iter().map(|a| a.total_ns).sum();
        for a in &aggregates {
            let ms = a.total_ns as f64 / 1e6;
            let mean = if a.count > 0 {
                ms / a.count as f64
            } else {
                0.0
            };
            let share = if grand_total > 0 {
                a.total_ns as f64 / grand_total as f64
            } else {
                0.0
            };
            let bar_len = (share * 20.0).round() as usize;
            out.push_str(&format!(
                "{:<24} {:>7} {:>12} {:>11.3} {:>10.3} {:>10.3}  {}\n",
                a.name,
                a.count,
                a.items,
                ms,
                mean,
                a.max_ns as f64 / 1e6,
                "#".repeat(bar_len.min(20)),
            ));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("({dropped} older spans dropped from the ring)\n"));
        }
        out
    }
}

fn saturating_ns(n: u128) -> u64 {
    n.min(u64::MAX as u128) as u64
}

/// Per-name aggregate over the retained records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Stage name.
    pub name: &'static str,
    /// Number of retained spans.
    pub count: u64,
    /// Total items across those spans.
    pub items: u64,
    /// Total duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanAggregate {
    /// Folds records into per-name aggregates, ordered by first
    /// appearance (pipeline stage order).
    pub fn collect(records: &[SpanRecord]) -> Vec<SpanAggregate> {
        let mut out: Vec<SpanAggregate> = Vec::new();
        for r in records {
            match out.iter_mut().find(|a| a.name == r.name) {
                Some(a) => {
                    a.count += 1;
                    a.items += r.items;
                    a.total_ns += r.duration_ns;
                    a.max_ns = a.max_ns.max(r.duration_ns);
                }
                None => out.push(SpanAggregate {
                    name: r.name,
                    count: 1,
                    items: r.items,
                    total_ns: r.duration_ns,
                    max_ns: r.duration_ns,
                }),
            }
        }
        out
    }
}

/// RAII guard for an in-flight span. Records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start: Instant,
    items: u64,
}

impl Span<'_> {
    /// Adds to the span's item count (lines scanned, events pushed, ...).
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tracer.record(self.name, self.start, self.items);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tracer(capacity: usize) -> Tracer {
        tracer_with_flag(capacity, Arc::new(AtomicBool::new(true)))
    }

    fn tracer_with_flag(capacity: usize, enabled: Arc<AtomicBool>) -> Tracer {
        let registry = crate::registry::Registry::new(Arc::clone(&enabled));
        let evictions = registry.counter("obs_spans_dropped_total", &[]);
        Tracer::new(capacity, enabled, evictions)
    }

    #[test]
    fn spans_record_on_drop_with_items() {
        let t = tracer(8);
        {
            let mut s = t.span("stage_scan");
            s.add_items(41);
            s.add_items(1);
        }
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "stage_scan");
        assert_eq!(records[0].items, 42);
        assert!(records[0].thread >= 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = tracer(4);
        for i in 0..10u64 {
            let mut s = t.span("s");
            s.add_items(i);
        }
        let records = t.records();
        assert_eq!(records.len(), 4, "ring retains exactly its capacity");
        let items: Vec<u64> = records.iter().map(|r| r.items).collect();
        assert_eq!(items, vec![6, 7, 8, 9], "oldest records were dropped");
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn ring_never_reallocates_in_the_hot_path() {
        let t = tracer(16);
        let cap_before = t.lock().slots.capacity();
        for _ in 0..1000 {
            let _s = t.span("hot");
        }
        assert_eq!(t.lock().slots.capacity(), cap_before);
        assert_eq!(t.records().len(), 16);
        assert_eq!(t.dropped(), 1000 - 16);
    }

    #[test]
    fn zero_capacity_is_clamped_not_a_panic() {
        let t = tracer(0);
        let _ = t.span("x");
        assert_eq!(t.capacity(), 1);
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = tracer_with_flag(8, Arc::new(AtomicBool::new(false)));
        let _ = t.span("quiet");
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn eviction_bumps_the_dropped_counter_in_arrival_order() {
        // Through a full Obs so the counter under test is the same
        // obs_spans_dropped_total the exposition renders.
        let obs = crate::Obs::with_span_capacity(4);
        for i in 0..10u64 {
            let mut s = obs.tracer().span("evict");
            s.add_items(i);
        }
        let items: Vec<u64> = obs.tracer().records().iter().map(|r| r.items).collect();
        assert_eq!(items, vec![6, 7, 8, 9], "oldest evicted first, order kept");
        let snap = obs.registry().snapshot();
        assert_eq!(
            crate::registry::counter_total(&snap, "obs_spans_dropped_total"),
            6,
            "one counter increment per evicted span"
        );
        assert_eq!(obs.tracer().dropped(), 6, "ring view agrees with counter");
    }

    #[test]
    fn aggregates_fold_by_name_in_first_seen_order() {
        let t = tracer(16);
        for items in [1u64, 2, 3] {
            let mut s = t.span("a");
            s.add_items(items);
        }
        {
            let mut s = t.span("b");
            s.add_items(10);
        }
        let aggs = SpanAggregate::collect(&t.records());
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].name, "a");
        assert_eq!(aggs[0].count, 3);
        assert_eq!(aggs[0].items, 6);
        assert_eq!(aggs[1].name, "b");
        assert_eq!(aggs[1].items, 10);
    }

    #[test]
    fn timeline_renders_every_stage_and_drop_note() {
        let t = tracer(2);
        for name in ["alpha", "beta", "gamma"] {
            let _ = t.span(name);
        }
        let text = t.timeline();
        assert!(text.contains("beta") && text.contains("gamma"));
        assert!(text.contains("1 older spans dropped"));
    }
}
