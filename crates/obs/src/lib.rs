//! Zero-dependency observability for the resilience pipeline.
//!
//! Three pieces, all `std`-only:
//!
//! * [`registry`] — a metrics registry of atomic counters, gauges and
//!   fixed-bucket histograms, keyed by static metric names plus label
//!   sets. Registration interns the `(name, labels)` key behind a mutex;
//!   the returned handles are `Arc`-shared atomics, so the hot path is a
//!   single relaxed atomic op with no locking.
//! * [`span`] — RAII span guards (`obs::span("stage_scan")`) recording
//!   per-stage wall time, thread ordinal and item counts into a bounded
//!   ring buffer, plus a post-run timeline rendering.
//! * [`expose`] — [`ObsReport`](expose::ObsReport): a point-in-time
//!   snapshot of the registry and tracer, rendered as Prometheus text
//!   exposition format or JSON. [`check`] validates those renderings
//!   (used by the `obs_check` smoke gate).
//! * [`trace`] — request-scoped tracing: a [`FlightRecorder`] mints a
//!   trace id per request, stages append child spans, and sealed
//!   traces are retained slowest-N per rolling window plus all error
//!   traces (the `/debug/traces` substrate).
//! * [`tsdb`] — a fixed-capacity ring time-series store that absorbs
//!   registry snapshots on an injected-clock cadence and serves
//!   downsampled `[from, to)` range queries (the `/metrics/history`
//!   substrate).
//!
//! # The write-only invariant
//!
//! Pipeline code only ever *writes* to the registry and tracer; nothing
//! in any analysis path reads a metric back. Instrumentation therefore
//! cannot perturb study outputs — they stay byte-identical with obs
//! enabled, disabled, or absent, at any thread count or chunking
//! (`tests/obs_equivalence.rs` proves it). Exposition is the only
//! reader, and it runs after the pipeline has produced its report.
//!
//! # Naming convention
//!
//! `<layer>_<noun>[_<unit>][_total]` with layer one of `faultsim`,
//! `hpclog`, `core`, `slurmsim` or `obs` itself. Counters end in
//! `_total`; histograms carry an explicit unit (`_us`, `_bytes`);
//! gauges are plain nouns (`core_tie_buffer_high_water`). Labels are
//! reserved for low-cardinality dimensions (hazard class, thread
//! count), never per-item data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod check;
pub mod expose;
pub mod registry;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use expose::ObsReport;
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::{Span, SpanRecord, Tracer};
pub use trace::{FlightRecorder, StageGuard, StageRecord, Trace, TraceRecord};
pub use tsdb::{HistoryQuery, HistoryResult, Tsdb};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A registry plus a tracer sharing one enable flag: the unit every
/// instrumented layer writes into, and exposition reads from.
#[derive(Debug)]
pub struct Obs {
    enabled: Arc<AtomicBool>,
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// Default capacity of the span ring buffer.
    pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

    /// Creates an enabled instance with the default span capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(Self::DEFAULT_SPAN_CAPACITY)
    }

    /// Creates an enabled instance whose span ring holds `capacity`
    /// records before dropping the oldest.
    pub fn with_span_capacity(capacity: usize) -> Self {
        let enabled = Arc::new(AtomicBool::new(true));
        let registry = Registry::new(Arc::clone(&enabled));
        // Ring eviction is surfaced as a real registry counter so a
        // full span ring is visible in every exposition, not just the
        // tracer's own bookkeeping.
        let spans_dropped = registry.counter("obs_spans_dropped_total", &[]);
        Obs {
            tracer: Tracer::new(capacity, Arc::clone(&enabled), spans_dropped),
            registry,
            enabled,
        }
    }

    /// Turns recording on or off. Handles stay valid either way; while
    /// disabled every record operation is a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshots registry and tracer into an exposable report.
    pub fn report(&self) -> ObsReport {
        ObsReport::gather(self)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide instance every instrumented layer writes to.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

/// Enables or disables recording on the global instance.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global instance is recording.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Registers (or finds) a counter on the global registry.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    global().registry().counter(name, labels)
}

/// Registers (or finds) a gauge on the global registry.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    global().registry().gauge(name, labels)
}

/// Registers (or finds) a histogram on the global registry.
pub fn histogram(
    name: &'static str,
    labels: &[(&'static str, &str)],
    buckets: &'static [u64],
) -> Histogram {
    global().registry().histogram(name, labels, buckets)
}

/// Opens a span on the global tracer; it records itself when dropped.
pub fn span(name: &'static str) -> Span<'static> {
    global().tracer().span(name)
}
