//! Continuous distributions: exponential, Weibull, log-normal, Pareto,
//! uniform, and a truncated log-normal used for walltime-capped durations.

use super::{require_positive, ParamError, Sample};
use crate::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// The workhorse of constant-hazard failure processes: if a component's MTBE
/// is `m` hours, its inter-error gaps are `Exponential::new(1.0 / m)`.
///
/// # Example
///
/// ```
/// use simrng::{Rng, dist::{Exponential, Sample}};
/// # fn main() -> Result<(), simrng::dist::ParamError> {
/// let gaps = Exponential::new(1.0 / 590.0)?; // GSP per-node MTBE, op period
/// let mut rng = Rng::seed_from(1);
/// assert!(gaps.sample(&mut rng) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        Ok(Exponential {
            rate: require_positive("rate", rate)?,
        })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `mean` is finite and strictly positive.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        Ok(Exponential {
            rate: 1.0 / require_positive("mean", mean)?,
        })
    }

    /// The rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The distribution mean `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform on the open interval so ln never sees zero.
        -rng.f64_open().ln() / self.rate
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// `k < 1` models infant-mortality hazards (early GPU failures in the
/// pre-operational period), `k = 1` reduces to exponential, and `k > 1`
/// models wear-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both `shape` and `scale` are finite and
    /// strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        Ok(Weibull {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `lambda`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The distribution mean `lambda * Gamma(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

impl Sample for Weibull {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale * (-rng.f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Log-normal distribution parameterised by the mean `mu` and standard
/// deviation `sigma` of the underlying normal.
///
/// Job elapsed times and node repair times in the paper are right-skewed
/// with medians far below their means (Table III: mean 175.6 min vs P50
/// 10.2 min for 1-GPU jobs) — exactly the log-normal signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-space mean `mu` and log-space standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `mu` is finite and `sigma` is finite
    /// and strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() {
            return Err(ParamError::new(format!("mu must be finite, got {mu}")));
        }
        Ok(LogNormal {
            mu,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// Creates a log-normal from its *linear-space* mean and median.
    ///
    /// Because `median = exp(mu)` and `mean = exp(mu + sigma^2/2)`, a
    /// (mean, median) pair with `mean > median > 0` determines the
    /// parameters uniquely. This is the natural fit interface for Table III
    /// rows, which report exactly those two statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < median < mean`.
    pub fn from_mean_median(mean: f64, median: f64) -> Result<Self, ParamError> {
        require_positive("median", median)?;
        require_positive("mean", mean)?;
        if mean <= median {
            return Err(ParamError::new(format!(
                "log-normal fit requires mean > median, got mean {mean} <= median {median}"
            )));
        }
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).sqrt();
        LogNormal::new(mu, sigma)
    }

    /// Log-space mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Linear-space mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Linear-space median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sample for LogNormal {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// A log-normal right-truncated at `cap` by rejection, modelling quantities
/// with an enforced upper limit such as walltime-capped job durations
/// (Delta's 48-hour limit shows up as the P99 ≈ 2880 min wall in Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedLogNormal {
    inner: LogNormal,
    cap: f64,
}

impl TruncatedLogNormal {
    /// Creates a truncated log-normal.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless the base parameters are valid and `cap`
    /// is finite and strictly positive.
    pub fn new(mu: f64, sigma: f64, cap: f64) -> Result<Self, ParamError> {
        Ok(TruncatedLogNormal {
            inner: LogNormal::new(mu, sigma)?,
            cap: require_positive("cap", cap)?,
        })
    }

    /// The truncation point.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The untruncated base distribution.
    pub fn base(&self) -> LogNormal {
        self.inner
    }
}

impl Sample for TruncatedLogNormal {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        // Rejection with a clamp fallback: if the cap is deep in the left
        // tail, rejection would stall, so after a bounded number of tries
        // the sample saturates at the cap — mirroring how real jobs pile up
        // exactly at the walltime limit.
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x <= self.cap {
                return x;
            }
        }
        self.cap
    }
}

/// Pareto (type I) distribution with minimum `x_min` and tail index `alpha`.
///
/// Used for heavy-tailed burst lengths: the 17-day uncontained-memory-error
/// storm of §IV(vi) sits in the extreme tail of a Pareto burst-length model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are finite and
    /// strictly positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        Ok(Pareto {
            x_min: require_positive("x_min", x_min)?,
            alpha: require_positive("alpha", alpha)?,
        })
    }

    /// The scale (minimum value) parameter.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// The tail index.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Sample for Pareto {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        self.x_min / rng.f64_open().powf(1.0 / self.alpha)
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if lo.is_finite() && hi.is_finite() && lo < hi {
            Ok(Uniform { lo, hi })
        } else {
            Err(ParamError::new(format!(
                "uniform requires finite lo < hi, got [{lo}, {hi})"
            )))
        }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Sample for Uniform {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Lanczos approximation of the Gamma function, used for Weibull moments.
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, mean, variance};
    use super::*;
    use crate::Rng;

    const N: usize = 200_000;

    #[test]
    fn gamma_known_values() {
        assert_close(gamma(1.0), 1.0, 1e-9, "Gamma(1)");
        assert_close(gamma(2.0), 1.0, 1e-9, "Gamma(2)");
        assert_close(gamma(5.0), 24.0, 1e-9, "Gamma(5)");
        assert_close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-9, "Gamma(1/2)");
        assert_close(
            gamma(1.5),
            0.5 * std::f64::consts::PI.sqrt(),
            1e-9,
            "Gamma(3/2)",
        );
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn exponential_mean_and_variance() {
        let mut rng = Rng::seed_from(100);
        let d = Exponential::new(0.25).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert_close(mean(&xs), 4.0, 0.03, "exp mean");
        assert_close(variance(&xs), 16.0, 0.06, "exp variance");
    }

    #[test]
    fn exponential_with_mean_matches_rate_form() {
        let a = Exponential::with_mean(154.0).unwrap();
        let b = Exponential::new(1.0 / 154.0).unwrap();
        assert_close(a.rate(), b.rate(), 1e-12, "rate");
        assert_close(a.mean(), 154.0, 1e-12, "mean");
    }

    #[test]
    fn exponential_memoryless_shape() {
        // P(X > 2m) should be approximately P(X > m)^2.
        let mut rng = Rng::seed_from(101);
        let d = Exponential::new(1.0).unwrap();
        let xs = d.sample_n(&mut rng, N);
        let p1 = xs.iter().filter(|&&x| x > 1.0).count() as f64 / N as f64;
        let p2 = xs.iter().filter(|&&x| x > 2.0).count() as f64 / N as f64;
        assert_close(p2, p1 * p1, 0.05, "memorylessness");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut rng = Rng::seed_from(102);
        let d = Weibull::new(1.0, 3.0).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert_close(mean(&xs), 3.0, 0.03, "weibull(1, 3) mean");
        assert_close(d.mean(), 3.0, 1e-9, "analytic mean");
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let mut rng = Rng::seed_from(103);
        let d = Weibull::new(0.7, 10.0).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert_close(mean(&xs), d.mean(), 0.04, "weibull(0.7, 10) mean");
    }

    #[test]
    fn weibull_infant_mortality_skews_early() {
        // Shape < 1 puts more mass below the scale than shape > 1.
        let mut rng = Rng::seed_from(104);
        let early = Weibull::new(0.5, 1.0).unwrap();
        let late = Weibull::new(3.0, 1.0).unwrap();
        let pe = early
            .sample_n(&mut rng, N)
            .iter()
            .filter(|&&x| x < 0.2)
            .count();
        let pl = late
            .sample_n(&mut rng, N)
            .iter()
            .filter(|&&x| x < 0.2)
            .count();
        assert!(pe > 3 * pl, "early {pe} vs late {pl}");
    }

    #[test]
    fn lognormal_moments() {
        let mut rng = Rng::seed_from(105);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert_close(mean(&xs), d.mean(), 0.02, "lognormal mean");
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        assert_close(sorted[N / 2], d.median(), 0.02, "lognormal median");
    }

    #[test]
    fn lognormal_from_mean_median_roundtrip() {
        // Table III row: 1-GPU jobs, mean 175.62 min, median 10.15 min.
        let d = LogNormal::from_mean_median(175.62, 10.15).unwrap();
        assert_close(d.mean(), 175.62, 1e-9, "fit mean");
        assert_close(d.median(), 10.15, 1e-9, "fit median");
    }

    #[test]
    fn lognormal_fit_rejects_mean_below_median() {
        assert!(LogNormal::from_mean_median(5.0, 10.0).is_err());
        assert!(LogNormal::from_mean_median(10.0, 10.0).is_err());
    }

    #[test]
    fn truncated_lognormal_respects_cap() {
        let mut rng = Rng::seed_from(106);
        let d = TruncatedLogNormal::new(5.0, 2.0, 2880.0).unwrap();
        for x in d.sample_n(&mut rng, 50_000) {
            assert!(x <= 2880.0);
        }
    }

    #[test]
    fn truncated_lognormal_saturates_at_deep_cap() {
        // Cap far in the left tail: nearly all draws clamp to the cap.
        let mut rng = Rng::seed_from(107);
        let d = TruncatedLogNormal::new(10.0, 0.1, 1.0).unwrap();
        let xs = d.sample_n(&mut rng, 100);
        assert!(xs.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn pareto_minimum_and_tail() {
        let mut rng = Rng::seed_from(108);
        let d = Pareto::new(2.0, 3.0).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // alpha = 3 mean: alpha * x_min / (alpha - 1) = 3.
        assert_close(mean(&xs), 3.0, 0.05, "pareto mean");
    }

    #[test]
    fn pareto_is_heavy_tailed_relative_to_exponential() {
        let mut rng = Rng::seed_from(109);
        let p = Pareto::new(1.0, 1.5).unwrap();
        let e = Exponential::with_mean(3.0).unwrap();
        let far = 50.0;
        let pp = p.sample_n(&mut rng, N).iter().filter(|&&x| x > far).count();
        let pe = e.sample_n(&mut rng, N).iter().filter(|&&x| x > far).count();
        assert!(pp > 10 * (pe + 1), "pareto tail {pp} vs exp tail {pe}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Rng::seed_from(110);
        let d = Uniform::new(-2.0, 6.0).unwrap();
        let xs = d.sample_n(&mut rng, N);
        assert!(xs.iter().all(|&x| (-2.0..6.0).contains(&x)));
        assert_close(mean(&xs), 2.0, 0.02, "uniform mean");
    }

    #[test]
    fn uniform_rejects_empty_interval() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }
}
