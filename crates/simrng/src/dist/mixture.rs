//! Finite mixtures of distributions sharing an output type.

use super::{Categorical, ParamError, Sample};
use crate::Rng;

/// A finite mixture: picks a component by weight, then samples from it.
///
/// The Delta workload has strongly bimodal job durations — a mass of
/// sub-minute debug runs and a long tail of multi-day training runs (Table
/// III: P50 minutes vs P99 at the 48 h walltime). A two-component
/// [`Mixture`] of log-normals reproduces exactly that shape.
///
/// # Example
///
/// ```
/// use simrng::{Rng, dist::{LogNormal, Mixture, Sample}};
/// # fn main() -> Result<(), simrng::dist::ParamError> {
/// let debug_runs = LogNormal::new(0.5, 1.0)?;
/// let training = LogNormal::new(6.5, 1.2)?;
/// let durations = Mixture::new(vec![(0.6, debug_runs), (0.4, training)])?;
/// let mut rng = Rng::seed_from(7);
/// assert!(durations.sample(&mut rng) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture<D> {
    components: Vec<D>,
    picker: Categorical,
}

impl<D> Mixture<D> {
    /// Creates a mixture from `(weight, component)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the weight vector is invalid per
    /// [`Categorical::new`] (empty, negative, non-finite or zero-sum).
    pub fn new(parts: Vec<(f64, D)>) -> Result<Self, ParamError> {
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let picker = Categorical::new(&weights)?;
        Ok(Mixture {
            components: parts.into_iter().map(|(_, d)| d).collect(),
            picker,
        })
    }

    /// The mixture components, in construction order.
    pub fn components(&self) -> &[D] {
        &self.components
    }

    /// The normalised weight of component `i`, or `None` if out of range.
    pub fn weight(&self, i: usize) -> Option<f64> {
        self.picker.probability(i)
    }
}

impl<D: Sample> Sample for Mixture<D> {
    type Output = D::Output;

    fn sample(&self, rng: &mut Rng) -> D::Output {
        let i = self.picker.sample(rng);
        self.components[i].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, mean};
    use super::*;
    use crate::dist::{Exponential, LogNormal};
    use crate::Rng;

    #[test]
    fn mixture_mean_is_weighted_component_mean() {
        let mut rng = Rng::seed_from(300);
        let m = Mixture::new(vec![
            (0.25, Exponential::with_mean(2.0).unwrap()),
            (0.75, Exponential::with_mean(10.0).unwrap()),
        ])
        .unwrap();
        let xs = m.sample_n(&mut rng, 200_000);
        assert_close(mean(&xs), 0.25 * 2.0 + 0.75 * 10.0, 0.03, "mixture mean");
    }

    #[test]
    fn mixture_weight_accessor_normalises() {
        let m = Mixture::new(vec![
            (2.0, Exponential::new(1.0).unwrap()),
            (6.0, Exponential::new(1.0).unwrap()),
        ])
        .unwrap();
        assert_close(m.weight(0).unwrap(), 0.25, 1e-12, "w0");
        assert_close(m.weight(1).unwrap(), 0.75, 1e-12, "w1");
        assert_eq!(m.weight(2), None);
        assert_eq!(m.components().len(), 2);
    }

    #[test]
    fn mixture_rejects_empty() {
        let parts: Vec<(f64, Exponential)> = vec![];
        assert!(Mixture::new(parts).is_err());
    }

    #[test]
    fn bimodal_lognormal_mixture_has_low_median_high_mean() {
        // The Table III signature: mean >> median.
        let mut rng = Rng::seed_from(301);
        let m = Mixture::new(vec![
            (0.7, LogNormal::new(1.0, 0.8).unwrap()),
            (0.3, LogNormal::new(6.0, 1.0).unwrap()),
        ])
        .unwrap();
        let mut xs = m.sample_n(&mut rng, 100_000);
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        let mu = mean(&xs);
        assert!(mu > 10.0 * median, "mean {mu} vs median {median}");
    }
}
