//! Discrete distributions: Bernoulli, Poisson, geometric, categorical
//! (alias method) and discrete empirical distributions.

use super::{require_positive, require_probability, ParamError, Sample};
use crate::Rng;

/// Bernoulli distribution: `true` with probability `p`.
///
/// Used throughout the fault models for one-shot outcomes — did containment
/// succeed, did the CRC retry mask the NVLink error, did the job die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `p` lies in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        Ok(Bernoulli {
            p: require_probability("p", p)?,
        })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Sample for Bernoulli {
    type Output = bool;

    fn sample(&self, rng: &mut Rng) -> bool {
        rng.bool_with(self.p)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Models duplicate-log-line multiplicities and per-interval error counts.
/// Sampling uses Knuth's product method for small `lambda` and the
/// transformed-rejection PTRS algorithm's simpler normal-approximation
/// fallback for large `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `lambda` is finite and strictly
    /// positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        Ok(Poisson {
            lambda: require_positive("lambda", lambda)?,
        })
    }

    /// The mean (and variance) `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Poisson {
    type Output = u64;

    fn sample(&self, rng: &mut Rng) -> u64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut prod = rng.f64_open();
            while prod > limit {
                k += 1;
                prod *= rng.f64_open();
            }
            k
        } else {
            // Normal approximation with continuity correction; adequate for
            // the log-storm regime (λ in the hundreds) and exact enough for
            // every statistic we derive from it.
            let x = self.lambda + self.lambda.sqrt() * rng.standard_normal() + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

/// Geometric distribution counting failures before the first success
/// (support `0, 1, 2, ...`), with success probability `p`.
///
/// Models "how many extra duplicate lines follow the first log line of an
/// error" — the coalescing workload of Fig. 1 stage ii.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `p` lies in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        require_probability("p", p)?;
        if p == 0.0 {
            return Err(ParamError::new("geometric requires p > 0"));
        }
        Ok(Geometric { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `(1 - p) / p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }
}

impl Sample for Geometric {
    type Output = u64;

    fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inverse transform: floor(ln U / ln(1-p)).
        let u = rng.f64_open();
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// Categorical distribution over indices `0..k`, sampled in O(1) via the
/// Walker–Vose alias method.
///
/// Built once from unnormalised weights; used for the Table III GPU-count
/// bucket mix and for picking which component an error storm targets.
///
/// # Example
///
/// ```
/// use simrng::{Rng, dist::{Categorical, Sample}};
/// # fn main() -> Result<(), simrng::dist::ParamError> {
/// // Table III job mix: 69.86% 1-GPU, 27.31% 2-4 GPU, ...
/// let mix = Categorical::new(&[69.86, 27.31, 1.55, 1.07, 0.14, 0.063, 0.006, 0.002])?;
/// let mut rng = Rng::seed_from(3);
/// assert!(mix.sample(&mut rng) < 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from unnormalised weights.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("categorical requires at least one weight"));
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(ParamError::new(format!(
                "categorical weights must be finite, non-negative and sum > 0 (sum {total})"
            )));
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(ParamError::new(
                "categorical weights must be finite and >= 0",
            ));
        }
        let n = weights.len();
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let Some(s) = small.pop() {
            // Pair each under-full bucket with an over-full donor; when no
            // donor remains (floating-point residue), the bucket is full.
            match large.pop() {
                Some(l) => {
                    prob[s] = work[s];
                    alias[s] = l;
                    work[l] = (work[l] + work[s]) - 1.0;
                    if work[l] < 1.0 {
                        small.push(l);
                    } else {
                        large.push(l);
                    }
                }
                None => prob[s] = 1.0,
            }
        }
        for i in large {
            prob[i] = 1.0;
        }
        Ok(Categorical {
            prob,
            alias,
            weights: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if there are no categories (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalised probability of category `i`, or `None` out of range.
    pub fn probability(&self, i: usize) -> Option<f64> {
        self.weights.get(i).copied()
    }
}

impl Sample for Categorical {
    type Output = usize;

    fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.range_u64(self.prob.len() as u64) as usize;
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Discrete empirical distribution over arbitrary `(value, weight)` pairs.
///
/// A thin, value-carrying wrapper over [`Categorical`] for measured
/// histograms (e.g. replaying an observed repair-time histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical<T> {
    values: Vec<T>,
    picker: Categorical,
}

impl<T: Clone> Empirical<T> {
    /// Creates an empirical distribution from `(value, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] under the same conditions as
    /// [`Categorical::new`].
    pub fn new(pairs: &[(T, f64)]) -> Result<Self, ParamError> {
        let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        Ok(Empirical {
            values: pairs.iter().map(|(v, _)| v.clone()).collect(),
            picker: Categorical::new(&weights)?,
        })
    }

    /// The distinct values, in construction order.
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

impl<T: Clone> Sample for Empirical<T> {
    type Output = T;

    fn sample(&self, rng: &mut Rng) -> T {
        self.values[self.picker.sample(rng)].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, mean};
    use super::*;
    use crate::Rng;

    const N: usize = 200_000;

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from(200);
        let d = Bernoulli::new(0.9048).unwrap(); // MMU job-failure probability
        let hits = (0..N).filter(|_| d.sample(&mut rng)).count();
        assert_close(hits as f64 / N as f64, 0.9048, 0.01, "bernoulli freq");
    }

    #[test]
    fn bernoulli_rejects_out_of_range() {
        assert!(Bernoulli::new(-0.01).is_err());
        assert!(Bernoulli::new(1.01).is_err());
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = Rng::seed_from(201);
        let d = Poisson::new(3.5).unwrap();
        let xs: Vec<f64> = d
            .sample_n(&mut rng, N)
            .into_iter()
            .map(|k| k as f64)
            .collect();
        assert_close(mean(&xs), 3.5, 0.02, "poisson mean");
        let var = super::super::testutil::variance(&xs);
        assert_close(var, 3.5, 0.03, "poisson variance");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = Rng::seed_from(202);
        let d = Poisson::new(400.0).unwrap();
        let xs: Vec<f64> = d
            .sample_n(&mut rng, 50_000)
            .into_iter()
            .map(|k| k as f64)
            .collect();
        assert_close(mean(&xs), 400.0, 0.01, "poisson large mean");
    }

    #[test]
    fn poisson_zero_probability_mass() {
        let mut rng = Rng::seed_from(203);
        let d = Poisson::new(1.0).unwrap();
        let zeros = d.sample_n(&mut rng, N).iter().filter(|&&k| k == 0).count();
        assert_close(zeros as f64 / N as f64, (-1.0f64).exp(), 0.02, "P(X=0)");
    }

    #[test]
    fn geometric_mean() {
        let mut rng = Rng::seed_from(204);
        let d = Geometric::new(0.2).unwrap();
        let xs: Vec<f64> = d
            .sample_n(&mut rng, N)
            .into_iter()
            .map(|k| k as f64)
            .collect();
        assert_close(mean(&xs), 4.0, 0.03, "geometric mean");
        assert_close(d.mean(), 4.0, 1e-12, "analytic mean");
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        let mut rng = Rng::seed_from(205);
        let d = Geometric::new(1.0).unwrap();
        assert!(d.sample_n(&mut rng, 100).iter().all(|&k| k == 0));
    }

    #[test]
    fn geometric_rejects_zero() {
        assert!(Geometric::new(0.0).is_err());
    }

    #[test]
    fn categorical_matches_weights() {
        let mut rng = Rng::seed_from(206);
        let weights = [69.86, 27.31, 1.55, 1.07, 0.14, 0.063, 0.006, 0.002];
        let d = Categorical::new(&weights).unwrap();
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..N {
            counts[d.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate().take(4) {
            assert_close(
                counts[i] as f64 / N as f64,
                w / total,
                0.05,
                &format!("bucket {i}"),
            );
        }
    }

    #[test]
    fn categorical_probability_accessor() {
        let d = Categorical::new(&[1.0, 3.0]).unwrap();
        assert_close(d.probability(0).unwrap(), 0.25, 1e-12, "p0");
        assert_close(d.probability(1).unwrap(), 0.75, 1e-12, "p1");
        assert_eq!(d.probability(2), None);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn categorical_single_category() {
        let mut rng = Rng::seed_from(207);
        let d = Categorical::new(&[42.0]).unwrap();
        assert!(d.sample_n(&mut rng, 100).iter().all(|&i| i == 0));
    }

    #[test]
    fn categorical_zero_weight_category_never_drawn() {
        let mut rng = Rng::seed_from(208);
        let d = Categorical::new(&[1.0, 0.0, 1.0]).unwrap();
        assert!(d.sample_n(&mut rng, 10_000).iter().all(|&i| i != 1));
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -1.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn empirical_draws_only_listed_values() {
        let mut rng = Rng::seed_from(209);
        let d = Empirical::new(&[("fast", 0.7), ("slow", 0.3)]).unwrap();
        for v in d.sample_n(&mut rng, 1000) {
            assert!(v == "fast" || v == "slow");
        }
        assert_eq!(d.values(), &["fast", "slow"]);
    }

    #[test]
    fn empirical_respects_weights() {
        let mut rng = Rng::seed_from(210);
        let d = Empirical::new(&[(1u32, 9.0), (2u32, 1.0)]).unwrap();
        let ones = d.sample_n(&mut rng, N).iter().filter(|&&v| v == 1).count();
        assert_close(ones as f64 / N as f64, 0.9, 0.01, "empirical weight");
    }
}
