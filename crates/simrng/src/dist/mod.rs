//! Statistical distributions for failure-process modelling.
//!
//! Every distribution is a small immutable value implementing [`Sample`];
//! parameter validation happens once at construction and returns
//! [`ParamError`] on invalid input, so sampling itself is infallible.
//!
//! The set of families is exactly what the Delta reproduction needs:
//!
//! * [`Exponential`] / [`Weibull`] — inter-error gaps of component hazard
//!   processes (constant and age-dependent hazards).
//! * [`LogNormal`] — job durations and repair (drain+reboot) times, both
//!   right-skewed with long tails (paper §V-C, Fig. 2).
//! * [`Pareto`] — heavy-tailed burst lengths of error storms.
//! * [`Poisson`] / [`Geometric`] — duplicate-log-line multiplicities.
//! * [`Categorical`] — GPU-count bucket mix of Table III (alias method, O(1)).
//! * [`Empirical`] — arbitrary measured histograms.
//! * [`Mixture`] — e.g. the bimodal short-debug-run / long-training-run job
//!   duration mix.

mod capped;
mod continuous;
mod discrete;
mod mixture;

pub use capped::CappedLogNormal;
pub use continuous::{Exponential, LogNormal, Pareto, TruncatedLogNormal, Uniform, Weibull};
pub use discrete::{Bernoulli, Categorical, Empirical, Geometric, Poisson};
pub use mixture::Mixture;

use crate::Rng;
use std::error::Error;
use std::fmt;

/// A distribution from which values of type `Output` can be drawn.
///
/// Implementors are immutable; all mutation happens in the caller-supplied
/// [`Rng`], which keeps distribution values freely shareable across threads.
pub trait Sample {
    /// The type of values produced by this distribution.
    type Output;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Output;

    /// Draws `n` values into a fresh vector.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<Self::Output> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Error returned when constructing a distribution with invalid parameters.
///
/// The message names the offending parameter and the constraint it violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl Error for ParamError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(name: &str, value: f64) -> Result<f64, ParamError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ParamError::new(format!(
            "{name} must be finite and > 0, got {value}"
        )))
    }
}

/// Validates that `value` is a probability in `[0, 1]`.
pub(crate) fn require_probability(name: &str, value: f64) -> Result<f64, ParamError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ParamError::new(format!(
            "{name} must lie in [0, 1], got {value}"
        )))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for sampler moment tests.

    /// Sample mean.
    pub fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Unbiased sample variance.
    pub fn variance(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    }

    /// Asserts `actual` is within `tol` relative error of `expected`.
    pub fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
        let rel = if expected == 0.0 {
            actual.abs()
        } else {
            ((actual - expected) / expected).abs()
        };
        assert!(
            rel < tol,
            "{what}: actual {actual} vs expected {expected} (rel err {rel:.4} > {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_error_display_names_parameter() {
        let err = require_positive("rate", -1.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rate"), "{msg}");
        assert!(msg.contains("-1"), "{msg}");
    }

    #[test]
    fn require_probability_bounds() {
        assert!(require_probability("p", 0.0).is_ok());
        assert!(require_probability("p", 1.0).is_ok());
        assert!(require_probability("p", 1.1).is_err());
        assert!(require_probability("p", -0.1).is_err());
        assert!(require_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn require_positive_rejects_non_finite() {
        assert!(require_positive("x", f64::INFINITY).is_err());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", 1e-300).is_ok());
    }

    #[test]
    fn sample_n_length() {
        let mut rng = crate::Rng::seed_from(1);
        let d = Exponential::new(2.0).unwrap();
        assert_eq!(d.sample_n(&mut rng, 17).len(), 17);
    }
}
