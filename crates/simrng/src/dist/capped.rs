//! A clamp-truncated log-normal fitted so the *capped* distribution hits a
//! target mean — the right model for walltime-limited job durations.
//!
//! HPC accounting data reports elapsed-time statistics computed over jobs
//! that pile up exactly at the walltime limit (Table III of the Delta study
//! shows P99 pinned at 2880 minutes). Fitting an ordinary log-normal to the
//! reported (mean, median) and then truncating would undershoot the mean
//! badly, because for heavy-tailed fits more than half the mean's mass can
//! sit beyond the cap. [`CappedLogNormal::fit`] instead solves for the
//! log-normal whose *clamped* mean `E[min(X, cap)]` equals the reported
//! mean, with the median pinned.

use super::{require_positive, LogNormal, ParamError, Sample};
use crate::Rng;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (maximum absolute error ≈ 1.5e-7, far below fitting needs).
pub(crate) fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A log-normal clamped at `cap`: samples are `min(X, cap)`.
///
/// # Example
///
/// ```
/// use simrng::{Rng, dist::{CappedLogNormal, Sample}};
/// # fn main() -> Result<(), simrng::dist::ParamError> {
/// // Table III, 1-GPU jobs: mean 175.62 min, median 10.15 min, 48 h cap.
/// let d = CappedLogNormal::fit(175.62, 10.15, 2880.0)?;
/// let mut rng = Rng::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0 && x <= 2880.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CappedLogNormal {
    base: LogNormal,
    cap: f64,
}

impl CappedLogNormal {
    /// Wraps an explicit base distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `cap` is finite and positive.
    pub fn new(base: LogNormal, cap: f64) -> Result<Self, ParamError> {
        Ok(CappedLogNormal {
            base,
            cap: require_positive("cap", cap)?,
        })
    }

    /// Fits a capped log-normal whose clamped mean is `mean` and whose
    /// median is `median`, clamped at `cap`.
    ///
    /// The median pins `mu = ln(median)`; `sigma` is found by bisection on
    /// the closed-form clamped mean
    /// `E[min(X, c)] = e^{mu + s²/2} Φ(z − s) + c (1 − Φ(z))` with
    /// `z = (ln c − mu)/s`, which is strictly increasing in `s` on the
    /// relevant range.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < median < mean < cap`.
    pub fn fit(mean: f64, median: f64, cap: f64) -> Result<Self, ParamError> {
        require_positive("median", median)?;
        require_positive("mean", mean)?;
        require_positive("cap", cap)?;
        if !(median < mean && mean < cap) {
            return Err(ParamError::new(format!(
                "capped log-normal fit requires median < mean < cap, got {median} / {mean} / {cap}"
            )));
        }
        let mu = median.ln();
        let clamped_mean = |s: f64| {
            let z = (cap.ln() - mu) / s;
            (mu + 0.5 * s * s).exp() * normal_cdf(z - s) + cap * (1.0 - normal_cdf(z))
        };
        // Bracket: at s→0 the clamped mean → median < mean; grow the upper
        // bound until it crosses the target (the clamped mean approaches
        // cap/2-ish territory and beyond as s grows).
        let mut lo = 1e-6;
        let mut hi = 1.0;
        let mut grew = 0;
        while clamped_mean(hi) < mean {
            hi *= 2.0;
            grew += 1;
            if grew > 60 {
                return Err(ParamError::new(format!(
                    "capped mean {mean} unreachable with median {median} and cap {cap}"
                )));
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if clamped_mean(mid) < mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let sigma = 0.5 * (lo + hi);
        Ok(CappedLogNormal {
            base: LogNormal::new(mu, sigma)?,
            cap,
        })
    }

    /// The underlying (uncapped) log-normal.
    pub fn base(&self) -> LogNormal {
        self.base
    }

    /// The clamp point.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The analytic clamped mean `E[min(X, cap)]`.
    pub fn mean(&self) -> f64 {
        let (mu, s) = (self.base.mu(), self.base.sigma());
        let z = (self.cap.ln() - mu) / s;
        (mu + 0.5 * s * s).exp() * normal_cdf(z - s) + self.cap * (1.0 - normal_cdf(z))
    }

    /// The median (unchanged by clamping when below the cap).
    pub fn median(&self) -> f64 {
        self.base.median().min(self.cap)
    }
}

impl Sample for CappedLogNormal {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        self.base.sample(rng).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{assert_close, mean};
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert_close(normal_cdf(0.0), 0.5, 1e-6, "Phi(0)");
        assert_close(normal_cdf(1.0), 0.841_344_7, 1e-4, "Phi(1)");
        assert_close(normal_cdf(-1.0), 0.158_655_3, 1e-3, "Phi(-1)");
        assert_close(normal_cdf(2.0), 0.977_249_9, 1e-4, "Phi(2)");
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn fit_reproduces_table_iii_rows() {
        // Every Table III row: (mean, median) in minutes with the 48 h cap.
        let rows = [
            (175.62, 10.15),
            (145.04, 4.75),
            (133.89, 2.70),
            (270.40, 73.73),
            (204.52, 10.25),
            (226.28, 0.32),
            (226.53, 9.19),
            (32.12, 20.40),
        ];
        for (m, p50) in rows {
            let d = CappedLogNormal::fit(m, p50, 2880.0).unwrap();
            assert_close(
                d.mean(),
                m,
                1e-3,
                &format!("analytic mean for ({m}, {p50})"),
            );
            assert_close(d.median(), p50, 1e-9, "median");
        }
    }

    #[test]
    fn sampled_mean_matches_fit() {
        let d = CappedLogNormal::fit(175.62, 10.15, 2880.0).unwrap();
        let mut rng = Rng::seed_from(2);
        let xs = d.sample_n(&mut rng, 400_000);
        assert_close(mean(&xs), 175.62, 0.03, "sampled clamped mean");
        assert!(xs.iter().all(|&x| x <= 2880.0));
    }

    #[test]
    fn heavy_tail_piles_at_cap() {
        // The 65-128 GPU row (mean 226, median 0.32!) needs a huge sigma;
        // a visible fraction of jobs must sit exactly at the cap, matching
        // the P99 = 2880 rows of Table III.
        let d = CappedLogNormal::fit(226.28, 0.32, 2880.0).unwrap();
        let mut rng = Rng::seed_from(3);
        let xs = d.sample_n(&mut rng, 100_000);
        let at_cap = xs.iter().filter(|&&x| x == 2880.0).count() as f64 / xs.len() as f64;
        assert!(at_cap > 0.02, "at-cap fraction {at_cap}");
    }

    #[test]
    fn fit_rejects_impossible_orderings() {
        assert!(CappedLogNormal::fit(10.0, 20.0, 100.0).is_err()); // mean < median
        assert!(CappedLogNormal::fit(200.0, 10.0, 150.0).is_err()); // mean > cap
        assert!(CappedLogNormal::fit(0.0, 10.0, 100.0).is_err());
    }

    #[test]
    fn new_wraps_base() {
        let base = LogNormal::new(1.0, 0.5).unwrap();
        let d = CappedLogNormal::new(base, 10.0).unwrap();
        assert_eq!(d.base(), base);
        assert_eq!(d.cap(), 10.0);
        assert!(CappedLogNormal::new(base, 0.0).is_err());
    }
}
