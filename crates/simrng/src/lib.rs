//! Deterministic pseudo-random number generation and statistical
//! distributions for reproducible HPC failure simulation.
//!
//! This crate is the randomness substrate for the Delta GPU resilience
//! reproduction. Everything downstream — fault-injection schedules, job
//! workloads, repair times — must be *bit-exact reproducible* from a seed so
//! that every table and figure in `EXPERIMENTS.md` can be regenerated
//! verbatim. To guarantee that across platforms and dependency upgrades, the
//! generator ([`Rng`], a xoshiro256++ implementation) and all samplers are
//! implemented here from scratch rather than imported.
//!
//! # Layout
//!
//! * [`Rng`] — the core generator: xoshiro256++ state, seeded via SplitMix64,
//!   with uniform primitives (`next_u64`, [`Rng::f64`], [`Rng::range_u64`],
//!   [`Rng::bool_with`]) and deterministic stream splitting ([`Rng::fork`]).
//! * [`dist`] — distribution objects implementing [`dist::Sample`]:
//!   exponential, Weibull, log-normal, Pareto, Poisson, geometric,
//!   categorical (alias method), discrete empirical, and mixtures.
//!
//! # Example
//!
//! ```
//! use simrng::{Rng, dist::{Exponential, Sample}};
//!
//! let mut rng = Rng::seed_from(0xDE17A);
//! let mtbe_hours = 154.0;
//! let exp = Exponential::new(1.0 / mtbe_hours).expect("rate must be positive");
//! let gap = exp.sample(&mut rng);
//! assert!(gap > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod rng;

pub use rng::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Rng>();
        assert_sync::<Rng>();
    }
}
