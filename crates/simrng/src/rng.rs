//! The core deterministic generator: xoshiro256++ with SplitMix64 seeding.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// The generator is seeded from a single `u64` via SplitMix64 state
/// expansion, which guarantees a well-mixed 256-bit state even for small or
/// correlated seeds (0, 1, 2, ...). The same seed always produces the same
/// stream on every platform — this is a hard requirement for regenerating
/// the experiment tables recorded in `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// use simrng::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for deterministic stream splitting; it is a
/// full-period bijection on `u64` with excellent avalanche behaviour.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Distinct seeds yield statistically independent streams; equal seeds
    /// yield identical streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ requires a non-zero state; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for defence in depth.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator keyed by `stream`.
    ///
    /// Forking lets each simulated entity (a GPU, a node, a workload class)
    /// own its private stream so that adding or removing one entity does not
    /// perturb the randomness consumed by any other — a prerequisite for
    /// meaningful ablation experiments.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// The raw 256-bit internal state, for checkpointing.
    ///
    /// Together with [`Rng::from_state`] this round-trips the generator
    /// exactly: a restored generator continues the same stream from the
    /// same point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`Rng::state`].
    ///
    /// Returns `None` for the all-zero state, which is not reachable from
    /// any seed and would make xoshiro256++ emit zeros forever.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0, 0, 0, 0] {
            None
        } else {
            Some(Rng { s })
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits so every representable value in the output range
    /// is equally likely at the resolution of the mantissa.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for inverse-transform sampling where `ln(0)` must be avoided.
    pub fn f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// Uses Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi (got {lo}..{hi})");
        lo + self.range_u64(hi - lo)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_u64(items.len() as u64) as usize])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Returns a standard normal sample via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Default for Rng {
    /// Equivalent to `Rng::seed_from(0)`.
    fn default() -> Self {
        Rng::seed_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs of SplitMix64 for seed 0, cross-checked against
        // the published C reference implementation (Vigna).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(99);
        let mut b = Rng::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_count() {
        let root = Rng::seed_from(7);
        let mut c5 = root.fork(5);
        let expected: Vec<u64> = (0..8).map(|_| c5.next_u64()).collect();
        // Forking other children must not perturb stream 5.
        let _c1 = root.fork(1);
        let _c2 = root.fork(2);
        let mut c5_again = root.fork(5);
        let actual: Vec<u64> = (0..8).map(|_| c5_again.next_u64()).collect();
        assert_eq!(expected, actual);
    }

    #[test]
    fn fork_distinct_streams_differ() {
        let root = Rng::seed_from(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Rng::seed_from(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_respects_bound() {
        let mut rng = Rng::seed_from(5);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn range_u64_is_roughly_uniform() {
        let mut rng = Rng::seed_from(6);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.range_u64(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "bucket count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_u64_zero_bound_panics() {
        Rng::seed_from(0).range_u64(0);
    }

    #[test]
    fn range_covers_interval() {
        let mut rng = Rng::seed_from(8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.range(10, 15) as usize - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_with_extremes() {
        let mut rng = Rng::seed_from(9);
        assert!(!(0..100).any(|_| rng.bool_with(0.0)));
        assert!((0..100).all(|_| rng.bool_with(1.0)));
    }

    #[test]
    fn bool_with_probability_converges() {
        let mut rng = Rng::seed_from(10);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bool_with(0.54)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.54).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
    }

    #[test]
    fn choose_hits_all_elements() {
        let mut rng = Rng::seed_from(2);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[*rng.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from(12);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn default_matches_seed_zero() {
        assert_eq!(Rng::default(), Rng::seed_from(0));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = Rng::seed_from(0xC0FFEE);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = Rng::from_state(rng.state()).unwrap();
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_all_zero() {
        assert_eq!(Rng::from_state([0; 4]), None);
    }
}
