//! Property tests for the PRNG and the distribution samplers, on the
//! in-repo `propcheck` harness (seeded, offline, deterministic).

use propcheck::run;
use simrng::dist::{
    Categorical, Exponential, Geometric, LogNormal, Poisson, Sample, Uniform, Weibull,
};
use simrng::Rng;

/// Same seed, same stream — for any seed.
#[test]
fn seed_determinism() {
    run("seed_determinism", 64, |g| {
        let seed = g.u64();
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

/// Forked streams are reproducible and independent of interleaving.
#[test]
fn fork_determinism() {
    run("fork_determinism", 64, |g| {
        let (seed, stream) = (g.u64(), g.u64());
        let root = Rng::seed_from(seed);
        let mut a = root.fork(stream);
        let _noise = root.fork(stream.wrapping_add(1)).next_u64();
        let mut b = root.fork(stream);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

/// range_u64 respects its bound for arbitrary bounds.
#[test]
fn range_bound() {
    run("range_bound", 64, |g| {
        let seed = g.u64();
        let bound = g.u64_in(1, u64::MAX);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            assert!(rng.range_u64(bound) < bound);
        }
    });
}

/// f64 samples stay in [0, 1); f64_open in (0, 1].
#[test]
fn unit_interval() {
    run("unit_interval", 64, |g| {
        let mut rng = Rng::seed_from(g.u64());
        for _ in 0..128 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    });
}

/// Exponential samples are positive and finite for any valid rate.
#[test]
fn exponential_support() {
    run("exponential_support", 64, |g| {
        let seed = g.u64();
        let rate = g.f64_in(1e-6, 1e6);
        let d = Exponential::new(rate).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0 && x.is_finite());
        }
    });
}

/// Weibull samples are positive and finite across shape regimes.
#[test]
fn weibull_support() {
    run("weibull_support", 64, |g| {
        let seed = g.u64();
        let shape = g.f64_in(0.2, 5.0);
        let scale = g.f64_in(1e-3, 1e3);
        let d = Weibull::new(shape, scale).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0 && x.is_finite());
        }
    });
}

/// The log-normal (mean, median) fit reproduces its inputs exactly.
#[test]
fn lognormal_fit_roundtrip() {
    run("lognormal_fit_roundtrip", 128, |g| {
        let median = g.f64_in(0.1, 100.0);
        let factor = g.f64_in(1.01, 50.0);
        let mean = median * factor;
        let d = LogNormal::from_mean_median(mean, median).unwrap();
        assert!((d.mean() - mean).abs() / mean < 1e-9);
        assert!((d.median() - median).abs() / median < 1e-9);
    });
}

/// Uniform samples stay inside the interval.
#[test]
fn uniform_support() {
    run("uniform_support", 64, |g| {
        let seed = g.u64();
        let lo = g.f64_in(-1e6, 1e6);
        let width = g.f64_in(1e-3, 1e6);
        let d = Uniform::new(lo, lo + width).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            assert!(x >= lo && x < lo + width);
        }
    });
}

/// Categorical only ever returns valid indices, and never an index whose
/// weight is zero.
#[test]
fn categorical_support() {
    run("categorical_support", 64, |g| {
        let seed = g.u64();
        // Mix exact zeros in so zero-weight exclusion is exercised.
        let weights = g.vec_with(1, 12, |g| {
            if g.bool_with(0.25) {
                0.0
            } else {
                g.f64_in(1e-3, 100.0)
            }
        });
        if weights.iter().sum::<f64>() <= 0.0 {
            return;
        }
        let d = Categorical::new(&weights).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..128 {
            let i = d.sample(&mut rng);
            assert!(i < weights.len());
            assert!(weights[i] > 0.0, "drew zero-weight index {i}");
        }
    });
}

/// Categorical probabilities normalise to one.
#[test]
fn categorical_normalises() {
    run("categorical_normalises", 64, |g| {
        let weights = g.vec_with(1, 12, |g| g.f64_in(0.0, 100.0));
        if weights.iter().sum::<f64>() <= 1e-9 {
            return;
        }
        let d = Categorical::new(&weights).unwrap();
        let total: f64 = (0..weights.len()).map(|i| d.probability(i).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    });
}

/// Geometric and Poisson outputs have the right support (no panics).
#[test]
fn discrete_support() {
    run("discrete_support", 64, |g| {
        let seed = g.u64();
        let p = g.f64_in(0.01, 1.0);
        let lambda = g.f64_in(0.01, 200.0);
        let mut rng = Rng::seed_from(seed);
        let geo = Geometric::new(p).unwrap();
        let po = Poisson::new(lambda).unwrap();
        for _ in 0..32 {
            let _ = geo.sample(&mut rng); // u64 by type; no panic is the property
            let _ = po.sample(&mut rng);
        }
    });
}

/// Shuffle is always a permutation.
#[test]
fn shuffle_permutes() {
    run("shuffle_permutes", 64, |g| {
        let seed = g.u64();
        let mut v: Vec<u32> = g.vec_with(0, 64, |g| g.u32_in(0, u32::MAX));
        let mut rng = Rng::seed_from(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        assert_eq!(v, expected);
    });
}
