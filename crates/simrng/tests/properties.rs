//! Property tests for the PRNG and the distribution samplers.

use proptest::prelude::*;
use simrng::dist::{
    Categorical, Exponential, Geometric, LogNormal, Poisson, Sample, Uniform, Weibull,
};
use simrng::Rng;

proptest! {
    /// Same seed, same stream — for any seed.
    #[test]
    fn seed_determinism(seed in any::<u64>()) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Forked streams are reproducible and independent of interleaving.
    #[test]
    fn fork_determinism(seed in any::<u64>(), stream in any::<u64>()) {
        let root = Rng::seed_from(seed);
        let mut a = root.fork(stream);
        let _noise = root.fork(stream.wrapping_add(1)).next_u64();
        let mut b = root.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// range_u64 respects its bound for arbitrary bounds.
    #[test]
    fn range_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.range_u64(bound) < bound);
        }
    }

    /// f64 samples stay in [0, 1); f64_open in (0, 1].
    #[test]
    fn unit_interval(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..128 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }

    /// Exponential samples are positive and finite for any valid rate.
    #[test]
    fn exponential_support(seed in any::<u64>(), rate in 1e-6f64..1e6) {
        let d = Exponential::new(rate).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// Weibull samples are positive and finite across shape regimes.
    #[test]
    fn weibull_support(seed in any::<u64>(), shape in 0.2f64..5.0, scale in 1e-3f64..1e3) {
        let d = Weibull::new(shape, scale).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// The log-normal (mean, median) fit reproduces its inputs exactly.
    #[test]
    fn lognormal_fit_roundtrip(median in 0.1f64..100.0, factor in 1.01f64..50.0) {
        let mean = median * factor;
        let d = LogNormal::from_mean_median(mean, median).unwrap();
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((d.median() - median).abs() / median < 1e-9);
    }

    /// Uniform samples stay inside the interval.
    #[test]
    fn uniform_support(seed in any::<u64>(), lo in -1e6f64..1e6, width in 1e-3f64..1e6) {
        let d = Uniform::new(lo, lo + width).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    /// Categorical only ever returns valid indices, and never an index
    /// whose weight is zero.
    #[test]
    fn categorical_support(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..100.0, 1..12),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Categorical::new(&weights).unwrap();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..128 {
            let i = d.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "drew zero-weight index {i}");
        }
    }

    /// Categorical probabilities normalise to one.
    #[test]
    fn categorical_normalises(
        weights in proptest::collection::vec(0.0f64..100.0, 1..12),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let d = Categorical::new(&weights).unwrap();
        let total: f64 = (0..weights.len()).map(|i| d.probability(i).unwrap()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Geometric and Poisson outputs are finite small integers with the
    /// right support.
    #[test]
    fn discrete_support(seed in any::<u64>(), p in 0.01f64..1.0, lambda in 0.01f64..200.0) {
        let mut rng = Rng::seed_from(seed);
        let g = Geometric::new(p).unwrap();
        let po = Poisson::new(lambda).unwrap();
        for _ in 0..32 {
            let _ = g.sample(&mut rng); // u64 by type; no panic is the property
            let _ = po.sample(&mut rng);
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), mut v in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut rng = Rng::seed_from(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }
}
