//! Property layer for the civil-time bucketing model.
//!
//! The rollup cubes assume four structural facts about
//! `Tz::bucket_start`/`bucket_end`, and these must hold for *arbitrary*
//! transition tables — not just the three built-ins — because a bug that
//! only bites on an exotic offset pattern would silently mis-bucket:
//!
//! * **totality** — `start <= t < end` for every instant;
//! * **idempotence** — boundaries map to themselves;
//! * **partition-completeness** — consecutive buckets tile the line:
//!   `bucket_start(bucket_end(t)) == bucket_end(t)`, and every sampled
//!   instant inside `[start, end)` maps to the same bucket;
//! * **monotonicity** — later instants never map to earlier buckets,
//!   even across a fall-back fold where local labels repeat.
//!
//! Counterexample zones shrink toward fewer/rounder transitions so a
//! failure prints the smallest adversarial table. Explicit regressions
//! pin the Chicago 2024 spring-forward gap and fall-back fold.

use propcheck::{run_shrinking, shrink_vec, Gen};
use simtime::{Bucket, Timestamp, Tz};

/// Instants are generated well above the epoch so a month bucket can
/// never be clamped at zero (clamping is exercised separately below).
const T_LO: u64 = 50 * 86_400;
const T_HI: u64 = 60 * 365 * 86_400;

/// A generated zone plus the probe instant, as one shrinkable value.
#[derive(Debug, Clone)]
struct Case {
    base_offset: i32,
    /// `(utc_instant, offset_after)`, strictly ascending.
    transitions: Vec<(u64, i32)>,
    t: u64,
}

impl Case {
    fn tz(&self) -> Tz {
        Tz::with_transitions("generated", self.base_offset, self.transitions.clone())
    }
}

/// Offsets up to ±14 h at minute granularity — wider than any real zone,
/// so fold/gap geometry is stressed harder than zoneinfo ever would.
fn gen_offset(g: &mut Gen) -> i32 {
    let mins = g.u64_in(0, 2 * 14 * 60) as i64 - 14 * 60;
    (mins * 60) as i32
}

fn gen_case(g: &mut Gen) -> Case {
    let base_offset = gen_offset(g);
    let n = g.usize_in(0, 12);
    let mut instants: Vec<u64> = (0..n).map(|_| g.u64_in(T_LO / 2, T_HI)).collect();
    instants.sort_unstable();
    instants.dedup();
    let transitions = instants
        .into_iter()
        .map(|at| (at, gen_offset(g)))
        .collect::<Vec<_>>();
    // Bias the probe toward transition neighborhoods half the time:
    // the interesting behavior all lives within an offset-width of one.
    let t = if !transitions.is_empty() && g.bool() {
        let (at, _) = g.choose(&transitions);
        let spread = 3 * 86_400;
        g.u64_in(at.saturating_sub(spread).max(T_LO), at + spread)
    } else {
        g.u64_in(T_LO, T_HI)
    };
    Case {
        base_offset,
        transitions,
        t,
    }
}

/// Shrinks by dropping transitions, then rounding the probe downward.
fn shrink_case(c: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for transitions in shrink_vec(&c.transitions) {
        out.push(Case {
            transitions,
            ..c.clone()
        });
    }
    if c.base_offset != 0 {
        out.push(Case {
            base_offset: 0,
            ..c.clone()
        });
    }
    for round in [3600, 86_400] {
        let t = c.t - c.t % round;
        if t >= T_LO && t != c.t {
            out.push(Case { t, ..c.clone() });
        }
    }
    out
}

fn for_each_bucket(mut f: impl FnMut(Bucket) -> Result<(), String>) -> Result<(), String> {
    for bucket in Bucket::ALL {
        f(bucket).map_err(|e| format!("{bucket}: {e}"))?;
    }
    Ok(())
}

#[test]
fn bucketing_is_total_and_idempotent() {
    run_shrinking(
        "civiltime_total_idempotent",
        200,
        gen_case,
        shrink_case,
        |c| {
            let tz = c.tz();
            let t = Timestamp::from_unix(c.t);
            for_each_bucket(|bucket| {
                let start = tz.bucket_start(bucket, t);
                let end = tz.bucket_end(bucket, t);
                if !(start <= t && t < end) {
                    return Err(format!("not total: [{start:?}, {end:?}) vs {t:?}"));
                }
                if tz.bucket_start(bucket, start) != start {
                    return Err(format!("start {start:?} is not a fixed point"));
                }
                if tz.bucket_end(bucket, start) != end {
                    return Err(format!("end from start {start:?} disagrees with {end:?}"));
                }
                Ok(())
            })
        },
    );
}

#[test]
fn buckets_tile_the_line() {
    run_shrinking(
        "civiltime_partition_complete",
        200,
        gen_case,
        shrink_case,
        |c| {
            let tz = c.tz();
            let t = Timestamp::from_unix(c.t);
            for_each_bucket(|bucket| {
                let start = tz.bucket_start(bucket, t);
                let end = tz.bucket_end(bucket, t);
                // The end boundary opens the next bucket exactly there.
                if tz.bucket_start(bucket, end) != end {
                    return Err(format!("end {end:?} does not start the next bucket"));
                }
                // Every second of the bucket belongs to it — sample the
                // edges plus interior points (buckets can span months).
                let span = end.unix() - start.unix();
                for probe in [
                    start.unix(),
                    start.unix() + span / 3,
                    start.unix() + span / 2,
                    end.unix() - 1,
                ] {
                    let p = Timestamp::from_unix(probe);
                    if tz.bucket_start(bucket, p) != start {
                        return Err(format!("{p:?} escapes its bucket [{start:?}, {end:?})"));
                    }
                }
                Ok(())
            })
        },
    );
}

#[test]
fn bucketing_is_monotone() {
    run_shrinking(
        "civiltime_monotone",
        200,
        |g| {
            let c = gen_case(g);
            let dt = g.u64_in(0, 40 * 86_400);
            (c, dt)
        },
        |(c, dt)| {
            let mut out: Vec<(Case, u64)> = shrink_case(c).into_iter().map(|c| (c, *dt)).collect();
            if *dt > 0 {
                out.push((c.clone(), dt / 2));
            }
            out
        },
        |(c, dt)| {
            let tz = c.tz();
            let a = Timestamp::from_unix(c.t);
            let b = Timestamp::from_unix(c.t + dt);
            for_each_bucket(|bucket| {
                let (sa, sb) = (tz.bucket_start(bucket, a), tz.bucket_start(bucket, b));
                if sa > sb {
                    return Err(format!("start went backwards: {sa:?} > {sb:?}"));
                }
                let (ea, eb) = (tz.bucket_end(bucket, a), tz.bucket_end(bucket, b));
                if ea > eb {
                    return Err(format!("end went backwards: {ea:?} > {eb:?}"));
                }
                Ok(())
            })
        },
    );
}

fn ts(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Timestamp {
    Timestamp::from_ymd_hms(y, mo, d, h, mi, s).expect("valid civil time")
}

/// Spring-forward regression: America/Chicago 2024-03-10, 02:00 CST →
/// 03:00 CDT at 08:00 UTC. The skipped local hour has no bucket and the
/// local day is a single 23-hour interval.
#[test]
fn chicago_spring_forward_gap() {
    let tz = Tz::america_chicago();
    let in_gap_utc = ts(2024, 3, 10, 8, 30, 0); // local 03:30 CDT
    let day_start = tz.bucket_start(Bucket::Day, in_gap_utc);
    let day_end = tz.bucket_end(Bucket::Day, in_gap_utc);
    assert_eq!(day_start, ts(2024, 3, 10, 6, 0, 0));
    assert_eq!(day_end, ts(2024, 3, 11, 5, 0, 0));
    assert_eq!(day_end.unix() - day_start.unix(), 23 * 3600);
    // Hour buckets jump 01:00 -> 03:00: no bucket is ever labeled 02:xx.
    let mut cursor = day_start;
    let mut labels = Vec::new();
    while cursor < day_end {
        labels.push(tz.bucket_label(Bucket::Hour, cursor));
        cursor = tz.bucket_end(Bucket::Hour, cursor);
    }
    assert_eq!(labels.len(), 23);
    assert!(labels.contains(&"2024-03-10T01:00-06:00".to_owned()));
    assert!(labels.contains(&"2024-03-10T03:00-05:00".to_owned()));
    assert!(!labels.iter().any(|l| l.contains("T02:")), "{labels:?}");
}

/// Fall-back regression: America/Chicago 2024-11-03, 02:00 CDT → 01:00
/// CST at 07:00 UTC. The repeated local hour is two distinct buckets
/// disambiguated by offset, and the local day is 25 hours.
#[test]
fn chicago_fall_back_fold() {
    let tz = Tz::america_chicago();
    let in_fold_first = ts(2024, 11, 3, 6, 30, 0); // local 01:30 CDT
    let in_fold_second = ts(2024, 11, 3, 7, 30, 0); // local 01:30 CST
    let b1 = tz.bucket_start(Bucket::Hour, in_fold_first);
    let b2 = tz.bucket_start(Bucket::Hour, in_fold_second);
    assert!(b1 < b2, "fold instants must land in distinct buckets");
    assert_eq!(tz.bucket_end(Bucket::Hour, in_fold_first), b2);
    assert_eq!(tz.bucket_label(Bucket::Hour, b1), "2024-11-03T01:00-05:00");
    assert_eq!(tz.bucket_label(Bucket::Hour, b2), "2024-11-03T01:00-06:00");
    let day_start = tz.bucket_start(Bucket::Day, in_fold_second);
    let day_end = tz.bucket_end(Bucket::Day, in_fold_second);
    assert_eq!(day_start, ts(2024, 11, 3, 5, 0, 0));
    assert_eq!(day_end, ts(2024, 11, 4, 6, 0, 0));
    assert_eq!(day_end.unix() - day_start.unix(), 25 * 3600);
    assert_eq!(tz.bucket_label(Bucket::Day, day_start), "2024-11-03");
}

/// Buckets that would open before the epoch clamp their start at zero
/// without breaking totality or idempotence.
#[test]
fn epoch_clamp_is_idempotent() {
    let tz = Tz::by_name("Europe/Berlin").expect("builtin");
    let t = ts(1970, 1, 10, 12, 0, 0);
    let start = tz.bucket_start(Bucket::Month, t);
    assert_eq!(start, Timestamp::EPOCH);
    assert_eq!(tz.bucket_start(Bucket::Month, start), start);
    assert!(tz.bucket_end(Bucket::Month, t) > t);
}
