//! Property tests for civil-time conversion and duration arithmetic, on
//! the in-repo `propcheck` harness (seeded, offline, deterministic).

use propcheck::run;
use simtime::{Duration, Timestamp};

// Unix seconds from 1970 to ~2120, comfortably covering the study window.
const MAX_SECS: u64 = 4_733_510_400;

/// Civil conversion round-trips for every representable instant.
#[test]
fn civil_roundtrip() {
    run("civil_roundtrip", 256, |g| {
        let secs = g.u64_below(MAX_SECS);
        let t = Timestamp::from_unix(secs);
        let (y, m, d) = t.ymd();
        let (h, mi, s) = t.hms();
        let back = Timestamp::from_ymd_hms(y, m, d, h, mi, s).unwrap();
        assert_eq!(back, t);
    });
}

/// ISO-8601 rendering parses back to the same instant.
#[test]
fn iso_roundtrip() {
    run("iso_roundtrip", 256, |g| {
        let secs = g.u64_below(MAX_SECS);
        let t = Timestamp::from_unix(secs);
        let parsed: Timestamp = t.to_string().parse().unwrap();
        assert_eq!(parsed, t);
    });
}

/// Syslog rendering parses back given the right year context.
#[test]
fn syslog_roundtrip() {
    run("syslog_roundtrip", 256, |g| {
        let secs = g.u64_below(MAX_SECS);
        let t = Timestamp::from_unix(secs);
        let year = t.ymd().0;
        let parsed = Timestamp::parse_syslog(&t.syslog(), year).unwrap();
        assert_eq!(parsed, t);
    });
}

/// Day numbers are monotone and consistent with civil dates.
#[test]
fn day_number_monotone() {
    run("day_number_monotone", 256, |g| {
        let a = g.u64_below(MAX_SECS);
        let b = g.u64_below(MAX_SECS);
        let (ta, tb) = (Timestamp::from_unix(a), Timestamp::from_unix(b));
        if a <= b {
            assert!(ta.day_number() <= tb.day_number());
        }
        assert_eq!(ta.day_number(), a / 86_400);
    });
}

/// Addition then subtraction of a duration is the identity (no saturation
/// in range).
#[test]
fn add_sub_duration_identity() {
    run("add_sub_duration_identity", 256, |g| {
        let secs = g.u64_below(MAX_SECS);
        let delta = g.u64_below(1_000_000_000);
        let t = Timestamp::from_unix(secs);
        let d = Duration::from_secs(delta);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    });
}

/// abs_diff is symmetric and agrees with saturating subtraction.
#[test]
fn abs_diff_symmetric() {
    run("abs_diff_symmetric", 256, |g| {
        let a = g.u64_below(MAX_SECS);
        let b = g.u64_below(MAX_SECS);
        let (ta, tb) = (Timestamp::from_unix(a), Timestamp::from_unix(b));
        assert_eq!(ta.abs_diff(tb), tb.abs_diff(ta));
        let bigger = ta.max(tb);
        let smaller = ta.min(tb);
        assert_eq!(bigger - smaller, ta.abs_diff(tb));
        assert_eq!(smaller - bigger, Duration::ZERO);
    });
}

/// Duration display never panics and the float views stay consistent.
#[test]
fn duration_views_consistent() {
    run("duration_views_consistent", 256, |g| {
        let secs = g.u64_below(u64::MAX / 4);
        let d = Duration::from_secs(secs);
        // Relative tolerance: above 2^52 seconds f64 can no longer
        // represent every integer exactly.
        let tol = 1.0 + secs as f64 * 1e-12;
        assert!((d.as_hours_f64() * 3600.0 - secs as f64).abs() < tol);
        assert!((d.as_days_f64() * 86_400.0 - secs as f64).abs() < tol);
        assert!(!d.to_string().is_empty());
    });
}
