//! Property tests for civil-time conversion and duration arithmetic.

use proptest::prelude::*;
use simtime::{Duration, Timestamp};

// Unix seconds from 1970 to ~2120, comfortably covering the study window.
const MAX_SECS: u64 = 4_733_510_400;

proptest! {
    /// Civil conversion round-trips for every representable instant.
    #[test]
    fn civil_roundtrip(secs in 0u64..MAX_SECS) {
        let t = Timestamp::from_unix(secs);
        let (y, m, d) = t.ymd();
        let (h, mi, s) = t.hms();
        let back = Timestamp::from_ymd_hms(y, m, d, h, mi, s).unwrap();
        prop_assert_eq!(back, t);
    }

    /// ISO-8601 rendering parses back to the same instant.
    #[test]
    fn iso_roundtrip(secs in 0u64..MAX_SECS) {
        let t = Timestamp::from_unix(secs);
        let parsed: Timestamp = t.to_string().parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Syslog rendering parses back given the right year context.
    #[test]
    fn syslog_roundtrip(secs in 0u64..MAX_SECS) {
        let t = Timestamp::from_unix(secs);
        let year = t.ymd().0;
        let parsed = Timestamp::parse_syslog(&t.syslog(), year).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Day numbers are monotone and consistent with civil dates.
    #[test]
    fn day_number_monotone(a in 0u64..MAX_SECS, b in 0u64..MAX_SECS) {
        let (ta, tb) = (Timestamp::from_unix(a), Timestamp::from_unix(b));
        if a <= b {
            prop_assert!(ta.day_number() <= tb.day_number());
        }
        prop_assert_eq!(ta.day_number(), a / 86_400);
    }

    /// Addition then subtraction of a duration is the identity (no
    /// saturation in range).
    #[test]
    fn add_sub_duration_identity(
        secs in 0u64..MAX_SECS,
        delta in 0u64..1_000_000_000u64,
    ) {
        let t = Timestamp::from_unix(secs);
        let d = Duration::from_secs(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    /// abs_diff is symmetric and agrees with saturating subtraction.
    #[test]
    fn abs_diff_symmetric(a in 0u64..MAX_SECS, b in 0u64..MAX_SECS) {
        let (ta, tb) = (Timestamp::from_unix(a), Timestamp::from_unix(b));
        prop_assert_eq!(ta.abs_diff(tb), tb.abs_diff(ta));
        let bigger = ta.max(tb);
        let smaller = ta.min(tb);
        prop_assert_eq!(bigger - smaller, ta.abs_diff(tb));
        prop_assert_eq!(smaller - bigger, Duration::ZERO);
    }

    /// Duration display never panics and parses of valid fields hold
    /// invariants.
    #[test]
    fn duration_views_consistent(secs in 0u64..u64::MAX / 4) {
        let d = Duration::from_secs(secs);
        // Relative tolerance: above 2^52 seconds f64 can no longer
        // represent every integer exactly.
        let tol = 1.0 + secs as f64 * 1e-12;
        prop_assert!((d.as_hours_f64() * 3600.0 - secs as f64).abs() < tol);
        prop_assert!((d.as_days_f64() * 86_400.0 - secs as f64).abs() < tol);
        prop_assert!(!d.to_string().is_empty());
    }
}
