//! DST-correct civil-time bucketing over a hand-rolled zoneinfo model.
//!
//! The rollup layer asks questions like "errors per *local* day" — and a
//! local day is not 86,400 UTC seconds when a DST transition falls inside
//! it (23 h on the spring-forward day, 25 h on the fall-back day). This
//! module models a timezone as a base UTC offset plus a sorted table of
//! `(utc_instant, new_offset)` transitions — the same shape real zoneinfo
//! compiles down to — and derives bucket boundaries from it.
//!
//! # The bucketing invariant
//!
//! A *bucket* (hour, day, week or month) is a half-open UTC interval
//! `[start, end)`. Boundaries are, by definition, the union of
//!
//! * every UTC instant where the zone's *local* civil hour / day / week /
//!   month boundary falls **inside** an offset regime, and
//! * every offset transition instant across which the bucket *key*
//!   changes — the key is the local civil unit, plus the UTC offset for
//!   hours (so a fall-back fold splits the repeated hour, while a DST
//!   shift that stays inside one local day leaves the day bucket whole).
//!
//! Within one regime local time is a constant shift of UTC, so buckets
//! there are exactly the local calendar units; a transition cuts only
//! the units whose key it changes — which is why the spring-forward day
//! is one 23-hour bucket, not two fragments either side of the shift.
//! This definition makes bucketing **total** (every instant
//! has a bucket containing it), **monotone** (later instants never map to
//! earlier buckets, even across a fall-back fold where local labels
//! repeat) and **partition-complete** (consecutive buckets tile the line:
//! each bucket's end is the next bucket's start) — for *arbitrary*
//! transition tables, which is what lets the property suite generate
//! adversarial zones instead of trusting the three built-ins. The
//! concrete consequences for the two interesting DST cases:
//!
//! * **Spring-forward gap** (e.g. America/Chicago 2024-03-10, 02:00 CST →
//!   03:00 CDT): the skipped local hour simply has no bucket, and the
//!   local *day* bucket is a 23-hour UTC interval.
//! * **Fall-back fold** (2024-11-03, 02:00 CDT → 01:00 CST): the repeated
//!   local hour becomes **two** buckets — one per offset — disambiguated
//!   in the label by the UTC-offset suffix; the local day is 25 hours.
//!
//! Labels render the bucket's local civil start (hours carry the offset
//! suffix, e.g. `2024-11-03T01:00-06:00`; weeks use the ISO week of the
//! bucket's local Monday).

use crate::{civil_from_days, days_from_civil, Timestamp};
use std::fmt;
use std::str::FromStr;

/// The supported rollup granularities, coarsest-compatible with the civil
/// calendar of a [`Tz`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// One local clock hour.
    Hour,
    /// One local civil day (23–25 h across DST transitions).
    Day,
    /// One local ISO week, Monday 00:00 to Monday 00:00.
    Week,
    /// One local calendar month.
    Month,
}

impl Bucket {
    /// All granularities, finest first.
    pub const ALL: [Bucket; 4] = [Bucket::Hour, Bucket::Day, Bucket::Week, Bucket::Month];

    /// The lowercase query-parameter name (`hour|day|week|month`).
    pub fn as_str(self) -> &'static str {
        match self {
            Bucket::Hour => "hour",
            Bucket::Day => "day",
            Bucket::Week => "week",
            Bucket::Month => "month",
        }
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a bucket or timezone name does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCivilError {
    what: String,
}

impl fmt::Display for ParseCivilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.what)
    }
}

impl std::error::Error for ParseCivilError {}

impl FromStr for Bucket {
    type Err = ParseCivilError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hour" => Ok(Bucket::Hour),
            "day" => Ok(Bucket::Day),
            "week" => Ok(Bucket::Week),
            "month" => Ok(Bucket::Month),
            other => Err(ParseCivilError {
                what: format!("unknown bucket {other:?} (expected hour|day|week|month)"),
            }),
        }
    }
}

/// A timezone: a base UTC offset plus a sorted table of offset
/// transitions — fixed offsets are the empty-table special case.
///
/// Offsets are seconds east of UTC. The model is deliberately the shape
/// compiled zoneinfo takes (explicit transition instants, not recurrence
/// rules evaluated on the fly), so the built-in zones enumerate their DST
/// rules over the study's era and generated zones in the property suite
/// can be arbitrary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tz {
    name: String,
    base_offset: i32,
    /// `(utc_instant, offset_after)`, strictly ascending by instant.
    transitions: Vec<(u64, i32)>,
}

/// The years the built-in zones enumerate DST transitions for — generous
/// margins around the 2022–2025 study window.
const BUILTIN_YEARS: std::ops::RangeInclusive<i32> = 2015..=2035;

impl Tz {
    /// The names [`Tz::by_name`] resolves (the `/rollup?tz=` vocabulary).
    pub const BUILTIN: [&'static str; 3] = ["UTC", "America/Chicago", "Europe/Berlin"];

    /// A fixed-offset zone with no transitions.
    pub fn fixed(name: impl Into<String>, offset_secs: i32) -> Self {
        Tz {
            name: name.into(),
            base_offset: offset_secs,
            transitions: Vec::new(),
        }
    }

    /// Coordinated Universal Time.
    pub fn utc() -> Self {
        Tz::fixed("UTC", 0)
    }

    /// A zone from an explicit transition table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not strictly ascending by instant — a
    /// malformed table would silently mis-bucket, which is strictly worse.
    pub fn with_transitions(
        name: impl Into<String>,
        base_offset: i32,
        transitions: Vec<(u64, i32)>,
    ) -> Self {
        assert!(
            transitions.windows(2).all(|w| w[0].0 < w[1].0),
            "transition table must be strictly ascending"
        );
        Tz {
            name: name.into(),
            base_offset,
            transitions,
        }
    }

    /// Resolves one of the [`Tz::BUILTIN`] names.
    ///
    /// # Errors
    ///
    /// A human-readable message listing the known zones.
    pub fn by_name(name: &str) -> Result<Tz, ParseCivilError> {
        match name {
            "UTC" => Ok(Tz::utc()),
            "America/Chicago" => Ok(Tz::america_chicago()),
            "Europe/Berlin" => Ok(Tz::europe_berlin()),
            other => Err(ParseCivilError {
                what: format!(
                    "unknown tz {other:?} (expected one of {})",
                    Tz::BUILTIN.join("|")
                ),
            }),
        }
    }

    /// US Central: CST (UTC−6) with CDT (UTC−5) from the second Sunday of
    /// March 02:00 local standard to the first Sunday of November 02:00
    /// local daylight, enumerated over the study era.
    pub fn america_chicago() -> Tz {
        let mut transitions = Vec::new();
        for year in BUILTIN_YEARS {
            // 2nd Sunday of March, 02:00 CST = 08:00 UTC -> CDT.
            let spring = nth_weekday(year, 3, SUNDAY, 2) as u64 * 86_400 + 8 * 3600;
            // 1st Sunday of November, 02:00 CDT = 07:00 UTC -> CST.
            let fall = nth_weekday(year, 11, SUNDAY, 1) as u64 * 86_400 + 7 * 3600;
            transitions.push((spring, -5 * 3600));
            transitions.push((fall, -6 * 3600));
        }
        Tz::with_transitions("America/Chicago", -6 * 3600, transitions)
    }

    /// Central European: CET (UTC+1) with CEST (UTC+2) from the last
    /// Sunday of March to the last Sunday of October, both at 01:00 UTC,
    /// enumerated over the study era.
    pub fn europe_berlin() -> Tz {
        let mut transitions = Vec::new();
        for year in BUILTIN_YEARS {
            let spring = last_weekday(year, 3, SUNDAY) as u64 * 86_400 + 3600;
            let fall = last_weekday(year, 10, SUNDAY) as u64 * 86_400 + 3600;
            transitions.push((spring, 2 * 3600));
            transitions.push((fall, 3600));
        }
        Tz::with_transitions("Europe/Berlin", 3600, transitions)
    }

    /// The zone's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The UTC offset (seconds east) in effect at `t`.
    pub fn offset_at(&self, t: Timestamp) -> i32 {
        self.regime(t.unix() as i64).1
    }

    /// The offset regime containing UTC second `u`: `(start, offset,
    /// end)`, where `start`/`end` are `None` at the open ends of the
    /// table. Takes an `i64` so regime walks can step before the epoch.
    fn regime(&self, u: i64) -> (Option<i64>, i32, Option<i64>) {
        let idx = self.transitions.partition_point(|&(at, _)| at as i64 <= u);
        let (start, offset) = match idx.checked_sub(1) {
            Some(i) => (Some(self.transitions[i].0 as i64), self.transitions[i].1),
            None => (None, self.base_offset),
        };
        let end = self.transitions.get(idx).map(|&(at, _)| at as i64);
        (start, offset, end)
    }

    /// Whether transition instant `at` is a bucket boundary for
    /// `bucket` — i.e. whether the bucket key changes across it. Hour
    /// keys include the offset, so every transition cuts hours; coarser
    /// keys are the local civil unit alone, so a shift that stays inside
    /// one local day/week/month does not cut it.
    fn is_boundary(&self, bucket: Bucket, at: i64) -> bool {
        if bucket == Bucket::Hour {
            return true;
        }
        let idx = self.transitions.partition_point(|&(t, _)| (t as i64) <= at);
        debug_assert!(idx > 0 && self.transitions[idx - 1].0 as i64 == at);
        let after = self.transitions[idx - 1].1;
        let before = match idx.checked_sub(2) {
            Some(i) => self.transitions[i].1,
            None => self.base_offset,
        };
        local_floor(bucket, at - 1 + i64::from(before))
            != local_floor(bucket, at + i64::from(after))
    }

    /// The UTC start of the bucket containing `t`: the latest bucket
    /// boundary at or before `t` (saturating at the epoch when a bucket
    /// opens before it).
    pub fn bucket_start(&self, bucket: Bucket, t: Timestamp) -> Timestamp {
        let mut u = t.unix() as i64;
        loop {
            let (regime_start, offset, _) = self.regime(u);
            let candidate = local_floor(bucket, u + i64::from(offset)) - i64::from(offset);
            match regime_start {
                Some(rs) if candidate <= rs => {
                    if self.is_boundary(bucket, rs) {
                        return Timestamp::from_unix(rs.max(0) as u64);
                    }
                    // The key is unchanged across `rs`: the bucket opened
                    // in an earlier regime. Keep walking left.
                    u = rs - 1;
                }
                _ => return Timestamp::from_unix(candidate.max(0) as u64),
            }
        }
    }

    /// The UTC end of the bucket containing `t` — equivalently, the start
    /// of the next bucket.
    pub fn bucket_end(&self, bucket: Bucket, t: Timestamp) -> Timestamp {
        let mut u = t.unix() as i64;
        loop {
            let (_, offset, regime_end) = self.regime(u);
            let floor = local_floor(bucket, u + i64::from(offset));
            let candidate = local_next(bucket, floor) - i64::from(offset);
            match regime_end {
                Some(re) if candidate >= re => {
                    if self.is_boundary(bucket, re) {
                        return Timestamp::from_unix(re.max(0) as u64);
                    }
                    // The key survives the transition: the bucket
                    // continues into the next regime. Keep walking right.
                    u = re;
                }
                _ => return Timestamp::from_unix(candidate.max(0) as u64),
            }
        }
    }

    /// Renders the label of the bucket whose **start instant** is
    /// `start` (as returned by [`bucket_start`](Self::bucket_start)).
    ///
    /// Hour labels carry the UTC-offset suffix so the two buckets of a
    /// fall-back fold stay distinguishable; day/week/month labels are the
    /// plain local civil unit.
    pub fn bucket_label(&self, bucket: Bucket, start: Timestamp) -> String {
        let offset = self.offset_at(start);
        let local = start.unix() as i64 + i64::from(offset);
        let day = local.div_euclid(86_400);
        let (y, mo, d) = civil_from_days(day);
        match bucket {
            Bucket::Hour => {
                let rem = local.rem_euclid(86_400);
                let (h, mi) = (rem / 3600, (rem % 3600) / 60);
                format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}{}", fmt_offset(offset))
            }
            Bucket::Day => format!("{y:04}-{mo:02}-{d:02}"),
            Bucket::Week => {
                // ISO week: the week belongs to the year of its Thursday.
                let monday = day - (day + 3).rem_euclid(7);
                let thursday = monday + 3;
                let (iy, _, _) = civil_from_days(thursday);
                let ordinal = thursday - days_from_civil(iy, 1, 1) + 1;
                format!("{iy:04}-W{:02}", (ordinal - 1) / 7 + 1)
            }
            Bucket::Month => format!("{y:04}-{mo:02}"),
        }
    }
}

/// Renders a UTC offset as `Z` or `±HH:MM`.
fn fmt_offset(offset: i32) -> String {
    if offset == 0 {
        return "Z".to_owned();
    }
    let sign = if offset < 0 { '-' } else { '+' };
    let abs = offset.unsigned_abs();
    format!("{sign}{:02}:{:02}", abs / 3600, (abs % 3600) / 60)
}

/// The local-second floor of the bucket containing local second `local`.
fn local_floor(bucket: Bucket, local: i64) -> i64 {
    let day = local.div_euclid(86_400);
    match bucket {
        Bucket::Hour => local - local.rem_euclid(3600),
        Bucket::Day => day * 86_400,
        Bucket::Week => (day - (day + 3).rem_euclid(7)) * 86_400,
        Bucket::Month => {
            let (y, m, _) = civil_from_days(day);
            days_from_civil(y, m, 1) * 86_400
        }
    }
}

/// The local-second start of the bucket after the one flooring at
/// `floor`.
fn local_next(bucket: Bucket, floor: i64) -> i64 {
    match bucket {
        Bucket::Hour => floor + 3600,
        Bucket::Day => floor + 86_400,
        Bucket::Week => floor + 7 * 86_400,
        Bucket::Month => {
            let (y, m, _) = civil_from_days(floor.div_euclid(86_400));
            let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
            days_from_civil(ny, nm, 1) * 86_400
        }
    }
}

/// Day-of-week index with Sunday = 0 (1970-01-01 was a Thursday).
const SUNDAY: i64 = 0;

fn weekday(day: i64) -> i64 {
    (day + 4).rem_euclid(7)
}

/// Epoch day of the `n`-th `target` weekday of `(year, month)`.
fn nth_weekday(year: i32, month: u32, target: i64, n: i64) -> i64 {
    let first = days_from_civil(year, month, 1);
    let shift = (target - weekday(first)).rem_euclid(7);
    first + shift + (n - 1) * 7
}

/// Epoch day of the last `target` weekday of `(year, month)`.
fn last_weekday(year: i32, month: u32, target: i64) -> i64 {
    let (ny, nm) = if month == 12 {
        (year + 1, 1)
    } else {
        (year, month + 1)
    };
    let last = days_from_civil(ny, nm, 1) - 1;
    last - (weekday(last) - target).rem_euclid(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Timestamp {
        Timestamp::from_ymd_hms(y, mo, d, h, mi, s).unwrap()
    }

    #[test]
    fn utc_buckets_are_plain_calendar_units() {
        let tz = Tz::utc();
        let t = ts(2024, 3, 14, 3, 22, 7);
        assert_eq!(tz.bucket_start(Bucket::Hour, t), ts(2024, 3, 14, 3, 0, 0));
        assert_eq!(tz.bucket_end(Bucket::Hour, t), ts(2024, 3, 14, 4, 0, 0));
        assert_eq!(tz.bucket_start(Bucket::Day, t), ts(2024, 3, 14, 0, 0, 0));
        assert_eq!(tz.bucket_end(Bucket::Day, t), ts(2024, 3, 15, 0, 0, 0));
        // 2024-03-14 is a Thursday; the week floors to Monday the 11th.
        assert_eq!(tz.bucket_start(Bucket::Week, t), ts(2024, 3, 11, 0, 0, 0));
        assert_eq!(tz.bucket_end(Bucket::Week, t), ts(2024, 3, 18, 0, 0, 0));
        assert_eq!(tz.bucket_start(Bucket::Month, t), ts(2024, 3, 1, 0, 0, 0));
        assert_eq!(tz.bucket_end(Bucket::Month, t), ts(2024, 4, 1, 0, 0, 0));
        assert_eq!(
            tz.bucket_label(Bucket::Hour, ts(2024, 3, 14, 3, 0, 0)),
            "2024-03-14T03:00Z"
        );
        assert_eq!(
            tz.bucket_label(Bucket::Day, ts(2024, 3, 14, 0, 0, 0)),
            "2024-03-14"
        );
        assert_eq!(
            tz.bucket_label(Bucket::Week, ts(2024, 3, 11, 0, 0, 0)),
            "2024-W11"
        );
        assert_eq!(
            tz.bucket_label(Bucket::Month, ts(2024, 3, 1, 0, 0, 0)),
            "2024-03"
        );
    }

    #[test]
    fn chicago_offsets_across_2024_transitions() {
        let tz = Tz::america_chicago();
        // Just before 2024-03-10 08:00 UTC: CST. At and after: CDT.
        assert_eq!(tz.offset_at(ts(2024, 3, 10, 7, 59, 59)), -6 * 3600);
        assert_eq!(tz.offset_at(ts(2024, 3, 10, 8, 0, 0)), -5 * 3600);
        // Fall back at 2024-11-03 07:00 UTC.
        assert_eq!(tz.offset_at(ts(2024, 11, 3, 6, 59, 59)), -5 * 3600);
        assert_eq!(tz.offset_at(ts(2024, 11, 3, 7, 0, 0)), -6 * 3600);
    }

    #[test]
    fn spring_forward_day_is_23_hours() {
        let tz = Tz::america_chicago();
        // Noon local on the 2024 spring-forward day.
        let t = ts(2024, 3, 10, 18, 0, 0);
        let start = tz.bucket_start(Bucket::Day, t);
        let end = tz.bucket_end(Bucket::Day, t);
        assert_eq!(start, ts(2024, 3, 10, 6, 0, 0));
        assert_eq!(end, ts(2024, 3, 11, 5, 0, 0));
        assert_eq!((end - start).as_hours_f64(), 23.0);
        assert_eq!(tz.bucket_label(Bucket::Day, start), "2024-03-10");
        // The skipped local hour 02 produces no hour bucket: 01:59:59 CST
        // is in the 01:00-06:00 bucket, and the next bucket is 03:00-05:00.
        let before_gap = ts(2024, 3, 10, 7, 59, 59);
        assert_eq!(
            tz.bucket_label(Bucket::Hour, tz.bucket_start(Bucket::Hour, before_gap)),
            "2024-03-10T01:00-06:00"
        );
        let after_gap = tz.bucket_end(Bucket::Hour, before_gap);
        assert_eq!(after_gap, ts(2024, 3, 10, 8, 0, 0));
        assert_eq!(
            tz.bucket_label(Bucket::Hour, after_gap),
            "2024-03-10T03:00-05:00"
        );
    }

    #[test]
    fn fall_back_day_is_25_hours_with_a_folded_hour() {
        let tz = Tz::america_chicago();
        let t = ts(2024, 11, 3, 18, 0, 0);
        let start = tz.bucket_start(Bucket::Day, t);
        let end = tz.bucket_end(Bucket::Day, t);
        assert_eq!(start, ts(2024, 11, 3, 5, 0, 0));
        assert_eq!(end, ts(2024, 11, 4, 6, 0, 0));
        assert_eq!((end - start).as_hours_f64(), 25.0);
        // Local 01:30 happens twice; the two instants land in two
        // distinct buckets whose labels differ only in offset.
        let first = ts(2024, 11, 3, 6, 30, 0); // 01:30 CDT
        let second = ts(2024, 11, 3, 7, 30, 0); // 01:30 CST
        let b1 = tz.bucket_start(Bucket::Hour, first);
        let b2 = tz.bucket_start(Bucket::Hour, second);
        assert!(b1 < b2);
        assert_eq!(tz.bucket_end(Bucket::Hour, first), b2);
        assert_eq!(tz.bucket_label(Bucket::Hour, b1), "2024-11-03T01:00-05:00");
        assert_eq!(tz.bucket_label(Bucket::Hour, b2), "2024-11-03T01:00-06:00");
    }

    #[test]
    fn berlin_transitions_at_one_am_utc() {
        let tz = Tz::europe_berlin();
        // 2022-03-27 and 2022-10-30 are the last Sundays.
        assert_eq!(tz.offset_at(ts(2022, 3, 27, 0, 59, 59)), 3600);
        assert_eq!(tz.offset_at(ts(2022, 3, 27, 1, 0, 0)), 2 * 3600);
        assert_eq!(tz.offset_at(ts(2022, 10, 30, 0, 59, 59)), 2 * 3600);
        assert_eq!(tz.offset_at(ts(2022, 10, 30, 1, 0, 0)), 3600);
    }

    #[test]
    fn week_labels_follow_iso_year_of_thursday() {
        let tz = Tz::utc();
        // 2024-12-30 (Monday) starts ISO week 2025-W01.
        let t = ts(2024, 12, 31, 12, 0, 0);
        let start = tz.bucket_start(Bucket::Week, t);
        assert_eq!(start, ts(2024, 12, 30, 0, 0, 0));
        assert_eq!(tz.bucket_label(Bucket::Week, start), "2025-W01");
        // 2021-01-01 (Friday) is still 2020-W53.
        let t = ts(2021, 1, 1, 12, 0, 0);
        let start = tz.bucket_start(Bucket::Week, t);
        assert_eq!(tz.bucket_label(Bucket::Week, start), "2020-W53");
    }

    #[test]
    fn by_name_resolves_builtins_and_rejects_unknowns() {
        for name in Tz::BUILTIN {
            assert_eq!(Tz::by_name(name).unwrap().name(), name);
        }
        assert!(Tz::by_name("Mars/Olympus_Mons").is_err());
    }

    #[test]
    fn bucket_parses_and_displays() {
        for b in Bucket::ALL {
            assert_eq!(b.as_str().parse::<Bucket>().unwrap(), b);
            assert_eq!(b.to_string(), b.as_str());
        }
        assert!("fortnight".parse::<Bucket>().is_err());
    }

    #[test]
    fn transitions_must_be_sorted() {
        let bad = std::panic::catch_unwind(|| {
            Tz::with_transitions("bad", 0, vec![(100, 60), (100, 120)])
        });
        assert!(bad.is_err());
    }

    #[test]
    fn partition_is_complete_across_a_transition() {
        // Walk buckets across the 2024 Chicago fall-back by repeated
        // bucket_end and verify each end is exactly the next start.
        let tz = Tz::america_chicago();
        for bucket in Bucket::ALL {
            let mut cursor = ts(2024, 11, 1, 0, 0, 0);
            let stop = ts(2024, 11, 6, 0, 0, 0);
            while cursor < stop {
                let end = tz.bucket_end(bucket, cursor);
                assert!(end > cursor, "{bucket}: end must advance");
                assert_eq!(
                    tz.bucket_start(bucket, end),
                    end,
                    "{bucket}: boundary at {end} is not a bucket start"
                );
                cursor = end;
            }
        }
    }
}
