//! Minimal civil-time handling: [`Timestamp`] and [`Duration`].
//!
//! The DSN'25 Delta study spans 1,170 days (2022-01-01 .. 2025-03-15);
//! everything it computes — MTBE in hours, 20-second attribution windows,
//! per-day log consolidation — needs a total order on instants, civil-date
//! conversion for rendering, and nothing else. Implementing those ~200
//! lines here (using Howard Hinnant's `days_from_civil` algorithm) keeps
//! the whole pipeline dependency-free and bit-reproducible across
//! platforms, which the seeded-experiment workflow requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod civiltime;
pub mod periods;

pub use civiltime::{Bucket, Tz};
pub use periods::{Period, Phase, StudyPeriods};

use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

/// Month abbreviations used in syslog timestamps, January first.
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// A span of time with second resolution.
///
/// Arithmetic saturates at zero rather than going negative; reliability
/// statistics never need signed spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    secs: u64,
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration { secs: 0 };

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration { secs }
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration { secs: mins * 60 }
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration { secs: hours * 3600 }
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        Duration {
            secs: days * 86_400,
        }
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.secs
    }

    /// The span in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.secs as f64 / 60.0
    }

    /// The span in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.secs as f64 / 3600.0
    }

    /// The span in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.secs as f64 / 86_400.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d, rem) = (self.secs / 86_400, self.secs % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration {
            secs: self.secs + rhs.secs,
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.secs += rhs.secs;
    }
}

impl Sub for Duration {
    type Output = Duration;

    /// Saturating subtraction: never underflows below zero.
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            secs: self.secs.saturating_sub(rhs.secs),
        }
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.secs = self.secs.saturating_sub(rhs.secs);
    }
}

/// An absolute instant, stored as whole seconds since the Unix epoch (UTC).
///
/// Supports Gregorian civil conversion in both directions, syslog
/// (`Mar 14 03:22:07`) and ISO-8601 (`2024-03-14T03:22:07Z`) rendering, and
/// parsing of both formats. Syslog timestamps famously omit the year, so
/// [`Timestamp::parse_syslog`] takes the year from context, exactly like
/// the real consolidation pipeline has to.
///
/// # Example
///
/// ```
/// use simtime::Timestamp;
///
/// let t = Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7)?;
/// assert_eq!(t.to_string(), "2024-03-14T03:22:07Z");
/// assert_eq!(t.syslog(), "Mar 14 03:22:07");
/// # Ok::<(), simtime::ParseTimestampError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    secs: u64,
}

impl Timestamp {
    /// The Unix epoch, 1970-01-01T00:00:00Z.
    pub const EPOCH: Timestamp = Timestamp { secs: 0 };

    /// Creates a timestamp from seconds since the Unix epoch.
    pub const fn from_unix(secs: u64) -> Self {
        Timestamp { secs }
    }

    /// Seconds since the Unix epoch.
    pub const fn unix(self) -> u64 {
        self.secs
    }

    /// Creates a timestamp from a civil date and time (UTC).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTimestampError`] if any field is out of range
    /// (including day-of-month validity for the given month/year) or the
    /// date precedes the Unix epoch.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Result<Self, ParseTimestampError> {
        if !(1..=12).contains(&month) {
            return Err(ParseTimestampError::new(format!(
                "month {month} out of range"
            )));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(ParseTimestampError::new(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        if hour > 23 || min > 59 || sec > 59 {
            return Err(ParseTimestampError::new(format!(
                "time {hour:02}:{min:02}:{sec:02} out of range"
            )));
        }
        let days = days_from_civil(year, month, day);
        if days < 0 {
            return Err(ParseTimestampError::new(format!(
                "{year}-{month:02}-{day:02} precedes the Unix epoch"
            )));
        }
        Ok(Timestamp {
            secs: days as u64 * 86_400 + hour as u64 * 3600 + min as u64 * 60 + sec as u64,
        })
    }

    /// The civil date `(year, month, day)` of this instant (UTC).
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days((self.secs / 86_400) as i64)
    }

    /// The time of day `(hour, minute, second)` of this instant (UTC).
    pub fn hms(self) -> (u32, u32, u32) {
        let rem = self.secs % 86_400;
        (
            (rem / 3600) as u32,
            ((rem % 3600) / 60) as u32,
            (rem % 60) as u32,
        )
    }

    /// The day index since the Unix epoch (for per-day consolidation).
    pub const fn day_number(self) -> u64 {
        self.secs / 86_400
    }

    /// Renders in syslog format: `Mar 14 03:22:07` (day space-padded).
    pub fn syslog(self) -> String {
        let (_, month, day) = self.ymd();
        let (h, m, s) = self.hms();
        format!(
            "{} {day:2} {h:02}:{m:02}:{s:02}",
            MONTHS[(month - 1) as usize]
        )
    }

    /// Parses a syslog timestamp, taking the year from context.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTimestampError`] on malformed input or out-of-range
    /// fields.
    pub fn parse_syslog(s: &str, year: i32) -> Result<Self, ParseTimestampError> {
        let mut parts = s.split_whitespace();
        let mon_str = parts
            .next()
            .ok_or_else(|| ParseTimestampError::new("missing month"))?;
        let month = MONTHS
            .iter()
            .position(|&m| m == mon_str)
            .ok_or_else(|| ParseTimestampError::new(format!("unknown month {mon_str:?}")))?
            as u32
            + 1;
        let day: u32 = parts
            .next()
            .ok_or_else(|| ParseTimestampError::new("missing day"))?
            .parse()
            .map_err(|_| ParseTimestampError::new("bad day"))?;
        let hms = parts
            .next()
            .ok_or_else(|| ParseTimestampError::new("missing time"))?;
        let (h, m, sec) = parse_hms(hms)?;
        Timestamp::from_ymd_hms(year, month, day, h, m, sec)
    }

    /// Adds a span, saturating at the maximum representable instant.
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp {
            secs: self.secs.saturating_add(d.secs),
        }
    }

    /// Subtracts a span, saturating at the epoch.
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp {
            secs: self.secs.saturating_sub(d.secs),
        }
    }

    /// The absolute gap between two instants.
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration {
            secs: self.secs.abs_diff(other.secs),
        }
    }
}

impl fmt::Display for Timestamp {
    /// ISO-8601: `2024-03-14T03:22:07Z`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.ymd();
        let (h, mi, s) = self.hms();
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
    }
}

impl FromStr for Timestamp {
    type Err = ParseTimestampError;

    /// Parses ISO-8601 `YYYY-MM-DDTHH:MM:SSZ` (the trailing `Z` optional).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().trim_end_matches('Z');
        let (date, time) = s
            .split_once('T')
            .ok_or_else(|| ParseTimestampError::new("expected YYYY-MM-DDTHH:MM:SS"))?;
        let mut dp = date.split('-');
        let year: i32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTimestampError::new("bad year"))?;
        let month: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTimestampError::new("bad month"))?;
        let day: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTimestampError::new("bad day"))?;
        let (h, m, sec) = parse_hms(time)?;
        Timestamp::from_ymd_hms(year, month, day, h, m, sec)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, d: Duration) -> Timestamp {
        Timestamp {
            secs: self.secs + d.secs,
        }
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    /// Saturates at the epoch.
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp {
            secs: self.secs.saturating_sub(d.secs),
        }
    }
}

impl Sub for Timestamp {
    type Output = Duration;

    /// The span from `rhs` to `self`, saturating at zero if `rhs` is later.
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration {
            secs: self.secs.saturating_sub(rhs.secs),
        }
    }
}

/// Error returned when constructing or parsing a [`Timestamp`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimestampError {
    what: String,
}

impl ParseTimestampError {
    fn new(what: impl Into<String>) -> Self {
        ParseTimestampError { what: what.into() }
    }
}

impl fmt::Display for ParseTimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp: {}", self.what)
    }
}

impl Error for ParseTimestampError {}

/// Parses `HH:MM:SS`.
fn parse_hms(s: &str) -> Result<(u32, u32, u32), ParseTimestampError> {
    let mut tp = s.split(':');
    let h: u32 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseTimestampError::new("bad hour"))?;
    let m: u32 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseTimestampError::new("bad minute"))?;
    let sec: u32 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseTimestampError::new("bad second"))?;
    Ok((h, m, sec))
}

/// Whether `year` is a Gregorian leap year.
pub(crate) fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Days in the given month.
fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub(crate) fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub(crate) fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Timestamp::EPOCH.hms(), (0, 0, 0));
    }

    #[test]
    fn known_unix_values() {
        // 2022-01-01T00:00:00Z == 1640995200 (study period start).
        let t = Timestamp::from_ymd_hms(2022, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(t.unix(), 1_640_995_200);
        // 2025-03-15T00:00:00Z == 1741996800 (study period end).
        let t = Timestamp::from_ymd_hms(2025, 3, 15, 0, 0, 0).unwrap();
        assert_eq!(t.unix(), 1_741_996_800);
    }

    #[test]
    fn civil_roundtrip_across_study_period() {
        // Every day of the 1170-day window roundtrips exactly.
        let start = Timestamp::from_ymd_hms(2022, 1, 1, 12, 0, 0).unwrap();
        for day in 0..1170 {
            let t = start + Duration::from_days(day);
            let (y, m, d) = t.ymd();
            let (h, mi, s) = t.hms();
            let back = Timestamp::from_ymd_hms(y, m, d, h, mi, s).unwrap();
            assert_eq!(back, t, "day {day}");
        }
    }

    #[test]
    fn leap_day_2024_is_valid() {
        let t = Timestamp::from_ymd_hms(2024, 2, 29, 23, 59, 59).unwrap();
        assert_eq!(t.ymd(), (2024, 2, 29));
        assert!(Timestamp::from_ymd_hms(2023, 2, 29, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2100, 2, 29, 0, 0, 0).is_err());
    }

    #[test]
    fn field_validation() {
        assert!(Timestamp::from_ymd_hms(2022, 0, 1, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2022, 13, 1, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2022, 4, 31, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2022, 1, 1, 24, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2022, 1, 1, 0, 60, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2022, 1, 1, 0, 0, 60).is_err());
        assert!(Timestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59).is_err());
    }

    #[test]
    fn iso_roundtrip() {
        let t = Timestamp::from_ymd_hms(2024, 3, 14, 3, 22, 7).unwrap();
        let s = t.to_string();
        assert_eq!(s, "2024-03-14T03:22:07Z");
        assert_eq!(s.parse::<Timestamp>().unwrap(), t);
        assert_eq!("2024-03-14T03:22:07".parse::<Timestamp>().unwrap(), t);
    }

    #[test]
    fn iso_parse_rejects_garbage() {
        for bad in ["", "2024-03-14", "not a date", "2024-03-14T25:00:00Z"] {
            assert!(bad.parse::<Timestamp>().is_err(), "{bad}");
        }
    }

    #[test]
    fn syslog_format_pads_day() {
        let t = Timestamp::from_ymd_hms(2022, 5, 5, 1, 2, 3).unwrap();
        assert_eq!(t.syslog(), "May  5 01:02:03");
        let t = Timestamp::from_ymd_hms(2022, 5, 15, 1, 2, 3).unwrap();
        assert_eq!(t.syslog(), "May 15 01:02:03");
    }

    #[test]
    fn syslog_roundtrip_with_year_context() {
        let t = Timestamp::from_ymd_hms(2023, 11, 9, 23, 1, 0).unwrap();
        let parsed = Timestamp::parse_syslog(&t.syslog(), 2023).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn syslog_parse_rejects_bad_month() {
        assert!(Timestamp::parse_syslog("Foo 14 03:22:07", 2024).is_err());
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_mins(1), Duration::from_secs(60));
    }

    #[test]
    fn duration_float_views() {
        let d = Duration::from_secs(5400);
        assert!((d.as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_mins_f64() - 90.0).abs() < 1e-12);
        assert!((Duration::from_days(2).as_days_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_display_forms() {
        assert_eq!(Duration::from_secs(42).to_string(), "42s");
        assert_eq!(Duration::from_secs(62).to_string(), "1m02s");
        assert_eq!(Duration::from_secs(3723).to_string(), "1h02m03s");
        assert_eq!(Duration::from_days(17).to_string(), "17d00h00m00s");
    }

    #[test]
    fn subtraction_saturates() {
        let a = Timestamp::from_unix(100);
        let b = Timestamp::from_unix(200);
        assert_eq!(b - a, Duration::from_secs(100));
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(a - Duration::from_secs(500), Timestamp::EPOCH);
        assert_eq!(
            Duration::from_secs(3) - Duration::from_secs(5),
            Duration::ZERO
        );
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Timestamp::from_unix(100);
        let b = Timestamp::from_unix(250);
        assert_eq!(a.abs_diff(b), Duration::from_secs(150));
        assert_eq!(b.abs_diff(a), Duration::from_secs(150));
    }

    #[test]
    fn day_number_boundaries() {
        let t = Timestamp::from_ymd_hms(2022, 1, 2, 0, 0, 0).unwrap();
        assert_eq!(
            t.day_number(),
            (t - Duration::from_secs(1)).day_number() + 1
        );
    }

    #[test]
    fn ordering_and_arithmetic() {
        let t = Timestamp::from_unix(1000);
        assert!(t + Duration::from_secs(1) > t);
        let mut d = Duration::from_secs(10);
        d += Duration::from_secs(5);
        assert_eq!(d.as_secs(), 15);
        d -= Duration::from_secs(20);
        assert_eq!(d, Duration::ZERO);
    }
}
