//! The study's measurement periods.

use crate::{Duration, Timestamp};
use std::fmt;

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Period {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Period {
    /// Creates a period.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end > start, "period end must be after start");
        Period { start, end }
    }

    /// Whether `t` falls inside the period.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// The period's length.
    pub fn length(&self) -> Duration {
        self.end - self.start
    }

    /// The period's length in hours.
    pub fn hours(&self) -> f64 {
        self.length().as_hours_f64()
    }

    /// The period's length in days.
    pub fn days(&self) -> f64 {
        self.length().as_days_f64()
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

/// The study's two-phase measurement window.
///
/// Delta's SREs divide the 1,170-day window into a *pre-operational*
/// (bring-up and testing) period, January–September 2022, and an
/// *operational* (production) period, October 2022 – March 2025. Rates,
/// statistics and job impact are all reported per period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StudyPeriods {
    /// The pre-operational (testing) period.
    pub pre_op: Period,
    /// The operational (production) period.
    pub op: Period,
}

impl StudyPeriods {
    /// The paper's calendar: pre-op 2022-01-01 .. 2022-10-01 (273 days),
    /// op 2022-10-01 .. 2025-03-15 (896 days).
    pub fn delta() -> Self {
        let start = Timestamp::from_ymd_hms(2022, 1, 1, 0, 0, 0).expect("valid date");
        let boundary = Timestamp::from_ymd_hms(2022, 10, 1, 0, 0, 0).expect("valid date");
        let end = Timestamp::from_ymd_hms(2025, 3, 15, 0, 0, 0).expect("valid date");
        StudyPeriods {
            pre_op: Period::new(start, boundary),
            op: Period::new(boundary, end),
        }
    }

    /// A contiguous scaled-down window keeping the pre-op/op *ratio* of the
    /// real study, for fast tests and examples. `fraction` scales both
    /// period lengths (clamped to at least one day each).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn delta_scaled(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let full = StudyPeriods::delta();
        let pre_days = (full.pre_op.days() * fraction).max(1.0).round() as u64;
        let op_days = (full.op.days() * fraction).max(1.0).round() as u64;
        let start = full.pre_op.start;
        let boundary = start + Duration::from_days(pre_days);
        let end = boundary + Duration::from_days(op_days);
        StudyPeriods {
            pre_op: Period::new(start, boundary),
            op: Period::new(boundary, end),
        }
    }

    /// The whole measurement window.
    pub fn whole(&self) -> Period {
        Period::new(self.pre_op.start, self.op.end)
    }

    /// The period containing `t`, or `None` outside the window.
    pub fn period_of(&self, t: Timestamp) -> Option<Phase> {
        if self.pre_op.contains(t) {
            Some(Phase::PreOp)
        } else if self.op.contains(t) {
            Some(Phase::Op)
        } else {
            None
        }
    }
}

impl Default for StudyPeriods {
    fn default() -> Self {
        StudyPeriods::delta()
    }
}

/// Which phase of the study a timestamp belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The bring-up/testing phase.
    PreOp,
    /// The production phase.
    Op,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::PreOp => "pre-operational",
            Phase::Op => "operational",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_period_lengths_match_paper() {
        let p = StudyPeriods::delta();
        assert_eq!(p.pre_op.days().round() as i64, 273);
        assert_eq!(p.op.days().round() as i64, 896);
        assert_eq!(p.whole().days().round() as i64, 1169);
    }

    #[test]
    fn contains_respects_half_open_bounds() {
        let p = StudyPeriods::delta();
        assert!(p.pre_op.contains(p.pre_op.start));
        assert!(!p.pre_op.contains(p.pre_op.end));
        assert!(p.op.contains(p.pre_op.end));
    }

    #[test]
    fn period_of_phases() {
        let p = StudyPeriods::delta();
        let mid_pre = Timestamp::from_ymd_hms(2022, 5, 1, 0, 0, 0).unwrap();
        let mid_op = Timestamp::from_ymd_hms(2024, 1, 1, 0, 0, 0).unwrap();
        let after = Timestamp::from_ymd_hms(2026, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(p.period_of(mid_pre), Some(Phase::PreOp));
        assert_eq!(p.period_of(mid_op), Some(Phase::Op));
        assert_eq!(p.period_of(after), None);
    }

    #[test]
    fn scaled_preserves_ratio_roughly() {
        let p = StudyPeriods::delta_scaled(0.1);
        let ratio = p.op.days() / p.pre_op.days();
        let full_ratio = 896.0 / 273.0;
        assert!(
            (ratio - full_ratio).abs() / full_ratio < 0.1,
            "ratio {ratio}"
        );
    }

    #[test]
    fn scaled_tiny_fraction_clamps_to_days() {
        let p = StudyPeriods::delta_scaled(0.0001);
        assert!(p.pre_op.days() >= 1.0);
        assert!(p.op.days() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_zero() {
        StudyPeriods::delta_scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "end must be after start")]
    fn inverted_period_panics() {
        Period::new(Timestamp::from_unix(10), Timestamp::from_unix(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Phase::PreOp.to_string(), "pre-operational");
        let p = StudyPeriods::delta();
        assert!(p.pre_op.to_string().contains("2022-01-01"));
    }
}
